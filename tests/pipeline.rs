//! End-to-end integration tests: trace generation → (optional cache
//! filtering) → policy → simulator → report.

use hybridmem::cachesim::{filter_to_memory_trace, CotsonConfig};
use hybridmem::policy::{HybridPolicy, TwoLruConfig, TwoLruPolicy};
use hybridmem::sim::{ExperimentConfig, HybridSimulator, PolicyKind};
use hybridmem::trace::{parsec, LocalityParams, TraceGenerator, TraceStats, WorkloadSpec};
use hybridmem::types::{MemoryKind, PageAccess, PageCount};

#[test]
fn full_pipeline_cpu_trace_through_caches_to_hybrid_memory() {
    // CPU-level trace → Table II cache hierarchy → page-level memory trace
    // → proposed policy → device accounting. This is the COTSon-substitute
    // path described in DESIGN.md.
    let spec = parsec::spec("ferret").unwrap().capped(30_000);
    let cpu_trace = TraceGenerator::new(spec.clone(), 11);
    let (memory_trace, cache_stats) =
        filter_to_memory_trace(cpu_trace, CotsonConfig::date2016()).unwrap();

    assert!(
        cache_stats.l1.hit_ratio() > 0.3,
        "a locality-heavy trace must hit L1 substantially, got {:.3}",
        cache_stats.l1.hit_ratio()
    );
    assert_eq!(memory_trace.len() as u64, cache_stats.memory_accesses());
    assert!(
        (memory_trace.len() as u64) < spec.total_accesses(),
        "caches must absorb traffic"
    );

    let dram = PageCount::new((spec.working_set.value() / 14).max(1));
    let nvm = PageCount::new((spec.working_set.value() / 2).max(1));
    let config = TwoLruConfig::new(dram, nvm).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(Box::new(TwoLruPolicy::new(config)));
    sim.run(memory_trace.iter().copied());
    let report = sim.into_report("ferret-filtered");

    assert_eq!(report.counts.requests, memory_trace.len() as u64);
    assert_eq!(
        report.counts.hits() + report.counts.faults,
        report.counts.requests,
        "every request either hits or faults"
    );
    assert!(report.amat().value() > 0.0);
    assert!(report.appr().value() > 0.0);
}

#[test]
fn experiment_runner_is_deterministic_across_calls() {
    let spec = parsec::spec("bodytrack").unwrap().capped(20_000);
    let config = ExperimentConfig::default();
    for kind in [
        PolicyKind::TwoLru,
        PolicyKind::ClockDwf,
        PolicyKind::AdaptiveTwoLru,
    ] {
        let a = config.run(&spec, kind).unwrap();
        let b = config.run(&spec, kind).unwrap();
        assert_eq!(a, b, "{kind}: same seed must give identical reports");
    }
}

#[test]
fn warmup_excludes_initialization_faults() {
    // With warmup, the initialization sweep's compulsory faults are not
    // measured; without it they dominate.
    let spec = parsec::spec("bodytrack").unwrap().capped(50_000);
    let with_warmup = ExperimentConfig::default()
        .run(&spec, PolicyKind::DramOnly)
        .unwrap();
    let cold = ExperimentConfig {
        warmup_fraction: 0.0,
        ..ExperimentConfig::default()
    }
    .run(&spec, PolicyKind::DramOnly)
    .unwrap();
    assert!(
        cold.counts.faults > 10 * with_warmup.counts.faults.max(1),
        "cold-start faults ({}) should dwarf steady-state faults ({})",
        cold.counts.faults,
        with_warmup.counts.faults
    );
}

#[test]
fn trace_stats_match_spec_budgets_exactly() {
    for name in parsec::NAMES {
        let spec = parsec::spec(name).unwrap().capped(15_000);
        let stats: TraceStats = TraceGenerator::new(spec.clone(), 5).collect();
        assert_eq!(stats.reads, spec.reads, "{name}: read budget is exact");
        assert_eq!(stats.writes, spec.writes, "{name}: write budget is exact");
        assert!(
            stats.footprint().value() <= spec.working_set.value(),
            "{name}: footprint bounded by the working set"
        );
    }
}

#[test]
fn policy_state_survives_cache_filtered_and_direct_paths() {
    // The same spec driven directly (page level) and through the caches
    // exercises the same policy machinery without panics and with
    // consistent occupancy invariants.
    let spec = WorkloadSpec::new("mixed", 600, 40_000, 12_000, LocalityParams::balanced()).unwrap();
    let dram = PageCount::new(45);
    let nvm = PageCount::new(405);

    let mut direct = TwoLruPolicy::new(TwoLruConfig::new(dram, nvm).unwrap());
    for access in TraceGenerator::new(spec.clone(), 3) {
        direct.on_access(PageAccess::from(access));
        assert!(direct.occupancy(MemoryKind::Dram) <= dram.value());
        assert!(direct.occupancy(MemoryKind::Nvm) <= nvm.value());
    }

    let (filtered, _) =
        filter_to_memory_trace(TraceGenerator::new(spec, 3), CotsonConfig::date2016()).unwrap();
    let mut through_caches = TwoLruPolicy::new(TwoLruConfig::new(dram, nvm).unwrap());
    for access in filtered {
        through_caches.on_access(access);
    }
    assert!(through_caches.occupancy(MemoryKind::Dram) <= dram.value());
}

#[test]
fn scaled_workloads_report_nominal_static_power() {
    // The same workload capped at two different volumes must report
    // comparable per-request static energy (the nominal-size un-scaling).
    let small = parsec::spec("canneal").unwrap().capped(40_000);
    let large = parsec::spec("canneal").unwrap().capped(160_000);
    let config = ExperimentConfig::default();
    let report_small = config.run(&small, PolicyKind::DramOnly).unwrap();
    let report_large = config.run(&large, PolicyKind::DramOnly).unwrap();
    let static_per_req = |r: &hybridmem::sim::SimulationReport| {
        r.energy.static_energy.value() / r.counts.requests as f64
    };
    let a = static_per_req(&report_small);
    let b = static_per_req(&report_large);
    assert!(
        (a / b - 1.0).abs() < 0.35,
        "static/request should be scale-stable: {a:.2} vs {b:.2}"
    );
}
