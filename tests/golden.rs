//! Golden-file regression tests: the full `SimulationReport` of a fixed
//! `(workload, policy, seed)` cell is pinned byte-for-byte. Any behavioral
//! change to the trace generator, the policies, or the accounting shows up
//! here as a diff — in a reproduction repository, silent drift is a bug
//! even when all invariants still hold.
//!
//! To intentionally re-baseline after a deliberate change, regenerate the
//! files (see the commented recipe at the bottom) and explain the change in
//! `CHANGELOG.md`.

use hybridmem::sim::{ExperimentConfig, PolicyKind, SimulationReport};
use hybridmem::trace::parsec;

fn run(kind: PolicyKind) -> SimulationReport {
    let spec = parsec::spec("bodytrack").unwrap().capped(20_000);
    ExperimentConfig::default().run(&spec, kind).unwrap()
}

fn check_against_golden(kind: PolicyKind, file: &str) {
    let fresh = run(kind);
    let golden_text = std::fs::read_to_string(format!("tests/data/{file}"))
        .expect("golden file exists; regenerate per the module docs if missing");
    let golden: SimulationReport = serde_json::from_str(&golden_text).expect("golden file parses");
    assert_eq!(
        fresh, golden,
        "behavior drifted from the golden baseline in {file}; if the change \
         is intentional, regenerate the golden files and document it"
    );
}

#[test]
fn two_lru_matches_golden_baseline() {
    check_against_golden(PolicyKind::TwoLru, "golden_bodytrack_two_lru.json");
}

#[test]
fn clock_dwf_matches_golden_baseline() {
    check_against_golden(PolicyKind::ClockDwf, "golden_bodytrack_clock_dwf.json");
}

// Regeneration recipe (from the repository root):
//
// ```rust,ignore
// let spec = parsec::spec("bodytrack")?.capped(20_000);
// let config = ExperimentConfig::default();
// for (kind, name) in [(PolicyKind::TwoLru, "two_lru"), (PolicyKind::ClockDwf, "clock_dwf")] {
//     let report = config.run(&spec, kind)?;
//     std::fs::write(
//         format!("tests/data/golden_bodytrack_{name}.json"),
//         serde_json::to_string_pretty(&report)?,
//     )?;
// }
// ```
