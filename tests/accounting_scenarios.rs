//! Hand-computed accounting scenarios: the simulator's energy and latency
//! totals are checked against pen-and-paper sums over short, fully
//! understood access sequences (all Table IV constants).

use hybridmem::policy::{ClockDwfPolicy, SingleTierPolicy, TwoLruConfig, TwoLruPolicy};
use hybridmem::sim::HybridSimulator;
use hybridmem::types::{PageAccess, PageCount, PageId, PAGE_FACTOR};

const PF: f64 = PAGE_FACTOR as f64;
const DISK_NS: f64 = 5e6;

fn page(n: u64) -> PageId {
    PageId::new(n)
}

#[test]
fn dram_only_sequence_accounts_exactly() {
    // Capacity 2. Sequence: fault 1, fault 2, hit 1 (read), write-hit 2,
    // fault 3 (evicts LRU = 1), hit 3.
    let policy = SingleTierPolicy::dram_only(PageCount::new(2)).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(Box::new(policy));
    sim.step(PageAccess::read(page(1)));
    sim.step(PageAccess::read(page(2)));
    sim.step(PageAccess::read(page(1)));
    sim.step(PageAccess::write(page(2)));
    sim.step(PageAccess::read(page(3)));
    sim.step(PageAccess::read(page(3)));
    let report = sim.into_report("scenario");

    assert_eq!(report.counts.requests, 6);
    assert_eq!(report.counts.faults, 3);
    assert_eq!(report.counts.evictions_to_disk, 1);
    // Latency: 3 faults × 5 ms disk + 3 hits × 50 ns.
    let expected_latency = 3.0 * DISK_NS + 3.0 * 50.0;
    assert!((report.latency.total().value() - expected_latency).abs() < 1e-6);
    // Energy (dynamic): 3 hits × 3.2 nJ; fills: 3 × PF × 3.2 nJ.
    assert!((report.energy.dynamic.value() - 3.0 * 3.2).abs() < 1e-9);
    assert!((report.energy.page_faults.value() - 3.0 * PF * 3.2).abs() < 1e-6);
    assert!(report.energy.migrations.is_zero());
}

#[test]
fn two_lru_promotion_sequence_accounts_exactly() {
    // DRAM 1, NVM 4; thresholds (1, 1), windows (1.0, 1.0): the second hit
    // of any NVM page promotes it (counter 2 > threshold 1).
    let config =
        TwoLruConfig::with_thresholds(PageCount::new(1), PageCount::new(4), 1, 1, 1.0, 1.0)
            .unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(Box::new(TwoLruPolicy::new(config)));

    sim.step(PageAccess::read(page(1))); // fault → DRAM
    sim.step(PageAccess::read(page(2))); // fault → DRAM, demote 1 → NVM
    sim.step(PageAccess::read(page(1))); // NVM hit, counter 1
    sim.step(PageAccess::read(page(1))); // NVM hit, counter 2 → promote (swap with 2)
    let report = sim.into_report("scenario");

    assert_eq!(report.counts.faults, 2);
    assert_eq!(report.counts.nvm_read_hits, 2);
    assert_eq!(report.counts.migrations_to_nvm, 2); // demotion + swap-back
    assert_eq!(report.counts.migrations_to_dram, 1); // the promotion

    // Latency: 2 faults (disk) + 2 NVM read hits (100 ns each)
    //        + demotion PF·(50+350) + swap [PF·(50+350) + PF·(100+50)].
    let expected_latency = 2.0 * DISK_NS + 2.0 * 100.0 + PF * 400.0 + PF * 400.0 + PF * 150.0;
    assert!(
        (report.latency.total().value() - expected_latency).abs() < 1e-6,
        "got {}, expected {}",
        report.latency.total().value(),
        expected_latency
    );

    // Migration energy: 2 × PF·(3.2 + 32) [D→N] + 1 × PF·(6.4 + 3.2) [N→D].
    let expected_migration_energy = 2.0 * PF * 35.2 + PF * 9.6;
    assert!((report.energy.migrations.value() - expected_migration_energy).abs() < 1e-6);

    // NVM writes: 2 migrations into NVM × PF each; zero demand writes.
    assert_eq!(report.nvm_writes.migrations, 2 * PAGE_FACTOR);
    assert_eq!(report.nvm_writes.requests, 0);
    assert_eq!(report.nvm_writes.page_faults, 0);

    // Wear: page 1 was demoted once (PF) and page 2 swapped in once (PF).
    assert_eq!(report.wear.max_page_wear, PAGE_FACTOR);
    assert!((report.wear.mean_page_wear - PF).abs() < 1e-9);
}

#[test]
fn clock_dwf_write_storm_accounts_exactly() {
    // DRAM 1, NVM 2. Read faults land in NVM once DRAM is full; every write
    // to an NVM page is a swap. Alternate writes between two NVM pages to
    // force the Section III "migration storm".
    let policy = ClockDwfPolicy::new(PageCount::new(1), PageCount::new(2)).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(Box::new(policy));

    sim.step(PageAccess::read(page(1))); // DRAM (free)
    sim.step(PageAccess::read(page(2))); // NVM
    sim.step(PageAccess::read(page(3))); // NVM
    let storms = 10u64;
    for i in 0..storms {
        // Writes alternate 2,3,2,3,... — each one hits an NVM page and
        // triggers a swap pair.
        sim.step(PageAccess::write(page(2 + i % 2)));
    }
    let report = sim.into_report("scenario");

    assert_eq!(report.counts.migrations_to_dram, storms);
    assert_eq!(report.counts.migrations_to_nvm, storms);
    assert_eq!(report.counts.nvm_write_hits, 0);
    // Each swap pair: PF·(100+50) + PF·(50+350) ns.
    let swap_latency = storms as f64 * (PF * 150.0 + PF * 400.0);
    assert!((report.latency.migrations.value() - swap_latency).abs() < 1e-6);
    // NVM writes come only from fills (2 read faults to NVM) + swap-backs.
    assert_eq!(report.nvm_writes.total(), (2 + storms) * PAGE_FACTOR);
    // Every demand write was served by DRAM at 50 ns.
    assert_eq!(report.counts.dram_write_hits, storms);
}

#[test]
fn static_energy_is_exactly_eq3() {
    // DRAM-only, capacity 10 pages; 4 requests over footprint 2.
    let policy = SingleTierPolicy::dram_only(PageCount::new(10)).unwrap();
    let mut sim = HybridSimulator::with_date2016_devices(Box::new(policy));
    for _ in 0..2 {
        sim.step(PageAccess::read(page(0)));
        sim.step(PageAccess::read(page(1)));
    }
    let report = sim.into_report("scenario");

    // Duration = footprint·250µs + requests·50ns; static power =
    // 10 pages × 3814.697… nJ/s.
    let duration_s = (2.0 * 250_000.0 + 4.0 * 50.0) * 1e-9;
    let st_per_page = 4096.0 / (1u64 << 30) as f64 * 1e9;
    let expected = 10.0 * st_per_page * duration_s;
    assert!(
        (report.energy.static_energy.value() - expected).abs() < 1e-6,
        "got {}, expected {expected}",
        report.energy.static_energy.value()
    );
    assert!((report.duration_ns - duration_s * 1e9).abs() < 1e-6);
}
