//! Seed-stability integration tests: the paper's qualitative conclusions
//! must not be artefacts of one random trace — the orderings hold across
//! generator seeds.

use hybridmem::sim::{geo_mean, ExperimentConfig, PolicyKind};
use hybridmem::trace::parsec;

const SEEDS: [u64; 3] = [42, 1337, 987_654_321];
/// Reduced volume under debug builds so `cargo test` stays fast;
/// release runs use the full volume.
const CAP: u64 = if cfg!(debug_assertions) {
    40_000
} else {
    120_000
};

fn suite_gmean(seed: u64, metric: impl Fn(&[hybridmem::sim::SimulationReport]) -> f64) -> f64 {
    let config = ExperimentConfig {
        seed,
        ..ExperimentConfig::default()
    };
    let mut values = Vec::new();
    for name in parsec::NAMES {
        let spec = parsec::spec(name).unwrap().capped(CAP);
        let reports = config
            .compare(
                &spec,
                &[
                    PolicyKind::TwoLru,
                    PolicyKind::ClockDwf,
                    PolicyKind::DramOnly,
                    PolicyKind::NvmOnly,
                ],
            )
            .unwrap();
        values.push(metric(&reports));
    }
    geo_mean(&values)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn proposed_beats_clock_dwf_on_power_for_every_seed() {
    for seed in SEEDS {
        let ratio = suite_gmean(seed, |r| {
            r[0].energy.total().value() / r[1].energy.total().value()
        });
        assert!(
            ratio < 1.0,
            "seed {seed}: proposed/CLOCK-DWF power G-Mean = {ratio:.3}"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn proposed_reduces_nvm_writes_for_every_seed() {
    for seed in SEEDS {
        let ratio = suite_gmean(seed, |r| {
            r[0].nvm_writes.total().max(1) as f64 / r[1].nvm_writes.total().max(1) as f64
        });
        assert!(
            ratio < 0.85,
            "seed {seed}: proposed/CLOCK-DWF NVM-write G-Mean = {ratio:.3}"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn hybrid_static_power_saving_is_seed_independent() {
    // The static saving is structural (memory sizing), so it must be
    // essentially identical across seeds.
    let mut ratios = Vec::new();
    for seed in SEEDS {
        ratios.push(suite_gmean(seed, |r| {
            r[0].energy.static_energy.value() / r[2].energy.static_energy.value()
        }));
    }
    for ratio in &ratios {
        assert!(
            (*ratio - 0.19).abs() < 0.02,
            "hybrid/DRAM static ratio should be ~0.19, got {ratio:.3}"
        );
    }
    let spread = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread < 0.01,
        "static ratio must not vary with seed: {ratios:?}"
    );
}
