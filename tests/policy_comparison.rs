//! Cross-policy integration tests: the qualitative orderings the paper's
//! evaluation rests on, checked on reduced-volume PARSEC traces.

use hybridmem::sim::{geo_mean, ExperimentConfig, PolicyKind, ReplayMode, SimulationReport};
use hybridmem::trace::parsec;

/// Reduced volume under debug builds so `cargo test` stays fast;
/// release runs use the full volume.
const CAP: u64 = if cfg!(debug_assertions) {
    40_000
} else {
    150_000
};

fn run_all(name: &str) -> [SimulationReport; 4] {
    let spec = parsec::spec(name).unwrap().capped(CAP);
    let config = ExperimentConfig::default();
    let reports = config
        .compare(
            &spec,
            &[
                PolicyKind::TwoLru,
                PolicyKind::ClockDwf,
                PolicyKind::DramOnly,
                PolicyKind::NvmOnly,
            ],
        )
        .unwrap();
    reports.try_into().expect("four policies requested")
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn batched_replay_equals_serial_replay_for_every_policy() {
    // The batched driver is a pure dispatch optimization: every policy's
    // full report must match the serial oracle exactly, across the whole
    // paper matrix.
    for name in parsec::NAMES {
        let spec = parsec::spec(name).unwrap().capped(CAP);
        let serial = ExperimentConfig {
            replay: ReplayMode::Serial,
            ..ExperimentConfig::default()
        };
        let batched = ExperimentConfig {
            replay: ReplayMode::Batched,
            ..serial
        };
        for kind in PolicyKind::all() {
            assert_eq!(
                serial.run(&spec, kind).unwrap(),
                batched.run(&spec, kind).unwrap(),
                "{name}/{}: batched replay diverged from serial",
                kind.name()
            );
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn clock_dwf_never_serves_demand_writes_from_nvm() {
    for name in parsec::NAMES {
        let [_, dwf, _, _] = run_all(name);
        assert_eq!(
            dwf.counts.nvm_write_hits, 0,
            "{name}: CLOCK-DWF must migrate on NVM write hits"
        );
        assert_eq!(dwf.nvm_writes.requests, 0, "{name}");
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn single_tier_baselines_have_no_migrations() {
    for name in ["bodytrack", "streamcluster"] {
        let [_, _, dram, nvm] = run_all(name);
        assert_eq!(dram.counts.migrations(), 0, "{name}");
        assert_eq!(nvm.counts.migrations(), 0, "{name}");
        assert_eq!(
            dram.nvm_writes.total(),
            0,
            "{name}: DRAM-only never writes NVM"
        );
        assert!(
            nvm.nvm_writes.total() > 0,
            "{name}: NVM-only writes go to NVM"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn hybrid_policies_match_single_tier_hit_ratio_closely() {
    // "the proposed scheme will have almost the same hit ratio as an
    // unmodified LRU" — and the memory capacities are identical, so all
    // four policies should agree on hit ratio to within a small margin.
    for name in ["bodytrack", "canneal", "ferret", "x264"] {
        let [proposed, dwf, dram, _] = run_all(name);
        let baseline = dram.counts.hit_ratio();
        for report in [&proposed, &dwf] {
            let delta = (report.counts.hit_ratio() - baseline).abs();
            assert!(
                delta < 0.02,
                "{name}/{}: hit ratio {:.4} vs LRU {:.4}",
                report.policy,
                report.counts.hit_ratio(),
                baseline
            );
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn proposed_scheme_beats_clock_dwf_on_power_in_aggregate() {
    // Fig. 4a: up to 48% (14% G-Mean) less power than CLOCK-DWF.
    let mut ratios = Vec::new();
    for name in parsec::NAMES {
        let [proposed, dwf, _, _] = run_all(name);
        ratios.push(proposed.energy.total().value() / dwf.energy.total().value());
    }
    let gmean = geo_mean(&ratios);
    assert!(
        gmean < 0.95,
        "proposed/CLOCK-DWF power G-Mean should be well below 1, got {gmean:.3}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn proposed_scheme_reduces_nvm_writes_versus_clock_dwf() {
    // Fig. 4b: up to 93% (64% G-Mean) fewer NVM writes than CLOCK-DWF.
    let mut ratios = Vec::new();
    for name in parsec::NAMES {
        let [proposed, dwf, _, _] = run_all(name);
        ratios
            .push(proposed.nvm_writes.total().max(1) as f64 / dwf.nvm_writes.total().max(1) as f64);
    }
    let gmean = geo_mean(&ratios);
    assert!(
        gmean < 0.75,
        "proposed/CLOCK-DWF NVM-write G-Mean should be well below 1, got {gmean:.3}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn proposed_scheme_improves_amat_versus_clock_dwf_in_aggregate() {
    // Fig. 4c: up to 70% (48% G-Mean) AMAT improvement.
    let mut ratios = Vec::new();
    for name in parsec::NAMES {
        let [proposed, dwf, _, _] = run_all(name);
        ratios.push(proposed.amat().value() / dwf.amat().value());
    }
    let gmean = geo_mean(&ratios);
    assert!(
        gmean < 1.0,
        "proposed/CLOCK-DWF AMAT G-Mean should be below 1, got {gmean:.3}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn hybrid_memory_saves_power_versus_dram_only_on_well_behaved_workloads() {
    // Fig. 4a right bars: most workloads below 1.0; the paper calls out
    // canneal/fluidanimate/streamcluster as unsuitable (excluded here), and
    // vips/raytrace sit near the break-even line, so only the clearly
    // well-behaved workloads are asserted.
    for name in ["bodytrack", "facesim", "freqmine", "x264", "dedup"] {
        let [proposed, _, dram, _] = run_all(name);
        let ratio = proposed.energy.total().value() / dram.energy.total().value();
        assert!(
            ratio < 1.05,
            "{name}: proposed/DRAM-only power should be < 1, got {ratio:.3}"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn streamcluster_remains_hybrid_hostile() {
    // The paper: streamcluster's burst of accesses over a small footprint
    // makes it "not suitable for using hybrid memories".
    let [proposed, _, dram, _] = run_all("streamcluster");
    let ratio = proposed.energy.total().value() / dram.energy.total().value();
    assert!(
        ratio > 1.0,
        "streamcluster should not benefit, got {ratio:.3}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn static_power_is_identical_across_hybrid_policies() {
    // "The static power consumption is the same for both methods since they
    // are evaluated using the same DRAM and NVM size."
    for name in ["bodytrack", "raytrace"] {
        let [proposed, dwf, _, _] = run_all(name);
        let a = proposed.energy.static_energy.value();
        let b = dwf.energy.static_energy.value();
        assert!(((a - b) / b).abs() < 1e-9, "{name}: {a} vs {b}");
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn nvm_wear_tracks_write_totals() {
    for name in ["vips", "fluidanimate"] {
        let [proposed, dwf, _, _] = run_all(name);
        for report in [&proposed, &dwf] {
            if report.nvm_writes.total() > 0 {
                assert!(report.wear.max_page_wear > 0, "{name}/{}", report.policy);
                assert!(report.wear.imbalance >= 1.0, "{name}/{}", report.policy);
            }
        }
    }
}
