//! Cross-validation of the simulator against the paper's closed-form
//! models: feeding a run's *measured* probabilities back through Eq. 1 and
//! Eq. 2 must reproduce the measured AMAT and dynamic APPR.

use hybridmem::sim::{ExperimentConfig, ModelParams, PolicyKind, Probabilities, SimulationReport};
use hybridmem::trace::parsec;
use proptest::prelude::*;

/// Extracts Table I probabilities from a measured report.
fn probabilities_of(report: &SimulationReport) -> Probabilities {
    let n = report.counts.requests as f64;
    let dram_hits = (report.counts.dram_read_hits + report.counts.dram_write_hits) as f64;
    let nvm_hits = (report.counts.nvm_read_hits + report.counts.nvm_write_hits) as f64;
    let faults = report.counts.faults as f64;
    Probabilities {
        hit_dram: dram_hits / n,
        hit_nvm: nvm_hits / n,
        miss: faults / n,
        read_given_dram: if dram_hits > 0.0 {
            report.counts.dram_read_hits as f64 / dram_hits
        } else {
            1.0
        },
        read_given_nvm: if nvm_hits > 0.0 {
            report.counts.nvm_read_hits as f64 / nvm_hits
        } else {
            1.0
        },
        migrate_to_dram: report.counts.migrations_to_dram as f64 / n,
        migrate_to_nvm: report.counts.migrations_to_nvm as f64 / n,
        disk_to_dram: if faults > 0.0 {
            report.counts.fills_to_dram as f64 / faults
        } else {
            1.0
        },
        disk_to_nvm: if faults > 0.0 {
            report.counts.fills_to_nvm as f64 / faults
        } else {
            0.0
        },
    }
}

fn check_against_closed_form(report: &SimulationReport) {
    let probabilities = probabilities_of(report);
    // The simplex may be off by float rounding only.
    probabilities
        .validate()
        .expect("measured probabilities are valid");
    let model = ModelParams::date2016(probabilities);

    // Eq. 1: measured AMAT must equal the closed form on measured inputs.
    let predicted_amat = model.amat().value();
    let measured_amat = report.amat().value();
    assert!(
        (predicted_amat - measured_amat).abs() / measured_amat < 1e-9,
        "{}: Eq. 1 gives {predicted_amat}, simulator measured {measured_amat}",
        report.policy
    );

    // Eq. 2: the closed form covers the *dynamic* components (demand,
    // fills, migrations); static (Eq. 3) is added separately.
    let predicted_appr = model.appr().value();
    let n = report.counts.requests as f64;
    let measured_dynamic =
        (report.energy.dynamic + report.energy.page_faults + report.energy.migrations).value() / n;
    assert!(
        (predicted_appr - measured_dynamic).abs() / measured_dynamic.max(1e-12) < 1e-9,
        "{}: Eq. 2 gives {predicted_appr}, simulator measured {measured_dynamic}",
        report.policy
    );
}

#[test]
fn simulator_matches_eq1_and_eq2_on_parsec_workloads() {
    let config = ExperimentConfig::default();
    for name in ["bodytrack", "canneal", "vips", "streamcluster"] {
        let spec = parsec::spec(name).unwrap().capped(60_000);
        for kind in PolicyKind::all() {
            let report = config.run(&spec, kind).unwrap();
            check_against_closed_form(&report);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Eq. 1/Eq. 2 agreement holds across random seeds, thresholds, and
    /// memory splits — the accounting and the analytical model are the same
    /// mathematics by construction, so any drift is a bookkeeping bug.
    #[test]
    fn simulator_matches_closed_form_under_random_configs(
        seed in 0u64..1_000,
        dram_fraction in 0.05f64..0.5,
        read_threshold in 1u32..8,
        workload_index in 0usize..12,
    ) {
        let name = parsec::NAMES[workload_index];
        let spec = parsec::spec(name).unwrap().capped(20_000);
        let config = ExperimentConfig {
            seed,
            dram_fraction,
            read_threshold,
            write_threshold: read_threshold * 2,
            ..ExperimentConfig::date2016()
        };
        for kind in [PolicyKind::TwoLru, PolicyKind::ClockDwf] {
            let report = config.run(&spec, kind).unwrap();
            check_against_closed_form(&report);
        }
    }
}
