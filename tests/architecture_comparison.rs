//! Architecture-level integration tests: the orderings between the three
//! hybrid organizations the paper discusses — migration-based (proposed,
//! CLOCK-DWF), caching-based (DRAM-cache), and the CLOCK-Pro admission
//! ladder.

use hybridmem::sim::{ExperimentConfig, PolicyKind, SimulationReport};
use hybridmem::trace::parsec;

/// Reduced volume under debug builds so `cargo test` stays fast;
/// release runs use the full volume.
const CAP: u64 = if cfg!(debug_assertions) {
    40_000
} else {
    120_000
};

fn run(name: &str, kind: PolicyKind) -> SimulationReport {
    let spec = parsec::spec(name).unwrap().capped(CAP);
    ExperimentConfig::default().run(&spec, kind).unwrap()
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn dram_cache_copies_far_more_than_the_proposed_scheme() {
    // The paper's critique of caching architectures: every admission is a
    // page copy, so copy traffic dwarfs threshold-gated migration.
    for name in ["bodytrack", "ferret", "x264"] {
        let cache = run(name, PolicyKind::DramCache);
        let proposed = run(name, PolicyKind::TwoLru);
        assert!(
            cache.counts.migrations() > 5 * proposed.counts.migrations(),
            "{name}: cache copies {} vs proposed migrations {}",
            cache.counts.migrations(),
            proposed.counts.migrations()
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn dram_cache_keeps_all_pages_in_nvm() {
    let report = run("bodytrack", PolicyKind::DramCache);
    // Inclusive architecture: NVM occupancy is bounded by its capacity and
    // DRAM holds at most its capacity of copies.
    assert!(
        report.counts.fills_to_nvm > 0,
        "all fills land in the backing store"
    );
    assert_eq!(report.counts.fills_to_dram, 0);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn clock_pro_and_dram_cache_lose_to_clock_dwf_on_power() {
    // The baseline ladder's left half: the pre-CLOCK-DWF organizations are
    // strictly worse on these workloads (the reason CLOCK-DWF was the
    // state of the art the paper had to beat).
    for name in ["bodytrack", "freqmine", "x264"] {
        let dwf = run(name, PolicyKind::ClockDwf);
        let pro = run(name, PolicyKind::ClockPro);
        let cache = run(name, PolicyKind::DramCache);
        let dwf_power = dwf.energy.total().value();
        assert!(
            pro.energy.total().value() > dwf_power,
            "{name}: clock-pro should trail clock-dwf"
        );
        assert!(
            cache.energy.total().value() > dwf_power,
            "{name}: dram-cache should trail clock-dwf"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn adaptive_never_does_worse_than_static_on_migration_heavy_workloads() {
    for name in ["canneal", "raytrace", "vips", "streamcluster"] {
        let fixed = run(name, PolicyKind::TwoLru);
        let adaptive = run(name, PolicyKind::AdaptiveTwoLru);
        assert!(
            adaptive.counts.migrations() <= fixed.counts.migrations(),
            "{name}: adaptive migrations {} vs static {}",
            adaptive.counts.migrations(),
            fixed.counts.migrations()
        );
        assert!(
            adaptive.energy.total().value() <= fixed.energy.total().value() * 1.001,
            "{name}: adaptive power must not regress"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "volume-sensitive; run with --release")]
fn every_policy_reports_consistent_totals() {
    for kind in PolicyKind::all() {
        let report = run("bodytrack", kind);
        assert_eq!(
            report.counts.hits() + report.counts.faults,
            report.counts.requests,
            "{kind:?}"
        );
        assert_eq!(
            report.counts.reads + report.counts.writes,
            report.counts.requests,
            "{kind:?}"
        );
        // Module accounting and top-level counters agree on demand traffic.
        let demand = report.dram_stats.request.accesses() + report.nvm_stats.request.accesses();
        assert_eq!(demand, report.counts.hits(), "{kind:?}");
    }
}
