//! # hybridmem
//!
//! A complete, from-scratch reproduction of *"An Operating System Level
//! Data Migration Scheme in Hybrid DRAM-NVM Memory Architecture"*
//! (Salkhordeh & Asadi, DATE 2016): an OS-level page-migration policy for
//! hybrid DRAM+NVM main memories, the CLOCK-DWF baseline it is compared
//! against, the analytical performance/power/endurance models, and every
//! substrate needed to regenerate the paper's figures — a PARSEC-calibrated
//! trace generator, a multi-core cache-hierarchy simulator, and
//! DRAM/PCM/disk device models.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! names. Depend on it to get everything, or on the individual
//! `hybridmem-*` crates for narrower builds.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `hybridmem-types` | ids, access/memory vocabulary, quantities |
//! | [`trace`] | `hybridmem-trace` | workload specs, PARSEC profiles, generator, trace I/O |
//! | [`cachesim`] | `hybridmem-cachesim` | Table II cache hierarchy (COTSon substitute) |
//! | [`device`] | `hybridmem-device` | Table IV DRAM/PCM models, DMA, endurance |
//! | [`policy`] | `hybridmem-policy` | two-LRU scheme, CLOCK-DWF, baselines, adaptive extension |
//! | [`sim`] | `hybridmem-core` | simulator, Eq. 1–3 models, experiment runners |
//! | [`metrics`] | `hybridmem-metrics` | deterministic counters/gauges/histograms for telemetry |
//!
//! # Quickstart
//!
//! ```
//! use hybridmem::sim::{ExperimentConfig, PolicyKind};
//! use hybridmem::trace::parsec;
//!
//! // Evaluate the proposed scheme against CLOCK-DWF on a scaled-down
//! // PARSEC bodytrack trace, exactly per the paper's methodology.
//! let spec = parsec::spec("bodytrack")?.capped(10_000);
//! let config = ExperimentConfig::default();
//! let reports = config.compare(&spec, &[PolicyKind::TwoLru, PolicyKind::ClockDwf])?;
//! assert_eq!(reports[0].policy, "two-lru");
//! assert!(reports.iter().all(|r| r.amat().value() > 0.0));
//! # Ok::<(), hybridmem::types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hybridmem_cachesim as cachesim;
pub use hybridmem_core as sim;
pub use hybridmem_device as device;
pub use hybridmem_metrics as metrics;
pub use hybridmem_policy as policy;
pub use hybridmem_trace as trace;
pub use hybridmem_types as types;
