//! Run the full PARSEC-calibrated evaluation matrix — every Table III
//! workload under the proposed scheme, CLOCK-DWF, and both single-tier
//! baselines — and print the per-workload rates behind the paper's figures.
//!
//! ```text
//! cargo run --release --example parsec_suite [max_accesses_per_workload]
//! ```

use hybridmem::sim::{compare_policies, geo_mean, ExperimentConfig, PolicyKind};
use hybridmem::trace::parsec;
use hybridmem::types::Error;

fn main() -> Result<(), Error> {
    let cap: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("max_accesses must be an integer"))
        .unwrap_or(1_000_000);

    let specs: Vec<_> = parsec::all_specs()
        .into_iter()
        .map(|spec| spec.capped(cap))
        .collect();
    let kinds = [
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
        PolicyKind::ClockDwf,
        PolicyKind::TwoLru,
    ];
    let config = ExperimentConfig::default();
    let rows = compare_policies(&specs, &kinds, &config)?;

    println!(
        "{:<14} {:>8} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload",
        "miss%",
        "nvmR%",
        "nvmW%",
        "dwfMig%",
        "2lruMig%",
        "dwf P/D",
        "2lru P/D",
        "dwf W/N",
        "2lru W/N",
        "2lruA/dwf"
    );

    let mut power_dwf = Vec::new();
    let mut power_2lru = Vec::new();
    let mut writes_dwf = Vec::new();
    let mut writes_2lru = Vec::new();
    let mut amat_ratio = Vec::new();

    for (spec, row) in specs.iter().zip(&rows) {
        let [dram_only, nvm_only, clock_dwf, two_lru] = &row[..] else {
            unreachable!("four policies requested");
        };
        let requests = dram_only.counts.requests as f64;
        let p_dwf = clock_dwf.energy_normalized_to(dram_only);
        let p_2lru = two_lru.energy_normalized_to(dram_only);
        let w_dwf = clock_dwf.nvm_writes_normalized_to(nvm_only);
        let w_2lru = two_lru.nvm_writes_normalized_to(nvm_only);
        let a_ratio = two_lru.amat_normalized_to(clock_dwf);
        println!(
            "{:<14} {:>7.3}% {:>6.3}% {:>6.3}% {:>6.3}% {:>7.3}% {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            spec.name,
            dram_only.counts.faults as f64 / requests * 100.0,
            two_lru.counts.nvm_read_hits as f64 / requests * 100.0,
            two_lru.counts.nvm_write_hits as f64 / requests * 100.0,
            clock_dwf.counts.migrations() as f64 / requests * 100.0,
            two_lru.counts.migrations() as f64 / requests * 100.0,
            p_dwf,
            p_2lru,
            w_dwf,
            w_2lru,
            a_ratio,
        );
        power_dwf.push(p_dwf);
        power_2lru.push(p_2lru);
        writes_dwf.push(w_dwf);
        writes_2lru.push(w_2lru);
        amat_ratio.push(a_ratio);
    }

    println!(
        "{:<14} {:>8} {:>7} {:>7} {:>7} {:>8} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
        "G-Mean",
        "",
        "",
        "",
        "",
        "",
        geo_mean(&power_dwf),
        geo_mean(&power_2lru),
        geo_mean(&writes_dwf),
        geo_mean(&writes_2lru),
        geo_mean(&amat_ratio),
    );
    println!(
        "\npaper targets: 2lru power ≈ 0.57x DRAM (G-Mean), ≤ 0.86x of CLOCK-DWF;\n\
         2lru NVM writes ≈ 0.51x NVM-only; 2lru AMAT ≈ 0.52x CLOCK-DWF (G-Mean)."
    );
    Ok(())
}
