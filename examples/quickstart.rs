//! Quickstart: evaluate the proposed two-LRU migration scheme against
//! CLOCK-DWF and the single-technology baselines on one PARSEC workload,
//! printing the power / performance / endurance comparison the paper is
//! about.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart [workload] [max_accesses]
//! ```

use hybridmem::sim::{ExperimentConfig, PolicyKind, SimulationReport};
use hybridmem::trace::parsec;
use hybridmem::types::Error;

fn main() -> Result<(), Error> {
    let mut args = std::env::args().skip(1);
    let workload = args.next().unwrap_or_else(|| "bodytrack".to_owned());
    let cap: u64 = args
        .next()
        .map(|s| s.parse().expect("max_accesses must be an integer"))
        .unwrap_or(200_000);

    let spec = parsec::spec(&workload)?.capped(cap);
    let config = ExperimentConfig::default();

    println!("workload: {workload}");
    println!(
        "  trace: {} accesses ({:.1}% writes), footprint {} pages",
        spec.total_accesses(),
        spec.write_ratio() * 100.0,
        spec.working_set.value(),
    );
    let (dram, nvm, total) = config.memory_sizes(&spec);
    println!(
        "  memory: {} pages total (75% of footprint) = {} DRAM + {} NVM\n",
        total.value(),
        dram.value(),
        nvm.value(),
    );

    let kinds = [
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
        PolicyKind::ClockDwf,
        PolicyKind::TwoLru,
    ];
    let reports = config.compare(&spec, &kinds)?;
    let dram_only = &reports[0];
    let nvm_only = &reports[1];

    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "policy", "hit%", "migrations", "AMAT(ns)", "energy/req", "power vs D", "NVMwr vs N"
    );
    for report in &reports {
        print_row(report, dram_only, nvm_only);
    }

    println!(
        "\nThe proposed scheme (two-lru) should show fewer migrations, lower\n\
         AMAT, and fewer NVM writes than clock-dwf, at a fraction of the\n\
         DRAM-only power — the paper's headline claims."
    );
    Ok(())
}

fn print_row(report: &SimulationReport, dram_only: &SimulationReport, nvm_only: &SimulationReport) {
    let nvm_ratio = if nvm_only.nvm_writes.total() > 0 {
        report.nvm_writes_normalized_to(nvm_only)
    } else {
        0.0
    };
    println!(
        "{:<12} {:>8.1}% {:>12} {:>12.0} {:>9.1} nJ {:>11.3}x {:>11.3}x",
        report.policy,
        report.counts.hit_ratio() * 100.0,
        report.counts.migrations(),
        report.amat().value(),
        report.appr().value(),
        report.energy_normalized_to(dram_only),
        nvm_ratio,
    );
}
