//! Endurance deep-dive: NVM wear and lifetime under each policy.
//!
//! The paper's endurance analysis stops at write counts (Figs. 2c/4b); this
//! example extends it to per-page wear distributions and lifetime
//! estimates, using the device crate's [`WearTracker`]-derived statistics.
//!
//! ```text
//! cargo run --release --example endurance [workload] [max_accesses]
//! ```

use hybridmem::device::DEFAULT_PCM_CELL_ENDURANCE;
use hybridmem::sim::{ExperimentConfig, PolicyKind, SimulationReport};
use hybridmem::trace::parsec;
use hybridmem::types::Error;

fn main() -> Result<(), Error> {
    let mut args = std::env::args().skip(1);
    let workload = args.next().unwrap_or_else(|| "vips".to_owned());
    let cap: u64 = args
        .next()
        .map(|s| s.parse().expect("max_accesses must be an integer"))
        .unwrap_or(400_000);

    let spec = parsec::spec(&workload)?.capped(cap);
    let config = ExperimentConfig::default();
    println!(
        "workload {workload}: {} accesses, {:.1}% writes\n",
        spec.total_accesses(),
        spec.write_ratio() * 100.0
    );
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "policy", "NVM writes", "max wear", "mean wear", "imbalance", "est. lifetime"
    );

    for kind in [
        PolicyKind::NvmOnly,
        PolicyKind::ClockPro,
        PolicyKind::ClockDwf,
        PolicyKind::TwoLru,
        PolicyKind::AdaptiveTwoLru,
    ] {
        let report = config.run(&spec, kind)?;
        print_row(&report);
    }

    println!(
        "\nLifetime = cell endurance ({DEFAULT_PCM_CELL_ENDURANCE} writes) \
         divided by the hottest\npage's write rate, assuming the measured \
         traffic mix is stationary and no\nwear leveling. The proposed \
         scheme extends lifetime by both writing less\nand spreading writes \
         more evenly than CLOCK-DWF. Absolute lifetimes are\nshort because \
         the capped trace compresses hours of traffic into a fraction\nof a \
         second of simulated time."
    );
    Ok(())
}

/// Formats a duration with a unit matched to its magnitude.
fn human_duration(seconds: f64) -> String {
    if seconds >= 365.25 * 24.0 * 3600.0 {
        format!("{:.1} years", seconds / (365.25 * 24.0 * 3600.0))
    } else if seconds >= 24.0 * 3600.0 {
        format!("{:.1} days", seconds / (24.0 * 3600.0))
    } else if seconds >= 3600.0 {
        format!("{:.1} hours", seconds / 3600.0)
    } else {
        format!("{seconds:.0} s")
    }
}

fn print_row(report: &SimulationReport) {
    // Reconstruct the write rate from the duration model: writes per
    // simulated second of workload time.
    let writes_per_second = if report.duration_ns > 0.0 {
        report.nvm_writes.total() as f64 / (report.duration_ns * 1e-9)
    } else {
        0.0
    };
    let lifetime = if report.wear.max_page_wear > 0 && writes_per_second > 0.0 {
        let hottest_share =
            report.wear.max_page_wear as f64 / report.nvm_writes.total().max(1) as f64;
        let seconds = DEFAULT_PCM_CELL_ENDURANCE as f64 / (writes_per_second * hottest_share);
        human_duration(seconds)
    } else {
        "unbounded".to_owned()
    };
    println!(
        "{:<18} {:>12} {:>12} {:>12.1} {:>12.2} {:>14}",
        report.policy,
        report.nvm_writes.total(),
        report.wear.max_page_wear,
        report.wear.mean_page_wear,
        report.wear.imbalance,
        lifetime,
    );
}
