//! Build a custom workload from scratch, persist its trace to disk, reload
//! it, and evaluate the migration policies on it — the full public-API tour
//! for users bringing their own workloads instead of the PARSEC profiles.
//!
//! ```text
//! cargo run --release --example custom_workload [trace_path]
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use hybridmem::policy::{ClockDwfPolicy, HybridPolicy, TwoLruConfig, TwoLruPolicy};
use hybridmem::sim::HybridSimulator;
use hybridmem::trace::{io, LocalityParams, PhaseParams, TraceGenerator, TraceStats, WorkloadSpec};
use hybridmem::types::{PageAccess, PageCount};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/custom_workload.trace".to_owned());

    // 1. Describe the workload: a 64 MB key-value-store-like footprint,
    //    strongly skewed reads with a write-hot index region and periodic
    //    compaction bursts.
    let spec = WorkloadSpec::new(
        "kv-store",
        16_384, // 64 MB of 4 KB pages
        800_000,
        200_000,
        LocalityParams {
            reuse_probability: 0.85,
            popularity_skew: 24.0,
            popularity_span: 0.5,
            sequential_probability: 0.002,
            cold_write_damping: 0.1,
            write_hot_fraction: 0.1,
            write_hot_multiplier: 6.0,
            phase: Some(PhaseParams {
                length: 250_000,
                footprint_fraction: 0.04,
                intensity: 0.3,
            }),
            ..LocalityParams::balanced()
        },
    )?;

    // 2. Generate and persist the trace (binary format; text also works).
    let writer = BufWriter::new(File::create(&trace_path)?);
    io::write_binary(TraceGenerator::new(spec.clone(), 1234), writer)?;
    println!("wrote trace to {trace_path}");

    // 3. Reload and characterize it.
    let reader = BufReader::new(File::open(&trace_path)?);
    let trace = io::read_binary(reader)?;
    let stats = TraceStats::from_accesses(trace.iter().copied());
    println!(
        "reloaded {} accesses: footprint {} KB, {:.1}% reads, {:.1} accesses/page, {:.1}% write-dominant pages",
        stats.total(),
        stats.working_set_kb(),
        stats.read_ratio() * 100.0,
        stats.accesses_per_page(),
        stats.write_dominant_page_ratio() * 100.0,
    );

    // 4. Size a hybrid memory per the paper's rule (75% of footprint, 10%
    //    DRAM) and evaluate both migration policies on the same trace.
    let total = PageCount::new(spec.working_set.value() * 3 / 4);
    let dram = PageCount::new((total.value() / 10).max(1));
    let nvm = PageCount::new(total.value() - dram.value());
    println!(
        "\nmemory: {} pages = {} DRAM + {} NVM\n",
        total.value(),
        dram.value(),
        nvm.value()
    );

    let policies: Vec<Box<dyn HybridPolicy>> = vec![
        Box::new(TwoLruPolicy::new(TwoLruConfig::new(dram, nvm)?)),
        Box::new(ClockDwfPolicy::new(dram, nvm)?),
    ];
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12}",
        "policy", "hit%", "migrations", "AMAT(ns)", "NVM writes"
    );
    for policy in policies {
        let mut simulator = HybridSimulator::with_date2016_devices(policy);
        simulator.run(trace.iter().copied().map(PageAccess::from));
        let report = simulator.into_report(spec.name.clone());
        println!(
            "{:<12} {:>7.2}% {:>12} {:>12.0} {:>12}",
            report.policy,
            report.counts.hit_ratio() * 100.0,
            report.counts.migrations(),
            report.amat().value(),
            report.nvm_writes.total(),
        );
    }
    Ok(())
}
