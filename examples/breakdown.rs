//! Inspect the full per-component breakdown (energy, latency, NVM writes)
//! of every policy on one workload — the raw material of the paper's
//! stacked-bar figures.
//!
//! ```text
//! cargo run --release --example breakdown [workload] [max_accesses]
//! ```

use hybridmem::sim::{ExperimentConfig, PolicyKind, SimulationReport};
use hybridmem::trace::parsec;
use hybridmem::types::Error;

fn main() -> Result<(), Error> {
    let mut args = std::env::args().skip(1);
    let workload = args.next().unwrap_or_else(|| "canneal".to_owned());
    let cap: u64 = args
        .next()
        .map(|s| s.parse().expect("max_accesses must be an integer"))
        .unwrap_or(300_000);

    let spec = parsec::spec(&workload)?.capped(cap);
    let config = ExperimentConfig::default();
    println!(
        "workload {workload}: {} accesses, wss {} (nominal {}), write ratio {:.1}%",
        spec.total_accesses(),
        spec.working_set.value(),
        spec.nominal_working_set.value(),
        spec.write_ratio() * 100.0
    );

    for kind in [
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
        PolicyKind::ClockDwf,
        PolicyKind::TwoLru,
        PolicyKind::AdaptiveTwoLru,
    ] {
        let r = config.run(&spec, kind)?;
        print_report(&r);
    }
    Ok(())
}

fn print_report(r: &SimulationReport) {
    let n = r.counts.requests as f64;
    println!("\n=== {} ===", r.policy);
    println!(
        "  requests {} | hits D(r/w) {}/{} N(r/w) {}/{} | faults {} ({:.4}%)",
        r.counts.requests,
        r.counts.dram_read_hits,
        r.counts.dram_write_hits,
        r.counts.nvm_read_hits,
        r.counts.nvm_write_hits,
        r.counts.faults,
        r.counts.faults as f64 / n * 100.0
    );
    println!(
        "  migrations: to-DRAM {} to-NVM {} | fills D {} N {} | evictions {}",
        r.counts.migrations_to_dram,
        r.counts.migrations_to_nvm,
        r.counts.fills_to_dram,
        r.counts.fills_to_nvm,
        r.counts.evictions_to_disk
    );
    println!(
        "  energy/req (nJ): static {:.2} dynamic {:.2} fills {:.2} migrations {:.2} | total {:.2}",
        r.energy.static_energy.value() / n,
        r.energy.dynamic.value() / n,
        r.energy.page_faults.value() / n,
        r.energy.migrations.value() / n,
        r.appr().value()
    );
    println!(
        "  latency/req (ns): requests {:.1} faults {:.1} migrations {:.1} | AMAT {:.1}",
        r.latency.requests.value() / n,
        r.latency.faults.value() / n,
        r.latency.migrations.value() / n,
        r.amat().value()
    );
    println!(
        "  NVM writes: requests {} fills {} migrations {} | total {}",
        r.nvm_writes.requests,
        r.nvm_writes.page_faults,
        r.nvm_writes.migrations,
        r.nvm_writes.total()
    );
}
