//! Reuse-distance analysis of the PARSEC-calibrated traces — the
//! calibration instrument behind DESIGN.md §5.
//!
//! For each workload, prints the miss-ratio curve an LRU memory would see
//! at several capacities, confirming that the paper's 75 %-of-footprint
//! memory operates in the near-zero-fault regime its figures imply (with
//! `dedup`'s streaming sweeps as the designed exception).
//!
//! ```text
//! cargo run --release --example reuse_analysis [max_accesses]
//! ```

use hybridmem::trace::{parsec, ReuseProfile, TraceGenerator};
use hybridmem::types::Error;

fn main() -> Result<(), Error> {
    let cap: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("max_accesses must be an integer"))
        .unwrap_or(300_000);

    println!(
        "{:<14} {:>9} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "workload", "pages", "mean dist", "miss@10%", "miss@50%", "miss@75%", "miss@100%"
    );
    for name in parsec::NAMES {
        let spec = parsec::spec(name)?.capped(cap);
        // Skip the warmup prefix like the experiments do, so the curve
        // reflects the measured steady state.
        let warmup = (spec.total_accesses() as f64 * 0.3) as usize;
        let profile =
            ReuseProfile::from_pages(TraceGenerator::new(spec, 42).skip(warmup).map(|a| a.page()));
        let pages = profile.distinct_pages();
        let miss_at = |fraction: f64| {
            let capacity = ((pages as f64 * fraction).ceil() as u64).max(1);
            profile.miss_ratio(capacity) * 100.0
        };
        println!(
            "{:<14} {:>9} {:>10} {:>11.4}% {:>11.4}% {:>11.4}% {:>11.4}%",
            name,
            pages,
            profile
                .mean_distance()
                .map_or_else(|| "-".to_owned(), |d| format!("{d:.0}")),
            miss_at(0.10),
            miss_at(0.50),
            miss_at(0.75),
            miss_at(1.00),
        );
    }
    println!(
        "\nCapacities are fractions of the *steady-state* footprint (post-warmup\n\
         distinct pages) — smaller than the full footprint the experiments size\n\
         memory against, so the simulator's actual fault rates are lower still.\n\
         The miss@100% column is the floor set by the window's own cold touches;\n\
         the flat curves from 50% on show the hot set is far smaller than memory,\n\
         the near-zero-fault regime of DESIGN.md \u{00a7}5."
    );
    Ok(())
}
