//! Threshold tuning with the sweep API — the library-level version of the
//! `abl_thresholds` ablation, for users picking operating points for their
//! own workloads.
//!
//! ```text
//! cargo run --release --example threshold_tuning [workload] [max_accesses]
//! ```

use hybridmem::sim::{sweep_dram_fractions, sweep_thresholds, ExperimentConfig};
use hybridmem::trace::parsec;
use hybridmem::types::Error;

fn main() -> Result<(), Error> {
    let mut args = std::env::args().skip(1);
    let workload = args.next().unwrap_or_else(|| "raytrace".to_owned());
    let cap: u64 = args
        .next()
        .map(|s| s.parse().expect("max_accesses must be an integer"))
        .unwrap_or(300_000);

    let spec = parsec::spec(&workload)?.capped(cap);
    let config = ExperimentConfig::default();

    println!("=== {workload}: promotion-threshold sweep ===");
    println!(
        "{:<22} {:>10} {:>12} {:>10}",
        "point", "mig/kreq", "P vs DRAM", "AMAT ratio"
    );
    let thresholds = [
        (1, 2),
        (2, 4),
        (4, 8),
        (6, 12),
        (12, 24),
        (24, 48),
        (48, 96),
    ];
    let points = sweep_thresholds(&spec, &thresholds, &config)?;
    let mut best = (f64::INFINITY, String::new());
    for point in &points {
        println!(
            "{:<22} {:>10.3} {:>12.3} {:>10.3}",
            point.parameter,
            point.migrations_per_kreq(),
            point.power_ratio(),
            point.amat_ratio(),
        );
        if point.power_ratio() < best.0 {
            best = (point.power_ratio(), point.parameter.clone());
        }
    }
    println!(
        "→ best power point for {workload}: {} ({:.3}x DRAM-only)",
        best.1, best.0
    );

    println!("\n=== {workload}: DRAM-share sweep ===");
    println!("{:<22} {:>12} {:>12}", "point", "P vs DRAM", "AMAT (ns)");
    for point in sweep_dram_fractions(&spec, &[0.05, 0.10, 0.20, 0.35, 0.50], &config)? {
        println!(
            "{:<22} {:>12.3} {:>12.1}",
            point.parameter,
            point.power_ratio(),
            point.subject.amat().value(),
        );
    }
    println!(
        "\nThe paper notes raytrace's optimal thresholds differ from the other\n\
         workloads (Section V-B) — compare this sweep against, e.g.,\n\
         `threshold_tuning bodytrack` to see the shift."
    );
    Ok(())
}
