//! Drive the COTSon-substitute cache hierarchy and show how the Table II
//! caches shape the traffic that reaches main memory — the reason the paper
//! used a full-system simulator ("the multi-level caches in CPU affect the
//! distribution of accesses dispatched to the main memory").
//!
//! ```text
//! cargo run --release --example cache_hierarchy [max_accesses]
//! ```

use hybridmem::cachesim::{filter_to_memory_trace, CacheGeometry, CotsonConfig};
use hybridmem::trace::{parsec, TraceGenerator, TraceStats};
use hybridmem::types::{Access, Error};

fn main() -> Result<(), Error> {
    let cap: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("max_accesses must be an integer"))
        .unwrap_or(500_000);

    println!("=== Table II hierarchy: what reaches main memory ===");
    println!(
        "{:<14} {:>10} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "workload", "cpu acc", "L1 hit%", "LLC hit%", "mem fills", "writebacks", "mem/cpu%"
    );
    for name in [
        "blackscholes",
        "bodytrack",
        "canneal",
        "ferret",
        "streamcluster",
    ] {
        let spec = parsec::spec(name)?.capped(cap);
        let cpu_trace: Vec<Access> = TraceGenerator::new(spec.clone(), 7).collect();
        let (memory_trace, stats) =
            filter_to_memory_trace(cpu_trace.iter().copied(), CotsonConfig::date2016())?;
        println!(
            "{:<14} {:>10} {:>7.1}% {:>7.1}% {:>10} {:>10} {:>9.2}%",
            name,
            cpu_trace.len(),
            stats.l1.hit_ratio() * 100.0,
            stats.llc.hit_ratio() * 100.0,
            stats.memory_fills,
            stats.memory_writebacks,
            memory_trace.len() as f64 / cpu_trace.len() as f64 * 100.0,
        );
        // The memory-side trace is page-granular and write-back shaped:
        let mem_stats: TraceStats = memory_trace
            .iter()
            .map(|pa| {
                let addr = pa.page.base_address();
                match pa.kind {
                    hybridmem::types::AccessKind::Read => {
                        Access::read(addr, hybridmem::types::CoreId::new(0))
                    }
                    hybridmem::types::AccessKind::Write => {
                        Access::write(addr, hybridmem::types::CoreId::new(0))
                    }
                }
            })
            .collect();
        println!(
            "{:<14} {:>10} memory-side: {:.1}% reads over {} pages",
            "",
            "",
            mem_stats.read_ratio() * 100.0,
            mem_stats.footprint().value()
        );
    }

    // Show the sensitivity to LLC size: a bigger LLC absorbs more traffic.
    println!("\n=== LLC size sweep (canneal) ===");
    let spec = parsec::spec("canneal")?.capped(cap);
    let cpu_trace: Vec<Access> = TraceGenerator::new(spec, 7).collect();
    for kb in [512u64, 1024, 2048, 4096] {
        let mut config = CotsonConfig::date2016();
        config.llc = CacheGeometry::new(kb * 1024, 16, 64)?;
        let (memory_trace, stats) = filter_to_memory_trace(cpu_trace.iter().copied(), config)?;
        println!(
            "  LLC {kb:>4} KB: LLC hit {:>5.1}%, {} memory accesses ({:.2}% of CPU)",
            stats.llc.hit_ratio() * 100.0,
            memory_trace.len(),
            memory_trace.len() as f64 / cpu_trace.len() as f64 * 100.0,
        );
    }
    Ok(())
}
