//! Property-based tests for the trace crate: generator budget exactness,
//! determinism, domain bounds, scaling invariants, and I/O roundtrips.

use proptest::prelude::*;

use hybridmem_trace::{io, LocalityParams, PhaseParams, TraceGenerator, TraceStats, WorkloadSpec};
use hybridmem_types::{Access, AccessKind, Address, CoreId, ACCESS_GRANULARITY};

fn locality_strategy() -> impl Strategy<Value = LocalityParams> {
    (
        0.0f64..=1.0,   // reuse
        0.1f64..=3.0,   // theta
        0.01f64..=1.0,  // depth fraction
        0.0f64..=0.3,   // sequential
        1.0f64..=512.0, // skew
        0.1f64..=1.0,   // span
        0.0f64..=10.0,  // damping/boost
        0.0f64..=1.0,   // write hot fraction
        1.0f64..=20.0,  // write hot multiplier
        prop::option::of((100u64..5_000, 0.01f64..=1.0, 0.1f64..=1.0)),
    )
        .prop_map(
            |(reuse, theta, depth, seq, skew, span, damping, hot_frac, hot_mult, phase)| {
                LocalityParams {
                    reuse_probability: reuse,
                    stack_theta: theta,
                    stack_depth_fraction: depth,
                    sequential_probability: seq,
                    popularity_skew: skew,
                    popularity_span: span,
                    cold_write_damping: damping,
                    write_hot_fraction: hot_frac,
                    write_hot_multiplier: hot_mult,
                    phase: phase.map(|(length, footprint, intensity)| PhaseParams {
                        length,
                        footprint_fraction: footprint,
                        intensity,
                    }),
                }
            },
        )
}

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (2u64..2_000, 0u64..5_000, 0u64..5_000, locality_strategy()).prop_filter_map(
        "at least one access",
        |(wss, reads, writes, locality)| {
            WorkloadSpec::new("prop", wss, reads.max(1), writes, locality).ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator emits exactly the requested number of reads and
    /// writes, for any valid spec — the deficit controller is exact.
    #[test]
    fn budgets_are_exact(spec in spec_strategy(), seed in 0u64..1_000) {
        let stats: TraceStats = TraceGenerator::new(spec.clone(), seed).collect();
        prop_assert_eq!(stats.reads, spec.reads);
        prop_assert_eq!(stats.writes, spec.writes);
    }

    /// Every page stays inside the working set; every address is
    /// access-aligned; every core is within the configured count.
    #[test]
    fn domains_are_respected(spec in spec_strategy(), seed in 0u64..1_000) {
        for access in TraceGenerator::new(spec.clone(), seed) {
            prop_assert!(access.page().value() < spec.working_set.value());
            prop_assert_eq!(access.address.value() % ACCESS_GRANULARITY as u64, 0);
            prop_assert!(access.core.index() < spec.cores);
        }
    }

    /// Same (spec, seed) ⇒ identical trace; different seeds almost always
    /// differ (compared only when the trace has room to differ).
    #[test]
    fn deterministic_in_seed(spec in spec_strategy(), seed in 0u64..1_000) {
        let a: Vec<Access> = TraceGenerator::new(spec.clone(), seed).collect();
        let b: Vec<Access> = TraceGenerator::new(spec.clone(), seed).collect();
        prop_assert_eq!(a, b);
    }

    /// Scaling preserves the write ratio (within rounding) and the
    /// nominal bookkeeping used for static power.
    #[test]
    fn scaling_preserves_shape(spec in spec_strategy(), factor in 0.05f64..1.0) {
        let scaled = spec.scaled(factor);
        prop_assert_eq!(scaled.nominal_working_set, spec.nominal_working_set);
        prop_assert_eq!(scaled.nominal_accesses, spec.nominal_accesses);
        prop_assert!(scaled.working_set <= spec.working_set);
        prop_assert!(scaled.total_accesses() <= spec.total_accesses() + 1);
        if spec.writes > 20 && spec.reads > 20 && factor > 0.2 {
            prop_assert!((scaled.write_ratio() - spec.write_ratio()).abs() < 0.1);
        }
    }

    /// `capped` never exceeds the requested volume by more than rounding
    /// and keeps at least the footprint floor.
    #[test]
    fn capped_bounds_hold(spec in spec_strategy(), cap in 10u64..10_000) {
        let capped = spec.capped(cap);
        if spec.total_accesses() > cap {
            // Rounding each of reads/writes up can add at most 1 each.
            prop_assert!(capped.total_accesses() <= cap + 2);
            let floor = WorkloadSpec::MIN_CAPPED_FOOTPRINT.min(spec.working_set.value());
            prop_assert!(capped.working_set.value() >= floor.min(spec.working_set.value()));
        } else {
            prop_assert_eq!(capped, spec);
        }
    }

    /// Text and binary formats both roundtrip arbitrary access sequences.
    #[test]
    fn io_roundtrips(
        accesses in prop::collection::vec(
            (0u64..1u64 << 40, prop::bool::ANY, 0u16..64).prop_map(|(addr, write, core)| {
                let kind = if write { AccessKind::Write } else { AccessKind::Read };
                Access::new(Address::new(addr), kind, CoreId::new(core))
            }),
            0..200,
        )
    ) {
        let mut text = Vec::new();
        io::write_text(accesses.iter().copied(), &mut text).unwrap();
        prop_assert_eq!(&io::read_text(text.as_slice()).unwrap(), &accesses);

        let mut binary = Vec::new();
        io::write_binary(accesses.iter().copied(), &mut binary).unwrap();
        prop_assert_eq!(binary.len(), accesses.len() * io::BINARY_RECORD_SIZE);
        prop_assert_eq!(&io::read_binary(binary.as_slice()).unwrap(), &accesses);
    }

    /// Trace statistics are consistent with themselves.
    #[test]
    fn stats_are_internally_consistent(spec in spec_strategy(), seed in 0u64..100) {
        let stats: TraceStats = TraceGenerator::new(spec.clone(), seed).collect();
        prop_assert_eq!(stats.total(), spec.total_accesses());
        let per_page_total: u64 = stats.per_page.values().map(|(r, w)| r + w).sum();
        prop_assert_eq!(per_page_total, stats.total());
        let ratio = stats.read_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));
    }
}
