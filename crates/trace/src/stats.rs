//! Trace statistics: the measurements behind the regenerated Table III.

use std::collections::BTreeMap;

use hybridmem_types::{Access, PageCount, PageId, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of an access stream.
///
/// # Examples
///
/// ```
/// use hybridmem_trace::{parsec, TraceGenerator, TraceStats};
///
/// let spec = parsec::spec("bodytrack")?.capped(5_000);
/// let stats = TraceStats::from_accesses(TraceGenerator::new(spec.clone(), 1));
/// assert_eq!(stats.total(), spec.total_accesses());
/// assert!(stats.footprint().value() <= spec.working_set.value());
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of read requests observed.
    pub reads: u64,
    /// Number of write requests observed.
    pub writes: u64,
    /// Per-page access counts `(reads, writes)`.
    ///
    /// A `BTreeMap` so serialized statistics list pages in a stable,
    /// sorted order (hash-map iteration order would leak the hasher
    /// state into the serialized output).
    pub per_page: BTreeMap<PageId, (u64, u64)>,
}

impl TraceStats {
    /// Computes statistics over an access stream.
    #[must_use]
    pub fn from_accesses<I: IntoIterator<Item = Access>>(accesses: I) -> Self {
        let mut stats = Self::default();
        for access in accesses {
            stats.record(access);
        }
        stats
    }

    /// Folds one access into the statistics.
    pub fn record(&mut self, access: Access) {
        let entry = self.per_page.entry(access.page()).or_insert((0, 0));
        if access.kind.is_write() {
            self.writes += 1;
            entry.1 += 1;
        } else {
            self.reads += 1;
            entry.0 += 1;
        }
    }

    /// Total accesses observed.
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Distinct pages touched (the measured working-set size).
    #[must_use]
    pub fn footprint(&self) -> PageCount {
        PageCount::new(self.per_page.len() as u64)
    }

    /// Measured working-set size in KB (for Table III comparison).
    #[must_use]
    pub fn working_set_kb(&self) -> u64 {
        self.footprint().value() * (PAGE_SIZE as u64 / 1024)
    }

    /// Fraction of accesses that are reads, in `[0, 1]`; 0 for an empty
    /// trace.
    #[must_use]
    pub fn read_ratio(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.reads as f64 / self.total() as f64
        }
    }

    /// Mean accesses per touched page; 0 for an empty trace.
    #[must_use]
    pub fn accesses_per_page(&self) -> f64 {
        if self.per_page.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.total() as f64 / self.per_page.len() as f64
        }
    }

    /// Fraction of touched pages that are write-dominant (more writes than
    /// reads) — the page population the migration policies compete over.
    #[must_use]
    pub fn write_dominant_page_ratio(&self) -> f64 {
        if self.per_page.is_empty() {
            return 0.0;
        }
        let dominant = self
            .per_page
            .values()
            .filter(|(reads, writes)| writes > reads)
            .count();
        #[allow(clippy::cast_precision_loss)]
        {
            dominant as f64 / self.per_page.len() as f64
        }
    }
}

impl Extend<Access> for TraceStats {
    fn extend<I: IntoIterator<Item = Access>>(&mut self, iter: I) {
        for access in iter {
            self.record(access);
        }
    }
}

impl FromIterator<Access> for TraceStats {
    fn from_iter<I: IntoIterator<Item = Access>>(iter: I) -> Self {
        Self::from_accesses(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_types::CoreId;

    fn read(page: u64) -> Access {
        Access::read(PageId::new(page).base_address(), CoreId::new(0))
    }

    fn write(page: u64) -> Access {
        Access::write(PageId::new(page).base_address(), CoreId::new(0))
    }

    #[test]
    fn counts_and_footprint() {
        let stats = TraceStats::from_accesses([read(0), read(0), write(1), read(2)]);
        assert_eq!(stats.reads, 3);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.footprint(), PageCount::new(3));
        assert_eq!(stats.working_set_kb(), 12);
        assert!((stats.read_ratio() - 0.75).abs() < 1e-12);
        assert!((stats.accesses_per_page() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let stats = TraceStats::default();
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.read_ratio(), 0.0);
        assert_eq!(stats.accesses_per_page(), 0.0);
        assert_eq!(stats.write_dominant_page_ratio(), 0.0);
    }

    #[test]
    fn write_dominance_is_per_page() {
        let stats = TraceStats::from_accesses([
            write(0),
            write(0),
            read(0), // page 0: write-dominant
            read(1),
            write(1), // page 1: tied → not dominant
            read(2),  // page 2: read-only
        ]);
        assert!((stats.write_dominant_page_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn extend_and_collect() {
        let mut stats: TraceStats = [read(0)].into_iter().collect();
        stats.extend([write(1)]);
        assert_eq!(stats.total(), 2);
        assert_eq!(stats.per_page[&PageId::new(1)], (0, 1));
    }
}
