//! The synthetic trace generator: turns a [`WorkloadSpec`] into a
//! deterministic stream of memory accesses.
//!
//! # Model
//!
//! Each access is drawn in three steps:
//!
//! 1. **Page selection.** With probability `reuse_probability` the page is
//!    drawn from a bounded recency buffer of recently touched pages, with
//!    rank `r` weighted ∝ `1/(r+1)^stack_theta` (an LRU-stack-distance
//!    model; the buffer keeps duplicates, so hot pages compound).
//!    Otherwise, with probability `sequential_probability`, a sequential
//!    page walk advances; else a uniform page is drawn. When the workload
//!    has [`PhaseParams`](crate::PhaseParams), each phase confines accesses
//!    to a rotating sub-footprint with the configured intensity.
//! 2. **Direction.** Every page has a deterministic write affinity
//!    (write-hot or cold, per `write_hot_fraction` / `write_hot_multiplier`);
//!    a global deficit controller rescales the per-page write probability so
//!    the whole trace converges to the spec's exact read/write counts.
//! 3. **Byte address.** A uniformly chosen 8-byte-aligned offset inside the
//!    page, and a page-affine core id.
//!
//! The generator is an [`Iterator`]; it is fully deterministic given
//! `(spec, seed)`, which makes every figure in the repository
//! bit-reproducible.
//!
//! # Examples
//!
//! ```
//! use hybridmem_trace::{parsec, TraceGenerator};
//!
//! let spec = parsec::spec("bodytrack")?.capped(10_000);
//! let accesses: Vec<_> = TraceGenerator::new(spec.clone(), 42).collect();
//! assert_eq!(accesses.len() as u64, spec.total_accesses());
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use std::collections::VecDeque;

use hybridmem_types::{Access, AccessKind, Address, CoreId, PageId, ACCESS_GRANULARITY, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::WorkloadSpec;

/// Upper bound on the recency-buffer depth, bounding per-access cost and
/// memory regardless of the working-set size.
const DEPTH_CAP: usize = 8192;

/// Greatest common divisor (Euclid), for choosing a permutation multiplier
/// coprime with the working-set size.
const fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Modular inverse of `a` modulo `m` (extended Euclid); `a` must be coprime
/// with `m`. Used to invert the popularity permutation so any page can be
/// mapped back to its popularity rank.
fn mod_inverse(a: u64, m: u64) -> u64 {
    debug_assert_eq!(gcd(a, m), 1, "a must be coprime with m");
    if m == 1 {
        return 0;
    }
    let (mut old_r, mut r) = (i128::from(a), i128::from(m));
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    let m = i128::from(m);
    (((old_s % m) + m) % m) as u64
}

/// Classification of one access by how "recently active" its page is —
/// drives the cold-write damping (see
/// [`LocalityParams::cold_write_damping`](crate::LocalityParams)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessDepth {
    /// Shallow reuse / top popularity / active phase: likely DRAM-resident.
    Hot,
    /// Sequential sweep, deep-stack reuse, or cold popularity draw.
    Deep,
}

/// Deterministic trace generator. See the module docs (in the source) for the model.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    rng: StdRng,
    /// Recency buffer (MRU at the back), bounded by `depth`; duplicates
    /// intentional.
    recency: VecDeque<PageId>,
    depth: usize,
    /// Cumulative Zipf weights over ranks `0..depth`.
    rank_cdf: Vec<f64>,
    seq_cursor: u64,
    emitted: u64,
    emitted_writes: u64,
    /// Running sum/count of pre-correction per-page write probabilities —
    /// normalizes the write-budget controller (see `next_kind`).
    write_prob_sum: f64,
    write_prob_count: u64,
    seed: u64,
    /// Affine popularity permutation `page = (rank·a + b) mod wss`, with
    /// `gcd(a, wss) = 1` so it is a bijection: popularity ranks scatter over
    /// the page-id space instead of clustering at low addresses.
    perm_a: u64,
    perm_b: u64,
    /// `perm_a⁻¹ mod wss`, for mapping a page back to its popularity rank.
    perm_a_inv: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec`, deterministic in `seed`.
    #[must_use]
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let depth = ((spec.working_set.value() as f64 * spec.locality.stack_depth_fraction).ceil()
            as usize)
            .clamp(1, DEPTH_CAP);
        let mut rank_cdf = Vec::with_capacity(depth);
        let mut acc = 0.0;
        for r in 0..depth {
            #[allow(clippy::cast_precision_loss)]
            let w = 1.0 / ((r + 1) as f64).powf(spec.locality.stack_theta);
            acc += w;
            rank_cdf.push(acc);
        }
        let wss = spec.working_set.value();
        // Pick an odd multiplier coprime with the working set. The walk
        // visits ascending odd values and wraps to 1 (always coprime), so
        // it provably terminates — a naive `(a+2) mod wss | 1` can cycle
        // without ever reaching a coprime value (e.g. wss = 3 sticks at 3).
        let mut perm_a = (Self::hash64(seed.wrapping_add(0xa11ce)) % wss.max(1)) | 1;
        while gcd(perm_a, wss.max(1)) != 1 {
            perm_a = if perm_a + 2 <= wss { perm_a + 2 } else { 1 };
        }
        let perm_b = Self::hash64(seed.wrapping_add(0xb0b)) % wss.max(1);
        let perm_a_inv = mod_inverse(perm_a, wss.max(1));
        Self {
            spec,
            rng: StdRng::seed_from_u64(seed ^ 0x68_79_62_72_69_64_6d_65), // "hybridme"
            recency: VecDeque::with_capacity(depth + 1),
            depth,
            rank_cdf,
            seq_cursor: 0,
            emitted: 0,
            emitted_writes: 0,
            write_prob_sum: 0.0,
            write_prob_count: 0,
            seed,
            perm_a,
            perm_b,
            perm_a_inv,
        }
    }

    /// The share of the working set (by popularity rank) treated as *hot*
    /// for write placement — slightly under the 7.5 % of pages a
    /// 75 %-memory/10 %-DRAM configuration keeps in DRAM.
    const HOT_BAND: f64 = 0.06;

    /// Maps a page back to its popularity rank via the inverse permutation.
    fn popularity_rank(&self, page: PageId) -> u64 {
        let wss = self.spec.working_set.value();
        let shifted = (page.value() + wss - self.perm_b % wss) % wss;
        shifted.wrapping_mul(self.perm_a_inv) % wss
    }

    /// Page-based hot/deep classification: a page is *hot* when its
    /// popularity rank falls in the DRAM-sized top band. Unlike a
    /// draw-mechanism classification, this holds regardless of whether the
    /// page arrived via reuse, sweep, or fresh draw — repeat touches of a
    /// mid-band (NVM-resident) page stay damped.
    fn depth_of(&self, page: PageId) -> AccessDepth {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let hot_band = (self.spec.working_set.value() as f64 * Self::HOT_BAND).ceil() as u64;
        if self.popularity_rank(page) < hot_band {
            AccessDepth::Hot
        } else {
            AccessDepth::Deep
        }
    }

    /// The specification being generated.
    #[must_use]
    pub const fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of accesses already produced.
    #[must_use]
    pub const fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Splitmix64 — a cheap, high-quality page hash used for deterministic
    /// per-page attributes (write affinity, core affinity, phase bases).
    fn hash64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Deterministic write-hot attribute of a page.
    fn is_write_hot(&self, page: PageId) -> bool {
        let f = self.spec.locality.write_hot_fraction;
        if f <= 0.0 {
            return false;
        }
        #[allow(clippy::cast_precision_loss)]
        let u = Self::hash64(page.value() ^ self.seed) as f64 / u64::MAX as f64;
        u < f
    }

    /// Draws the page for the next access, classifying it as *hot* (likely
    /// DRAM-resident: shallow reuse, top popularity) or *deep* (sequential
    /// sweep, deep stack reuse, cold popularity).
    fn next_page(&mut self) -> (PageId, AccessDepth) {
        let wss = self.spec.working_set.value();
        let loc = self.spec.locality;

        // Initialization sweep: programs touch their data structures while
        // setting up, so the first `wss` accesses walk the whole footprint
        // once. Compulsory page faults thereby land in the warmup window
        // rather than being smeared over the measured steady state.
        if self.emitted < wss && wss > 1 {
            let page = PageId::new(self.emitted);
            let class = self.depth_of(page);
            if class == AccessDepth::Hot {
                self.push_recency(page);
            }
            return (page, class);
        }

        let mut page = if !self.recency.is_empty() && self.rng.gen::<f64>() < loc.reuse_probability
        {
            // Reuse: rank-weighted draw from the recency buffer.
            let limit = self.recency.len().min(self.depth);
            let total = self.rank_cdf[limit - 1];
            let u = self.rng.gen::<f64>() * total;
            let rank = match self.rank_cdf[..limit].binary_search_by(|w| w.total_cmp(&u)) {
                Ok(i) | Err(i) => i.min(limit - 1),
            };
            self.recency[self.recency.len() - 1 - rank]
        } else if self.rng.gen::<f64>() < loc.sequential_probability {
            // Sequential walk.
            self.seq_cursor = (self.seq_cursor + 1) % wss;
            PageId::new(self.seq_cursor)
        } else {
            // Popularity-skewed fresh page: rank ∝ u^skew within the span,
            // scattered over the id space by the affine permutation.
            let u = self.rng.gen::<f64>();
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            let rank = ((wss as f64 * loc.popularity_span * u.powf(loc.popularity_skew)) as u64)
                .min(wss - 1);
            PageId::new((rank.wrapping_mul(self.perm_a) + self.perm_b) % wss)
        };

        // Phase confinement: remap the page into the active sub-footprint.
        if let Some(phase) = loc.phase {
            let phase_idx = self.emitted / phase.length;
            if self.rng.gen::<f64>() < phase.intensity {
                #[allow(
                    clippy::cast_precision_loss,
                    clippy::cast_possible_truncation,
                    clippy::cast_sign_loss
                )]
                let span = ((wss as f64 * phase.footprint_fraction).ceil() as u64).max(1);
                // Keep the phase region inside the popularity span: those
                // pages are memory-resident in steady state, so phase
                // rotation re-focuses traffic without page faults.
                #[allow(
                    clippy::cast_precision_loss,
                    clippy::cast_possible_truncation,
                    clippy::cast_sign_loss
                )]
                let region = ((wss as f64 * loc.popularity_span) as u64).max(span);
                let base =
                    Self::hash64(phase_idx ^ self.seed.rotate_left(17)) % (region - span + 1);
                page = PageId::new((base + page.value() % span) % wss);
            }
        }

        // Classification is purely popularity-rank based — phase pages keep
        // their band's write behaviour, so phase-heavy workloads still damp
        // (or boost) writes according to their profile.
        let depth_class = self.depth_of(page);
        // Only hot pages enter the recency buffer: deep pages are touched
        // diffusely and not re-touched soon (the low temporal correlation
        // that keeps threshold-gated promotions rare, as in the paper's
        // near-zero proposed-scheme migration rates).
        if depth_class == AccessDepth::Hot {
            self.push_recency(page);
        }
        (page, depth_class)
    }

    /// Appends a page to the bounded recency buffer.
    fn push_recency(&mut self, page: PageId) {
        self.recency.push_back(page);
        if self.recency.len() > self.depth {
            self.recency.pop_front();
        }
    }

    /// Decides read vs write for `page`, honouring per-page affinity, the
    /// hot/deep damping, and the global read/write budget.
    fn next_kind(&mut self, page: PageId, depth_class: AccessDepth) -> AccessKind {
        let remaining = self.spec.total_accesses() - self.emitted;
        let remaining_writes = self.spec.writes - self.emitted_writes;
        if remaining_writes == 0 {
            return AccessKind::Read;
        }
        if remaining_writes == remaining {
            return AccessKind::Write;
        }

        let f = self.spec.locality.write_hot_fraction;
        let m = self.spec.locality.write_hot_multiplier;
        // Per-page probability with mean `write_ratio` under uniform page
        // visits (the controller below renormalizes against the realized
        // access mix anyway).
        let p_cold = self.spec.write_ratio() / (1.0 - f + m * f);
        let mut p_page = if self.is_write_hot(page) {
            (m * p_cold).min(1.0)
        } else {
            p_cold
        };
        if depth_class == AccessDepth::Deep {
            p_page *= self.spec.locality.cold_write_damping;
        }
        // Deficit controller with online normalization: divide by the
        // running mean of pre-correction probabilities so the *rate* of
        // write emission tracks the remaining budget regardless of how the
        // damping/boost skews the raw values (otherwise a boosted profile
        // exhausts its write budget during warmup and the measured steady
        // state is write-starved).
        self.write_prob_sum += p_page;
        self.write_prob_count += 1;
        #[allow(clippy::cast_precision_loss)]
        let mean_p = (self.write_prob_sum / self.write_prob_count as f64).max(1e-12);
        #[allow(clippy::cast_precision_loss)]
        let remaining_ratio = remaining_writes as f64 / remaining as f64;
        let p = (p_page * remaining_ratio / mean_p).clamp(0.0, 1.0);
        if self.rng.gen::<f64>() < p {
            AccessKind::Write
        } else {
            AccessKind::Read
        }
    }

    /// Byte address: page base plus a uniform 8-byte-aligned offset.
    fn address_in(&mut self, page: PageId) -> Address {
        let words = (PAGE_SIZE / ACCESS_GRANULARITY) as u64;
        let offset = self.rng.gen_range(0..words) * ACCESS_GRANULARITY as u64;
        page.base_address().offset(offset)
    }

    /// Page-affine core assignment.
    fn core_of(&self, page: PageId) -> CoreId {
        #[allow(clippy::cast_possible_truncation)]
        CoreId::new((Self::hash64(page.value() ^ 0xc0de) % u64::from(self.spec.cores)) as u16)
    }
}

impl Iterator for TraceGenerator {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.emitted >= self.spec.total_accesses() {
            return None;
        }
        let (page, depth_class) = self.next_page();
        let kind = self.next_kind(page, depth_class);
        let address = self.address_in(page);
        let core = self.core_of(page);
        self.emitted += 1;
        if kind.is_write() {
            self.emitted_writes += 1;
        }
        Some(Access::new(address, kind, core))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        #[allow(clippy::cast_possible_truncation)]
        let remaining = (self.spec.total_accesses() - self.emitted) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for TraceGenerator {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalityParams;
    use std::collections::HashSet;

    fn spec(wss: u64, reads: u64, writes: u64) -> WorkloadSpec {
        WorkloadSpec::new("test", wss, reads, writes, LocalityParams::balanced()).unwrap()
    }

    #[test]
    fn emits_exactly_the_requested_volume_and_mix() {
        let gen = TraceGenerator::new(spec(100, 8_000, 2_000), 1);
        let (mut reads, mut writes) = (0u64, 0u64);
        for a in gen {
            match a.kind {
                AccessKind::Read => reads += 1,
                AccessKind::Write => writes += 1,
            }
        }
        assert_eq!(reads, 8_000, "deficit controller hits the exact budget");
        assert_eq!(writes, 2_000);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a: Vec<_> = TraceGenerator::new(spec(64, 1_000, 500), 7).collect();
        let b: Vec<_> = TraceGenerator::new(spec(64, 1_000, 500), 7).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TraceGenerator::new(spec(64, 1_000, 500), 8).collect();
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn pages_stay_within_working_set() {
        let s = spec(37, 5_000, 1_000);
        for a in TraceGenerator::new(s, 3) {
            assert!(a.page().value() < 37, "page {} outside wss", a.page());
        }
    }

    #[test]
    fn addresses_are_access_aligned() {
        for a in TraceGenerator::new(spec(16, 500, 100), 4) {
            assert_eq!(a.address.value() % ACCESS_GRANULARITY as u64, 0);
        }
    }

    #[test]
    fn cores_are_in_range_and_page_affine() {
        let s = spec(64, 2_000, 0);
        let mut page_core = std::collections::HashMap::new();
        for a in TraceGenerator::new(s, 5) {
            assert!(a.core.index() < 4);
            let prev = page_core.insert(a.page(), a.core);
            if let Some(prev) = prev {
                assert_eq!(prev, a.core, "core affinity is per-page stable");
            }
        }
    }

    #[test]
    fn read_only_spec_emits_no_writes() {
        let s = WorkloadSpec::new(
            "ro",
            32,
            1_000,
            0,
            LocalityParams {
                write_hot_fraction: 0.0,
                write_hot_multiplier: 1.0,
                ..LocalityParams::balanced()
            },
        )
        .unwrap();
        assert!(TraceGenerator::new(s, 2).all(|a| a.kind.is_read()));
    }

    #[test]
    fn reuse_concentrates_accesses() {
        // High reuse over the recency buffer concentrates traffic; with a
        // uniform (skew 1) popularity both specs differ only in reuse.
        let hot = WorkloadSpec::new(
            "hot",
            1_000,
            20_000,
            0,
            LocalityParams {
                reuse_probability: 0.95,
                stack_theta: 1.5,
                popularity_skew: 1.0,
                write_hot_fraction: 0.0,
                write_hot_multiplier: 1.0,
                ..LocalityParams::balanced()
            },
        )
        .unwrap();
        let cold = WorkloadSpec::new(
            "cold",
            1_000,
            20_000,
            0,
            LocalityParams {
                reuse_probability: 0.0,
                sequential_probability: 0.0,
                popularity_skew: 1.0,
                write_hot_fraction: 0.0,
                write_hot_multiplier: 1.0,
                ..LocalityParams::balanced()
            },
        )
        .unwrap();
        // Concentration metric: share of accesses landing on the hottest
        // 10% of pages (by access count).
        let concentration = |s: WorkloadSpec| {
            let mut counts = std::collections::HashMap::new();
            let mut total = 0u64;
            for a in TraceGenerator::new(s, 9) {
                *counts.entry(a.page()).or_insert(0u64) += 1;
                total += 1;
            }
            let mut sorted: Vec<u64> = counts.values().copied().collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let top = sorted.len().div_ceil(10);
            sorted[..top].iter().sum::<u64>() as f64 / total as f64
        };
        let hot_share = concentration(hot);
        let cold_share = concentration(cold);
        assert!(
            hot_share > 1.5 * cold_share,
            "hot {hot_share:.3} vs cold {cold_share:.3}"
        );
    }

    #[test]
    fn phases_restrict_footprint_locally() {
        use crate::PhaseParams;
        let s = WorkloadSpec::new(
            "bursty",
            1_000,
            10_000,
            0,
            LocalityParams {
                reuse_probability: 0.0,
                sequential_probability: 0.0,
                write_hot_fraction: 0.0,
                write_hot_multiplier: 1.0,
                phase: Some(PhaseParams {
                    length: 5_000,
                    footprint_fraction: 0.02,
                    intensity: 1.0,
                }),
                ..LocalityParams::balanced()
            },
        )
        .unwrap();
        let pages: Vec<PageId> = TraceGenerator::new(s, 11).map(|a| a.page()).collect();
        // Skip the initialization sweep (first `wss` accesses walk the whole
        // footprint); the remainder of phase 0 must stay inside the phase
        // region. Intensity 1.0 with 2% footprint: ≤ 20 pages.
        let phase0: HashSet<_> = pages[1_000..5_000].iter().collect();
        let phase1: HashSet<_> = pages[5_000..].iter().collect();
        assert!(
            phase0.len() <= 20,
            "phase footprint too wide: {}",
            phase0.len()
        );
        assert!(
            phase1.len() <= 20,
            "phase footprint too wide: {}",
            phase1.len()
        );
    }

    #[test]
    fn tiny_working_sets_terminate_for_all_seeds() {
        // Regression: the permutation-multiplier search used to loop
        // forever for some (wss, seed) pairs (wss = 3 with an unlucky
        // hash). Exhaust small working sets over many seeds.
        for wss in 1..=16u64 {
            for seed in 0..64u64 {
                let spec =
                    WorkloadSpec::new("tiny", wss, 20, 5, LocalityParams::balanced()).unwrap();
                let count = TraceGenerator::new(spec, seed).count();
                assert_eq!(count, 25, "wss={wss} seed={seed}");
            }
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut gen = TraceGenerator::new(spec(8, 90, 10), 1);
        assert_eq!(gen.len(), 100);
        gen.next();
        assert_eq!(gen.len(), 99);
        assert_eq!(gen.emitted(), 1);
    }

    #[test]
    fn write_hot_pages_receive_disproportionate_writes() {
        let s = WorkloadSpec::new(
            "skewed",
            200,
            40_000,
            10_000,
            LocalityParams {
                write_hot_fraction: 0.1,
                write_hot_multiplier: 8.0,
                ..LocalityParams::balanced()
            },
        )
        .unwrap();
        let gen = TraceGenerator::new(s, 21);
        let hot_check = gen.clone();
        let mut hot_writes = 0u64;
        let mut cold_writes = 0u64;
        let mut hot_total = 0u64;
        let mut cold_total = 0u64;
        for a in gen {
            let hot = hot_check.is_write_hot(a.page());
            if hot {
                hot_total += 1;
                hot_writes += u64::from(a.kind.is_write());
            } else {
                cold_total += 1;
                cold_writes += u64::from(a.kind.is_write());
            }
        }
        let hot_rate = hot_writes as f64 / hot_total.max(1) as f64;
        let cold_rate = cold_writes as f64 / cold_total.max(1) as f64;
        assert!(
            hot_rate > 2.0 * cold_rate,
            "hot {hot_rate:.3} vs cold {cold_rate:.3}"
        );
    }
}
