//! Synthetic, PARSEC-calibrated memory-trace generation for the hybrid
//! DRAM–NVM simulator.
//!
//! The DATE 2016 paper drives its evaluation with PARSEC-3.0 memory traces
//! collected via the COTSon full-system simulator — neither of which can be
//! shipped with this repository. This crate substitutes a **deterministic
//! synthetic generator** calibrated to everything the paper documents about
//! those traces (see `DESIGN.md`, "Substitutions"):
//!
//! * [`WorkloadSpec`] / [`LocalityParams`] / [`PhaseParams`] — the
//!   statistical shape of a workload (footprint, volume, read/write mix,
//!   reuse, streaming, burst phases, per-page write affinity);
//! * [`parsec`] — the 12 Table III workload profiles;
//! * [`TraceGenerator`] — the seeded generator (an [`Iterator`] over
//!   [`Access`](hybridmem_types::Access)es);
//! * [`TraceStats`] — measurements used to regenerate Table III;
//! * [`ReuseProfile`] — exact LRU reuse-distance analysis and miss-ratio
//!   curves (the calibration instrument behind the profiles);
//! * [`io`] — text and binary trace formats for interoperability;
//! * [`binfmt`] — the fixed-record page-trace format the trace cache
//!   spills to for zero-copy cached replay.
//!
//! # Examples
//!
//! ```
//! use hybridmem_trace::{parsec, TraceGenerator, TraceStats};
//!
//! // A scaled-down canneal trace, deterministic in the seed.
//! let spec = parsec::spec("canneal")?.capped(20_000);
//! let stats: TraceStats = TraceGenerator::new(spec.clone(), 42).collect();
//! assert_eq!(stats.total(), spec.total_accesses());
//! assert!(stats.read_ratio() > 0.9, "canneal is read-dominant");
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
mod generator;
pub mod io;
pub mod parsec;
mod reuse;
mod stats;
mod workload;

pub use generator::TraceGenerator;
pub use reuse::ReuseProfile;
pub use stats::TraceStats;
pub use workload::{LocalityParams, PhaseParams, WorkloadSpec, WorkloadSpecBuilder};
