//! Trace serialization: a human-readable text format and a compact binary
//! format.
//!
//! # Text format
//!
//! One access per line: `R` or `W`, the hexadecimal byte address, and the
//! core index, separated by single spaces. Lines starting with `#` and
//! blank lines are ignored.
//!
//! ```text
//! # kind address core
//! R 0x1000 0
//! W 0x2008 3
//! ```
//!
//! # Binary format
//!
//! Fixed 11-byte records: address as `u64` little-endian, core as `u16`
//! little-endian, and one kind byte (`0` read, `1` write). No header; the
//! record count is the file length divided by 11.

use std::io::{self, BufRead, Read, Write};

use hybridmem_types::{Access, AccessKind, Address, CoreId, Error};

/// Size of one binary trace record in bytes.
pub const BINARY_RECORD_SIZE: usize = 11;

/// Writes accesses in the text format.
///
/// Note that a `&mut W` can be passed where a writer is expected.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use hybridmem_trace::io::write_text;
/// use hybridmem_types::{Access, Address, CoreId};
///
/// let mut out = Vec::new();
/// write_text([Access::read(Address::new(0x1000), CoreId::new(2))], &mut out)?;
/// assert_eq!(String::from_utf8(out).unwrap(), "R 0x1000 2\n");
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_text<I, W>(accesses: I, mut writer: W) -> io::Result<()>
where
    I: IntoIterator<Item = Access>,
    W: Write,
{
    for access in accesses {
        let kind = if access.kind.is_write() { 'W' } else { 'R' };
        writeln!(
            writer,
            "{kind} {:#x} {}",
            access.address,
            access.core.index()
        )?;
    }
    Ok(())
}

/// Reads a text-format trace fully into memory.
///
/// Note that a `&mut R` can be passed where a reader is expected.
///
/// # Errors
///
/// Returns [`Error::ParseTrace`] (with a 1-based line number) for malformed
/// lines and [`Error::InvalidInput`] for underlying I/O failures.
///
/// # Examples
///
/// ```
/// use hybridmem_trace::io::read_text;
///
/// let trace = read_text("R 0x1000 0\nW 0x2008 1\n".as_bytes())?;
/// assert_eq!(trace.len(), 2);
/// assert!(trace[1].kind.is_write());
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
pub fn read_text<R: BufRead>(reader: R) -> Result<Vec<Access>, Error> {
    let mut accesses = Vec::new();
    for (index, line) in reader.lines().enumerate() {
        let record = index as u64 + 1;
        let line = line.map_err(|e| Error::invalid_input(format!("I/O error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        accesses.push(parse_text_line(trimmed, record)?);
    }
    Ok(accesses)
}

fn parse_text_line(line: &str, record: u64) -> Result<Access, Error> {
    let mut parts = line.split_ascii_whitespace();
    let kind = match parts.next() {
        Some("R") | Some("r") => AccessKind::Read,
        Some("W") | Some("w") => AccessKind::Write,
        other => {
            return Err(Error::parse_trace(
                record,
                format!("expected kind R or W, got {other:?}"),
            ))
        }
    };
    let addr_text = parts
        .next()
        .ok_or_else(|| Error::parse_trace(record, "missing address"))?;
    let addr_digits = addr_text
        .strip_prefix("0x")
        .or_else(|| addr_text.strip_prefix("0X"))
        .unwrap_or(addr_text);
    let address = u64::from_str_radix(addr_digits, 16)
        .map_err(|e| Error::parse_trace(record, format!("bad address {addr_text:?}: {e}")))?;
    let core = match parts.next() {
        Some(text) => text
            .parse::<u16>()
            .map_err(|e| Error::parse_trace(record, format!("bad core {text:?}: {e}")))?,
        None => 0,
    };
    if let Some(extra) = parts.next() {
        return Err(Error::parse_trace(
            record,
            format!("unexpected trailing field {extra:?}"),
        ));
    }
    Ok(Access::new(Address::new(address), kind, CoreId::new(core)))
}

/// Writes accesses in the binary format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_binary<I, W>(accesses: I, mut writer: W) -> io::Result<()>
where
    I: IntoIterator<Item = Access>,
    W: Write,
{
    for access in accesses {
        let mut record = [0u8; BINARY_RECORD_SIZE];
        record[..8].copy_from_slice(&access.address.value().to_le_bytes());
        record[8..10].copy_from_slice(&access.core.index().to_le_bytes());
        record[10] = u8::from(access.kind.is_write());
        writer.write_all(&record)?;
    }
    Ok(())
}

/// Reads a binary-format trace fully into memory.
///
/// # Errors
///
/// Returns [`Error::ParseTrace`] on a truncated final record or an invalid
/// kind byte, and [`Error::InvalidInput`] for underlying I/O failures.
///
/// # Examples
///
/// ```
/// use hybridmem_trace::io::{read_binary, write_binary};
/// use hybridmem_types::{Access, Address, CoreId};
///
/// let original = vec![Access::write(Address::new(4096), CoreId::new(1))];
/// let mut buffer = Vec::new();
/// write_binary(original.iter().copied(), &mut buffer)?;
/// assert_eq!(read_binary(buffer.as_slice())?, original);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn read_binary<R: Read>(mut reader: R) -> Result<Vec<Access>, Error> {
    let mut bytes = Vec::new();
    reader
        .read_to_end(&mut bytes)
        .map_err(|e| Error::invalid_input(format!("I/O error: {e}")))?;
    if bytes.len() % BINARY_RECORD_SIZE != 0 {
        return Err(Error::parse_trace(
            (bytes.len() / BINARY_RECORD_SIZE) as u64 + 1,
            format!(
                "truncated record: {} trailing bytes",
                bytes.len() % BINARY_RECORD_SIZE
            ),
        ));
    }
    let mut accesses = Vec::with_capacity(bytes.len() / BINARY_RECORD_SIZE);
    for (index, record) in bytes.chunks_exact(BINARY_RECORD_SIZE).enumerate() {
        let short = |field: &str| {
            Error::parse_trace(index as u64 + 1, format!("record too short for {field}"))
        };
        let address = u64::from_le_bytes(record[..8].try_into().map_err(|_| short("address"))?);
        let core = u16::from_le_bytes(record[8..10].try_into().map_err(|_| short("core id"))?);
        let kind = match record[10] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            other => {
                return Err(Error::parse_trace(
                    index as u64 + 1,
                    format!("invalid kind byte {other}"),
                ))
            }
        };
        accesses.push(Access::new(Address::new(address), kind, CoreId::new(core)));
    }
    Ok(accesses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Access> {
        vec![
            Access::read(Address::new(0x1000), CoreId::new(0)),
            Access::write(Address::new(0x2008), CoreId::new(3)),
            Access::read(Address::new(0), CoreId::new(1)),
        ]
    }

    #[test]
    fn text_roundtrip() {
        let mut buffer = Vec::new();
        write_text(sample(), &mut buffer).unwrap();
        let back = read_text(buffer.as_slice()).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn text_accepts_comments_blanks_and_lowercase() {
        let text = "# header\n\nr 0x10 0\nw 20 1\n";
        let trace = read_text(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].address, Address::new(0x20));
        assert!(trace[1].kind.is_write());
    }

    #[test]
    fn text_core_defaults_to_zero() {
        let trace = read_text("R 0x40\n".as_bytes()).unwrap();
        assert_eq!(trace[0].core, CoreId::new(0));
    }

    #[test]
    fn text_rejects_malformed_lines() {
        for (bad, needle) in [
            ("X 0x10 0", "expected kind"),
            ("R", "missing address"),
            ("R zz 0", "bad address"),
            ("R 0x10 core", "bad core"),
            ("R 0x10 0 extra", "trailing"),
        ] {
            let err = read_text(bad.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{bad:?} → {err} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn text_reports_line_numbers() {
        let err = read_text("R 0x10 0\nBAD\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("record 2"), "{err}");
    }

    #[test]
    fn binary_roundtrip() {
        let mut buffer = Vec::new();
        write_binary(sample(), &mut buffer).unwrap();
        assert_eq!(buffer.len(), 3 * BINARY_RECORD_SIZE);
        assert_eq!(read_binary(buffer.as_slice()).unwrap(), sample());
    }

    #[test]
    fn binary_rejects_truncation_and_bad_kind() {
        let mut buffer = Vec::new();
        write_binary(sample(), &mut buffer).unwrap();
        let err = read_binary(&buffer[..buffer.len() - 1]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        buffer[10] = 9; // corrupt the kind byte of record 1
        let err = read_binary(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("invalid kind byte"), "{err}");
        assert!(err.to_string().contains("record 1"), "{err}");
    }
}
