//! Compact binary page-trace format for zero-copy cached replay.
//!
//! The matrix engine replays the same (spec, seed) trace for every
//! policy of a cell row; regenerating it access-by-access is the single
//! largest fixed cost of a cold run. This module gives a generated
//! trace a durable on-disk form so it is synthesized **once** and then
//! replayed from fixed-size records with no per-access decode
//! allocation.
//!
//! # Layout
//!
//! All integers are little-endian. A file is a 40-byte header, the
//! canonical spec JSON, `count` fixed 16-byte records, and (since
//! version 2) an 8-byte FNV-1a 64 checksum trailer over the record
//! bytes:
//!
//! ```text
//! offset  size  field
//!      0     8  magic        b"HMTRACE1"
//!      8     4  version      format version (currently 2)
//!     12     4  spec_len     byte length of the spec JSON that follows
//!     16     8  seed         generator seed the trace was produced with
//!     24     8  fingerprint  cache key of (spec JSON, seed)
//!     32     8  count        number of records
//!     40   spec_len          canonical spec JSON (collision verification)
//!     40+spec_len  16*count  records
//!     then     8  checksum   FNV-1a 64 of the record bytes (version ≥ 2)
//! ```
//!
//! Each record is `{ page: u64, flags: u64 }` with flag bit 0 carrying
//! the op (0 = read, 1 = write); the remaining flag bits are reserved
//! for future op/size packing and must be zero.
//!
//! Version 1 files (no trailer) are still readable: the readers skip
//! checksum verification for them, so every spill written before the
//! version bump stays valid. Version 2 readers verify the trailer and
//! report a bit-flipped or mid-record-truncated body as
//! [`Error::ParseTrace`] — the trace cache counts that as a spill miss
//! and regenerates instead of trusting a corrupt file.
//!
//! The full spec JSON rides in the header (not just its fingerprint) so
//! a reader can verify the file really holds the trace it asked for —
//! the same collision discipline the in-memory
//! `TraceCache` applies to its slots.
//!
//! # Zero-copy replay
//!
//! The workspace forbids `unsafe`, so the reader does not `mmap`;
//! instead [`BinTraceReader`] performs one bulk read and a single-pass
//! decode into a `Box<[Record]>`, after which [`BinTraceReader::records`]
//! hands out borrowed `&[Record]` slices — no per-access decode, no
//! per-access allocation, and on little-endian targets the decode loop
//! compiles to a straight copy. Oversize traces use [`BinTraceStream`],
//! which replays through one reused fixed-size chunk buffer.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

use hybridmem_types::{AccessKind, Error, PageAccess, PageId};

/// File magic: `HMTRACE1`.
pub const MAGIC: [u8; 8] = *b"HMTRACE1";

/// Current format version.
pub const VERSION: u32 = 2;

/// Oldest format version the readers still accept (version 1 files
/// carry no checksum trailer).
pub const MIN_VERSION: u32 = 1;

/// Size of the fixed header in bytes (the spec JSON follows it).
pub const HEADER_BYTES: usize = 40;

/// Size of one record in bytes.
pub const RECORD_BYTES: usize = 16;

/// Size of the checksum trailer (version ≥ 2).
pub const TRAILER_BYTES: usize = 8;

/// FNV-1a 64 offset basis — the seed of an incremental checksum.
pub const FNV1A64_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64 prime.
const FNV1A64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an incremental FNV-1a 64 state. Start from
/// [`FNV1A64_SEED`]; feeding the same bytes in any chunking yields the
/// same digest. Shared with the resume journal's record CRCs.
#[must_use]
pub fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV1A64_PRIME);
    }
    hash
}

/// Record flag bit 0: the access is a write.
const FLAG_WRITE: u64 = 1;

/// One fixed-size trace record: a page id plus packed op flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Page id of the access.
    pub page: u64,
    /// Packed fields; bit 0 is the op (0 = read, 1 = write).
    pub flags: u64,
}

impl Record {
    /// Packs a page access into a record.
    #[must_use]
    pub fn from_access(access: PageAccess) -> Self {
        Self {
            page: access.page.value(),
            flags: u64::from(access.kind.is_write()) * FLAG_WRITE,
        }
    }

    /// True when the record is a write.
    #[must_use]
    pub const fn is_write(self) -> bool {
        self.flags & FLAG_WRITE != 0
    }

    /// Unpacks the record back into a page access.
    #[must_use]
    pub fn access(self) -> PageAccess {
        let kind = if self.is_write() {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        PageAccess::new(PageId::new(self.page), kind)
    }
}

impl From<PageAccess> for Record {
    fn from(access: PageAccess) -> Self {
        Self::from_access(access)
    }
}

impl From<Record> for PageAccess {
    fn from(record: Record) -> Self {
        record.access()
    }
}

/// Identity block of a binary trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version the file was written with.
    pub version: u32,
    /// Generator seed.
    pub seed: u64,
    /// Cache fingerprint of (spec JSON, seed).
    pub fingerprint: u64,
    /// Number of records in the file.
    pub count: u64,
    /// Canonical spec JSON the trace was generated from.
    pub spec_json: String,
}

impl TraceHeader {
    /// True when the file identifies as the trace for `spec_json` at
    /// `seed` — the collision check callers must apply before trusting
    /// a fingerprint-named file.
    #[must_use]
    pub fn matches(&self, spec_json: &str, seed: u64) -> bool {
        self.seed == seed && self.spec_json == spec_json
    }
}

/// Streaming writer producing the binary format.
///
/// The record count is not known up front, so `create` writes a header
/// with a zero count and [`TraceWriter::finish`] seeks back to patch it
/// — which is why the sink must implement [`Seek`]. Records are staged
/// through an internal buffer, so wrapping the sink in a `BufWriter` is
/// unnecessary.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    count: u64,
    buffer: Vec<u8>,
    checksum: u64,
}

/// Records staged in the writer's buffer before a flush.
const WRITER_BUFFER_RECORDS: usize = 4096;

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a trace file on `sink`: writes the header (count 0) and
    /// the spec JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when the spec JSON exceeds
    /// `u32::MAX` bytes or the sink fails.
    pub fn create(
        mut sink: W,
        spec_json: &str,
        seed: u64,
        fingerprint: u64,
    ) -> Result<Self, Error> {
        let spec_len = u32::try_from(spec_json.len())
            .map_err(|_| Error::invalid_input("spec JSON exceeds u32::MAX bytes"))?;
        let mut header = [0u8; HEADER_BYTES];
        header[..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&spec_len.to_le_bytes());
        header[16..24].copy_from_slice(&seed.to_le_bytes());
        header[24..32].copy_from_slice(&fingerprint.to_le_bytes());
        // count (bytes 32..40) stays zero until `finish` patches it.
        sink.write_all(&header).map_err(io_err)?;
        sink.write_all(spec_json.as_bytes()).map_err(io_err)?;
        Ok(Self {
            sink,
            count: 0,
            buffer: Vec::with_capacity(WRITER_BUFFER_RECORDS * RECORD_BYTES),
            checksum: FNV1A64_SEED,
        })
    }

    /// Appends one access.
    ///
    /// # Errors
    ///
    /// Propagates sink failures as [`Error::InvalidInput`].
    pub fn push(&mut self, access: PageAccess) -> Result<(), Error> {
        let record = Record::from_access(access);
        let page = record.page.to_le_bytes();
        let flags = record.flags.to_le_bytes();
        self.checksum = fnv1a64_update(self.checksum, &page);
        self.checksum = fnv1a64_update(self.checksum, &flags);
        self.buffer.extend_from_slice(&page);
        self.buffer.extend_from_slice(&flags);
        self.count += 1;
        if self.buffer.len() >= WRITER_BUFFER_RECORDS * RECORD_BYTES {
            self.sink.write_all(&self.buffer).map_err(io_err)?;
            self.buffer.clear();
        }
        Ok(())
    }

    /// Flushes buffered records, writes the checksum trailer, patches
    /// the header's record count, and returns the number of records
    /// written.
    ///
    /// # Errors
    ///
    /// Propagates sink failures as [`Error::InvalidInput`].
    pub fn finish(mut self) -> Result<u64, Error> {
        if !self.buffer.is_empty() {
            self.sink.write_all(&self.buffer).map_err(io_err)?;
            self.buffer.clear();
        }
        self.sink
            .write_all(&self.checksum.to_le_bytes())
            .map_err(io_err)?;
        self.sink.seek(SeekFrom::Start(32)).map_err(io_err)?;
        self.sink
            .write_all(&self.count.to_le_bytes())
            .map_err(io_err)?;
        self.sink.flush().map_err(io_err)?;
        Ok(self.count)
    }
}

/// Writes a whole trace to `path` in one call.
///
/// # Errors
///
/// Propagates file-system failures as [`Error::InvalidInput`].
pub fn write_trace_file<I>(
    path: &Path,
    spec_json: &str,
    seed: u64,
    fingerprint: u64,
    accesses: I,
) -> Result<u64, Error>
where
    I: IntoIterator<Item = PageAccess>,
{
    let file = File::create(path).map_err(io_err)?;
    let mut writer = TraceWriter::create(file, spec_json, seed, fingerprint)?;
    for access in accesses {
        writer.push(access)?;
    }
    writer.finish()
}

/// Whole-trace reader: one bulk read, one decode pass, then borrowed
/// zero-copy record slices.
#[derive(Debug)]
pub struct BinTraceReader {
    header: TraceHeader,
    records: Box<[Record]>,
}

impl BinTraceReader {
    /// Opens and fully decodes the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for I/O failures and
    /// [`Error::ParseTrace`] for a corrupt header or truncated body.
    pub fn open(path: &Path) -> Result<Self, Error> {
        let file = File::open(path).map_err(io_err)?;
        Self::from_reader(file)
    }

    /// Decodes a trace from any byte source.
    ///
    /// # Errors
    ///
    /// Same contract as [`BinTraceReader::open`].
    pub fn from_reader<R: Read>(mut reader: R) -> Result<Self, Error> {
        let header = read_header(&mut reader)?;
        let body_len = (header.count as usize)
            .checked_mul(RECORD_BYTES)
            .ok_or_else(|| Error::parse_trace(0, "record count overflows the address space"))?;
        let mut body = vec![0u8; body_len];
        read_exact_body(&mut reader, &mut body, header.count)?;
        if header.version >= 2 {
            verify_trailer(&mut reader, fnv1a64_update(FNV1A64_SEED, &body))?;
        }
        let mut trailing = [0u8; 1];
        if reader.read(&mut trailing).map_err(io_err)? != 0 {
            return Err(Error::parse_trace(
                header.count + 1,
                "trailing bytes after the declared record count",
            ));
        }
        let mut records = Vec::with_capacity(header.count as usize);
        for chunk in body.chunks_exact(RECORD_BYTES) {
            records.push(decode_record(chunk));
        }
        Ok(Self {
            header,
            records: records.into_boxed_slice(),
        })
    }

    /// The file's identity header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// All records, borrowed — replay iterates this slice directly.
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the reader, returning the decoded records.
    #[must_use]
    pub fn into_records(self) -> Box<[Record]> {
        self.records
    }
}

/// Default chunk size (in records) for [`BinTraceStream`].
pub const STREAM_CHUNK_RECORDS: usize = 1 << 16;

/// Chunked reader for traces too large to hold in memory: replays the
/// file through one reused fixed-size buffer.
#[derive(Debug)]
pub struct BinTraceStream<R: Read = BufReader<File>> {
    source: R,
    header: TraceHeader,
    remaining: u64,
    chunk_records: usize,
    bytes: Vec<u8>,
    chunk: Vec<Record>,
    /// Incremental FNV-1a 64 over the record bytes yielded so far.
    checksum: u64,
    /// True once the trailer has been read and verified (or skipped
    /// for a version-1 file), so the check fires exactly once.
    trailer_checked: bool,
}

impl BinTraceStream<BufReader<File>> {
    /// Opens a stream over the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for I/O failures and
    /// [`Error::ParseTrace`] for a corrupt header.
    pub fn open(path: &Path, chunk_records: usize) -> Result<Self, Error> {
        let file = File::open(path).map_err(io_err)?;
        Self::from_reader(BufReader::new(file), chunk_records)
    }
}

impl<R: Read> BinTraceStream<R> {
    /// Starts a stream over any byte source; `chunk_records` caps the
    /// records resident per chunk (0 is clamped to 1).
    ///
    /// # Errors
    ///
    /// Same contract as [`BinTraceStream::open`].
    pub fn from_reader(mut source: R, chunk_records: usize) -> Result<Self, Error> {
        let header = read_header(&mut source)?;
        let chunk_records = chunk_records.max(1);
        Ok(Self {
            remaining: header.count,
            header,
            source,
            chunk_records,
            bytes: Vec::new(),
            chunk: Vec::new(),
            checksum: FNV1A64_SEED,
            trailer_checked: false,
        })
    }

    /// The file's identity header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Records not yet yielded.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Reads the next chunk into the reused buffer, returning `None`
    /// once the declared record count has been delivered.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParseTrace`] when the file ends before the
    /// header's record count is satisfied or the version-2 checksum
    /// trailer does not match the streamed bytes, and
    /// [`Error::InvalidInput`] for I/O failures. The trailer check runs
    /// as soon as the declared count is exhausted, so the final chunk
    /// is only handed out once the whole body has verified.
    pub fn next_chunk(&mut self) -> Result<Option<&[Record]>, Error> {
        if self.remaining == 0 {
            self.check_trailer()?;
            return Ok(None);
        }
        let take = (self.chunk_records as u64).min(self.remaining) as usize;
        self.bytes.resize(take * RECORD_BYTES, 0);
        read_exact_body(
            &mut self.source,
            &mut self.bytes,
            self.header.count - self.remaining + take as u64,
        )?;
        self.checksum = fnv1a64_update(self.checksum, &self.bytes);
        self.remaining -= take as u64;
        if self.remaining == 0 {
            self.check_trailer()?;
        }
        self.chunk.clear();
        self.chunk.reserve(take);
        for chunk in self.bytes.chunks_exact(RECORD_BYTES) {
            self.chunk.push(decode_record(chunk));
        }
        Ok(Some(&self.chunk))
    }

    /// Reads and verifies the checksum trailer exactly once (no-op for
    /// version-1 files, which carry none).
    fn check_trailer(&mut self) -> Result<(), Error> {
        if self.trailer_checked || self.header.version < 2 {
            self.trailer_checked = true;
            return Ok(());
        }
        self.trailer_checked = true;
        verify_trailer(&mut self.source, self.checksum)
    }
}

fn decode_record(bytes: &[u8]) -> Record {
    let page = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slice"));
    let flags = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    Record { page, flags }
}

/// Reads and validates the fixed header plus the spec JSON.
fn read_header<R: Read>(reader: &mut R) -> Result<TraceHeader, Error> {
    let mut fixed = [0u8; HEADER_BYTES];
    reader
        .read_exact(&mut fixed)
        .map_err(|e| Error::parse_trace(0, format!("truncated header: {e}")))?;
    if fixed[..8] != MAGIC {
        return Err(Error::parse_trace(0, "bad magic: not a binary trace file"));
    }
    let version = u32::from_le_bytes(fixed[8..12].try_into().expect("4-byte slice"));
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(Error::parse_trace(
            0,
            format!("unsupported format version {version} (expected {MIN_VERSION}..={VERSION})"),
        ));
    }
    let spec_len = u32::from_le_bytes(fixed[12..16].try_into().expect("4-byte slice")) as usize;
    let seed = u64::from_le_bytes(fixed[16..24].try_into().expect("8-byte slice"));
    let fingerprint = u64::from_le_bytes(fixed[24..32].try_into().expect("8-byte slice"));
    let count = u64::from_le_bytes(fixed[32..40].try_into().expect("8-byte slice"));
    let mut spec_bytes = vec![0u8; spec_len];
    reader
        .read_exact(&mut spec_bytes)
        .map_err(|e| Error::parse_trace(0, format!("truncated spec JSON: {e}")))?;
    let spec_json = String::from_utf8(spec_bytes)
        .map_err(|_| Error::parse_trace(0, "spec JSON is not valid UTF-8"))?;
    Ok(TraceHeader {
        version,
        seed,
        fingerprint,
        count,
        spec_json,
    })
}

/// Fills `body` exactly, reporting a truncation at `record` (1-based,
/// the record the failure would have produced) on short reads.
fn read_exact_body<R: Read>(reader: &mut R, body: &mut [u8], record: u64) -> Result<(), Error> {
    reader.read_exact(body).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => Error::parse_trace(record, "truncated record body"),
        _ => Error::invalid_input(format!("I/O error: {e}")),
    })
}

/// Reads the 8-byte trailer and compares it against the checksum
/// computed over the record bytes actually read.
fn verify_trailer<R: Read>(reader: &mut R, computed: u64) -> Result<(), Error> {
    let mut trailer = [0u8; TRAILER_BYTES];
    reader
        .read_exact(&mut trailer)
        .map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => {
                Error::parse_trace(0, "truncated checksum trailer")
            }
            _ => io_err(e),
        })?;
    let stored = u64::from_le_bytes(trailer);
    if stored != computed {
        return Err(Error::parse_trace(
            0,
            format!("checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"),
        ));
    }
    Ok(())
}

fn io_err(e: std::io::Error) -> Error {
    Error::invalid_input(format!("I/O error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample(n: u64) -> Vec<PageAccess> {
        (0..n)
            .map(|i| {
                let page = PageId::new(i * 37 % 101);
                if i % 3 == 0 {
                    PageAccess::write(page)
                } else {
                    PageAccess::read(page)
                }
            })
            .collect()
    }

    fn encode(accesses: &[PageAccess], spec: &str, seed: u64, fp: u64) -> Vec<u8> {
        let mut bytes = Cursor::new(Vec::new());
        let mut writer = TraceWriter::create(&mut bytes, spec, seed, fp).unwrap();
        for access in accesses {
            writer.push(*access).unwrap();
        }
        writer.finish().unwrap();
        bytes.into_inner()
    }

    #[test]
    fn record_packs_and_unpacks() {
        for access in sample(7) {
            let record = Record::from_access(access);
            assert_eq!(record.access(), access);
            assert_eq!(record.is_write(), access.kind.is_write());
        }
    }

    #[test]
    fn roundtrip_through_reader() {
        let trace = sample(1000);
        let bytes = encode(&trace, "{\"spec\":1}", 42, 0xfeed);
        assert_eq!(
            bytes.len(),
            HEADER_BYTES + "{\"spec\":1}".len() + trace.len() * RECORD_BYTES + TRAILER_BYTES
        );
        let reader = BinTraceReader::from_reader(bytes.as_slice()).unwrap();
        assert_eq!(reader.header().seed, 42);
        assert_eq!(reader.header().fingerprint, 0xfeed);
        assert_eq!(reader.header().count, 1000);
        assert!(reader.header().matches("{\"spec\":1}", 42));
        assert!(!reader.header().matches("{\"spec\":1}", 43));
        assert!(!reader.header().matches("{\"spec\":2}", 42));
        let back: Vec<PageAccess> = reader.records().iter().map(|r| r.access()).collect();
        assert_eq!(back, trace);
    }

    #[test]
    fn roundtrip_through_stream_in_uneven_chunks() {
        let trace = sample(997);
        let bytes = encode(&trace, "{}", 7, 9);
        let mut stream = BinTraceStream::from_reader(bytes.as_slice(), 100).unwrap();
        assert_eq!(stream.remaining(), 997);
        let mut back = Vec::new();
        while let Some(chunk) = stream.next_chunk().unwrap() {
            assert!(chunk.len() <= 100);
            back.extend(chunk.iter().map(|r| r.access()));
        }
        assert_eq!(back, trace);
        assert_eq!(stream.remaining(), 0);
        assert!(stream.next_chunk().unwrap().is_none(), "stream stays done");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode(&[], "{}", 0, 0);
        let reader = BinTraceReader::from_reader(bytes.as_slice()).unwrap();
        assert!(reader.records().is_empty());
        let mut stream = BinTraceStream::from_reader(bytes.as_slice(), 8).unwrap();
        assert!(stream.next_chunk().unwrap().is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample(3), "{}", 1, 2);
        bytes[0] ^= 0xff;
        let err = BinTraceReader::from_reader(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = encode(&sample(3), "{}", 1, 2);
        bytes[8] = 9;
        let err = BinTraceReader::from_reader(bytes.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("unsupported format version"),
            "{err}"
        );
    }

    #[test]
    fn truncated_header_is_rejected() {
        let bytes = encode(&sample(3), "{}", 1, 2);
        let err = BinTraceReader::from_reader(&bytes[..HEADER_BYTES - 5]).unwrap_err();
        assert!(err.to_string().contains("truncated header"), "{err}");
    }

    #[test]
    fn truncated_spec_json_is_rejected() {
        let bytes = encode(&sample(3), "{\"name\":\"x\"}", 1, 2);
        let err = BinTraceReader::from_reader(&bytes[..HEADER_BYTES + 3]).unwrap_err();
        assert!(err.to_string().contains("truncated spec JSON"), "{err}");
    }

    #[test]
    fn truncated_body_is_rejected_by_reader_and_stream() {
        let bytes = encode(&sample(10), "{}", 1, 2);
        // Cut past the trailer and into the last record.
        let cut = &bytes[..bytes.len() - TRAILER_BYTES - 7];
        let err = BinTraceReader::from_reader(cut).unwrap_err();
        assert!(err.to_string().contains("truncated record body"), "{err}");

        let mut stream = BinTraceStream::from_reader(cut, 4).unwrap();
        let mut last = Ok(());
        while match stream.next_chunk() {
            Ok(Some(_)) => true,
            Ok(None) => false,
            Err(e) => {
                last = Err(e);
                false
            }
        } {}
        let err = last.unwrap_err();
        assert!(err.to_string().contains("truncated record body"), "{err}");
    }

    #[test]
    fn truncated_trailer_is_rejected_by_reader_and_stream() {
        let bytes = encode(&sample(6), "{}", 1, 2);
        let cut = &bytes[..bytes.len() - 3];
        let err = BinTraceReader::from_reader(cut).unwrap_err();
        assert!(
            err.to_string().contains("truncated checksum trailer"),
            "{err}"
        );

        let mut stream = BinTraceStream::from_reader(cut, 4).unwrap();
        let mut last = Ok(());
        while match stream.next_chunk() {
            Ok(Some(_)) => true,
            Ok(None) => false,
            Err(e) => {
                last = Err(e);
                false
            }
        } {}
        let err = last.unwrap_err();
        assert!(
            err.to_string().contains("truncated checksum trailer"),
            "{err}"
        );
    }

    #[test]
    fn bit_flip_in_body_is_detected_by_reader_and_stream() {
        let mut bytes = encode(&sample(8), "{}", 1, 2);
        let flip_at = HEADER_BYTES + "{}".len() + 3 * RECORD_BYTES + 1;
        bytes[flip_at] ^= 0x10;
        let err = BinTraceReader::from_reader(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        let mut stream = BinTraceStream::from_reader(bytes.as_slice(), 3).unwrap();
        let mut last = Ok(());
        while match stream.next_chunk() {
            Ok(Some(_)) => true,
            Ok(None) => false,
            Err(e) => {
                last = Err(e);
                false
            }
        } {}
        let err = last.unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    /// Rewrites an encoded file as a pre-checksum version-1 file: the
    /// version field drops to 1 and the trailer is stripped.
    fn downgrade_to_v1(mut bytes: Vec<u8>) -> Vec<u8> {
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        bytes.truncate(bytes.len() - TRAILER_BYTES);
        bytes
    }

    #[test]
    fn version1_files_without_trailer_still_read() {
        let trace = sample(9);
        let bytes = downgrade_to_v1(encode(&trace, "{\"v\":1}", 3, 4));
        let reader = BinTraceReader::from_reader(bytes.as_slice()).unwrap();
        assert_eq!(reader.header().version, 1);
        let back: Vec<PageAccess> = reader.records().iter().map(|r| r.access()).collect();
        assert_eq!(back, trace);

        let mut stream = BinTraceStream::from_reader(bytes.as_slice(), 4).unwrap();
        let mut streamed = Vec::new();
        while let Some(chunk) = stream.next_chunk().unwrap() {
            streamed.extend(chunk.iter().map(|r| r.access()));
        }
        assert_eq!(streamed, trace);
    }

    /// Overwrites the header's record-count field (bytes 32..40).
    fn patch_count(bytes: &mut [u8], count: u64) {
        bytes[32..40].copy_from_slice(&count.to_le_bytes());
    }

    #[test]
    fn count_larger_than_body_is_rejected_by_reader_and_stream() {
        let mut bytes = encode(&sample(5), "{}", 1, 2);
        patch_count(&mut bytes, 6);
        let err = BinTraceReader::from_reader(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated record body"), "{err}");

        let mut stream = BinTraceStream::from_reader(bytes.as_slice(), 2).unwrap();
        let mut last = Ok(());
        while match stream.next_chunk() {
            Ok(Some(_)) => true,
            Ok(None) => false,
            Err(e) => {
                last = Err(e);
                false
            }
        } {}
        let err = last.unwrap_err();
        assert!(err.to_string().contains("truncated record body"), "{err}");
    }

    #[test]
    fn count_smaller_than_body_is_rejected_by_reader_and_stream() {
        let trace = sample(5);
        let mut bytes = encode(&trace, "{}", 1, 2);
        patch_count(&mut bytes, 4);
        // Both readers stop at the declared four records, so the bytes
        // where the trailer should sit are the undeclared fifth record
        // — the checksum check rejects the file.
        let err = BinTraceReader::from_reader(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        let mut stream = BinTraceStream::from_reader(bytes.as_slice(), 3).unwrap();
        let mut last = Ok(());
        let mut back = Vec::new();
        while match stream.next_chunk() {
            Ok(Some(chunk)) => {
                back.extend(chunk.iter().map(|r| r.access()));
                true
            }
            Ok(None) => false,
            Err(e) => {
                last = Err(e);
                false
            }
        } {}
        let err = last.unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        assert_eq!(back, trace[..3], "the poisoned final chunk is withheld");
    }

    #[test]
    fn count_smaller_than_body_in_a_version1_file_bounds_the_stream() {
        // Without a trailer the declared count is the only bound: the
        // stream reads exactly four records and never looks past them.
        let trace = sample(5);
        let mut bytes = downgrade_to_v1(encode(&trace, "{}", 1, 2));
        patch_count(&mut bytes, 4);
        let err = BinTraceReader::from_reader(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");

        let mut stream = BinTraceStream::from_reader(bytes.as_slice(), 3).unwrap();
        let mut back = Vec::new();
        while let Some(chunk) = stream.next_chunk().unwrap() {
            back.extend(chunk.iter().map(|r| r.access()));
        }
        assert_eq!(back, trace[..4]);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&sample(4), "{}", 1, 2);
        bytes.push(0);
        let err = BinTraceReader::from_reader(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn non_utf8_spec_json_is_rejected() {
        let mut bytes = encode(&sample(2), "ab", 1, 2);
        bytes[HEADER_BYTES] = 0xff;
        bytes[HEADER_BYTES + 1] = 0xfe;
        let err = BinTraceReader::from_reader(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("not valid UTF-8"), "{err}");
    }

    #[test]
    fn file_roundtrip_via_write_trace_file() {
        let dir = std::env::temp_dir().join(format!("hmtrace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.hmtrace");
        let trace = sample(123);
        let written = write_trace_file(&path, "{\"w\":true}", 5, 6, trace.iter().copied()).unwrap();
        assert_eq!(written, 123);
        let reader = BinTraceReader::open(&path).unwrap();
        assert!(reader.header().matches("{\"w\":true}", 5));
        let back: Vec<PageAccess> = reader.records().iter().map(|r| r.access()).collect();
        assert_eq!(back, trace);
        let mut stream = BinTraceStream::open(&path, 50).unwrap();
        let mut streamed = Vec::new();
        while let Some(chunk) = stream.next_chunk().unwrap() {
            streamed.extend(chunk.iter().map(|r| r.access()));
        }
        assert_eq!(streamed, trace);
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::cell::Cell;
        use std::rc::Rc;

        /// `Read` adapter that tallies every byte pulled from `inner`
        /// into a shared counter, so a test can audit how far a
        /// consumer that takes ownership of its source actually read.
        struct CountingReader<R> {
            inner: R,
            read: Rc<Cell<u64>>,
        }

        impl<R: Read> Read for CountingReader<R> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.inner.read(buf)?;
                self.read.set(self.read.get() + n as u64);
                Ok(n)
            }
        }

        fn arb_access() -> impl Strategy<Value = PageAccess> {
            (any::<u64>(), any::<bool>()).prop_map(|(page, write)| {
                if write {
                    PageAccess::write(PageId::new(page))
                } else {
                    PageAccess::read(PageId::new(page))
                }
            })
        }

        proptest! {
            #[test]
            fn write_then_read_equals_source(
                trace in prop::collection::vec(arb_access(), 0..512),
                seed in any::<u64>(),
                fp in any::<u64>(),
                chunk in 1usize..300,
            ) {
                let spec = format!("{{\"seed\":{seed}}}");
                let bytes = encode(&trace, &spec, seed, fp);

                let reader = BinTraceReader::from_reader(bytes.as_slice()).unwrap();
                prop_assert_eq!(reader.header().count, trace.len() as u64);
                prop_assert!(reader.header().matches(&spec, seed));
                let back: Vec<PageAccess> =
                    reader.records().iter().map(|r| r.access()).collect();
                prop_assert_eq!(&back, &trace);

                let mut stream =
                    BinTraceStream::from_reader(bytes.as_slice(), chunk).unwrap();
                let mut streamed = Vec::new();
                while let Some(records) = stream.next_chunk().unwrap() {
                    streamed.extend(records.iter().map(|r| r.access()));
                }
                prop_assert_eq!(&streamed, &trace);
            }

            #[test]
            fn any_truncation_is_an_error_never_a_wrong_trace(
                trace in prop::collection::vec(arb_access(), 1..64),
                cut_fraction in 0.0f64..1.0,
            ) {
                let bytes = encode(&trace, "{}", 3, 4);
                #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
                prop_assert!(BinTraceReader::from_reader(&bytes[..cut]).is_err());
            }

            #[test]
            fn stream_never_reads_past_the_declared_count(
                trace in prop::collection::vec(arb_access(), 0..128),
                chunk in 1usize..64,
                garbage in prop::collection::vec(any::<u8>(), 0..64),
            ) {
                let spec = "{\"bounded\":true}";
                let bytes = encode(&trace, spec, 9, 9);
                let declared_len = bytes.len() as u64;
                prop_assert_eq!(
                    declared_len,
                    (HEADER_BYTES + spec.len() + trace.len() * RECORD_BYTES + TRAILER_BYTES)
                        as u64
                );
                let mut padded = bytes;
                padded.extend_from_slice(&garbage);

                let read = Rc::new(Cell::new(0u64));
                let source = CountingReader {
                    inner: padded.as_slice(),
                    read: Rc::clone(&read),
                };
                let mut stream = BinTraceStream::from_reader(source, chunk).unwrap();
                let mut yielded = 0u64;
                while let Some(records) = stream.next_chunk().unwrap() {
                    yielded += records.len() as u64;
                }
                prop_assert_eq!(yielded, trace.len() as u64, "exactly `count` records");
                prop_assert_eq!(
                    read.get(),
                    declared_len,
                    "stream stops at header + spec + records + trailer"
                );
            }
        }
    }
}
