//! PARSEC-3.0 workload profiles calibrated to Table III of the paper.
//!
//! The paper drives its evaluation with memory traces of 12 PARSEC
//! benchmarks collected through the COTSon full-system simulator. We cannot
//! rerun COTSon, but the evaluation depends on the trace *statistics* the
//! paper documents: working-set size, read/write counts (Table III), and
//! the per-workload behavioural notes scattered through Sections III and V
//! (e.g. `streamcluster`'s "large burst of accesses and a small memory
//! footprint", `blackscholes` being read-only, `canneal`/`fluidanimate`
//! bouncing pages between the memories). Each profile here pairs the exact
//! Table III marginals with locality parameters expressing those notes.
//!
//! # Examples
//!
//! ```
//! use hybridmem_trace::parsec;
//!
//! let spec = parsec::spec("blackscholes")?;
//! assert_eq!(spec.writes, 0, "blackscholes is a read-only benchmark");
//! assert_eq!(parsec::NAMES.len(), 12);
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use hybridmem_types::{Error, Result};

use crate::{LocalityParams, PhaseParams, WorkloadSpec};

/// One row of Table III, as printed in the paper (the reference values the
/// regenerated table is compared against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableIiiRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Working-set size in KB.
    pub working_set_kb: u64,
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
}

/// Table III of the paper, verbatim.
pub const TABLE_III: [TableIiiRow; 12] = [
    TableIiiRow {
        name: "blackscholes",
        working_set_kb: 5_188,
        reads: 26_242,
        writes: 0,
    },
    TableIiiRow {
        name: "bodytrack",
        working_set_kb: 25_304,
        reads: 658_606,
        writes: 403_835,
    },
    TableIiiRow {
        name: "canneal",
        working_set_kb: 164_768,
        reads: 24_432_900,
        writes: 653_623,
    },
    TableIiiRow {
        name: "dedup",
        working_set_kb: 512_460,
        reads: 17_187_130,
        writes: 6_998_314,
    },
    TableIiiRow {
        name: "facesim",
        working_set_kb: 210_368,
        reads: 11_730_278,
        writes: 6_137_519,
    },
    TableIiiRow {
        name: "ferret",
        working_set_kb: 68_904,
        reads: 54_538_546,
        writes: 7_033_936,
    },
    TableIiiRow {
        name: "fluidanimate",
        working_set_kb: 266_120,
        reads: 9_951_202,
        writes: 4_492_775,
    },
    TableIiiRow {
        name: "freqmine",
        working_set_kb: 156_108,
        reads: 8_427_181,
        writes: 3_947_122,
    },
    TableIiiRow {
        name: "raytrace",
        working_set_kb: 57_116,
        reads: 1_807_142,
        writes: 370_573,
    },
    TableIiiRow {
        name: "streamcluster",
        working_set_kb: 15_452,
        reads: 168_666_464,
        writes: 448_612,
    },
    TableIiiRow {
        name: "vips",
        working_set_kb: 115_380,
        reads: 5_802_657,
        writes: 4_117_660,
    },
    TableIiiRow {
        name: "x264",
        working_set_kb: 80_232,
        reads: 14_669_353,
        writes: 5_220_400,
    },
];

/// The 12 workload names, in Table III order.
pub const NAMES: [&str; 12] = [
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "facesim",
    "ferret",
    "fluidanimate",
    "freqmine",
    "raytrace",
    "streamcluster",
    "vips",
    "x264",
];

/// Locality parameters expressing the paper's behavioural notes for one
/// workload. See the module docs for sources.
fn locality(name: &str) -> LocalityParams {
    // Sequential probabilities are derived from a target number of
    // footprint passes: passes ≈ seq · (1 − reuse) · accesses / wss, so a
    // streaming workload sweeps its data a few times while an in-core
    // workload never re-walks it. Popularity skews set the cold-tail mass
    // and hence the capacity-miss rate under the paper's 75 % memory.
    let base = LocalityParams::balanced();
    match name {
        // Read-only, tiny footprint, strong locality (compute-bound).
        "blackscholes" => LocalityParams {
            reuse_probability: 0.85,
            stack_theta: 1.2,
            sequential_probability: 0.0002,
            popularity_skew: 96.0,
            popularity_span: 0.5,
            write_hot_fraction: 0.0,
            write_hot_multiplier: 1.0,
            ..base
        },
        // Balanced read/write mix over a modest footprint.
        "bodytrack" => LocalityParams {
            reuse_probability: 0.8,
            stack_theta: 1.0,
            sequential_probability: 0.0005,
            popularity_skew: 8.0,
            popularity_span: 0.42,
            cold_write_damping: 0.05,
            write_hot_fraction: 0.4,
            write_hot_multiplier: 2.0,
            ..base
        },
        // Read-dominant graph workload whose rare writes land on otherwise
        // read-hot pages — the behaviour that makes CLOCK-DWF bounce pages
        // between the memories (Section III-A).
        "canneal" => LocalityParams {
            reuse_probability: 0.7,
            stack_theta: 0.8,
            sequential_probability: 0.0005,
            popularity_skew: 10.0,
            popularity_span: 0.5,
            cold_write_damping: 10.0,
            write_hot_fraction: 0.10,
            write_hot_multiplier: 6.0,
            phase: Some(PhaseParams {
                length: 5_000_000,
                footprint_fraction: 0.25,
                intensity: 0.5,
            }),
            ..base
        },
        // Streaming compression pipeline: several sweeps over a very large
        // footprint ⇒ the highest page-fault rate of the suite.
        "dedup" => LocalityParams {
            reuse_probability: 0.6,
            stack_theta: 0.9,
            sequential_probability: 0.02,
            popularity_skew: 12.0,
            popularity_span: 0.5,
            cold_write_damping: 0.05,
            write_hot_fraction: 0.3,
            write_hot_multiplier: 2.5,
            ..base
        },
        // Physics simulation sweeping large meshes each timestep.
        "facesim" => LocalityParams {
            reuse_probability: 0.65,
            stack_theta: 0.9,
            sequential_probability: 0.004,
            popularity_skew: 10.0,
            popularity_span: 0.45,
            cold_write_damping: 0.08,
            write_hot_fraction: 0.35,
            write_hot_multiplier: 2.0,
            ..base
        },
        // Similarity search: high volume with good reuse of index pages.
        "ferret" => LocalityParams {
            reuse_probability: 0.85,
            stack_theta: 1.3,
            sequential_probability: 0.0002,
            popularity_skew: 8.0,
            popularity_span: 0.42,
            cold_write_damping: 0.05,
            write_hot_fraction: 0.12,
            write_hot_multiplier: 4.0,
            ..base
        },
        // Read-intensive with phase behaviour that brings migrated pages
        // straight back (Section III-A pairs it with canneal).
        "fluidanimate" => LocalityParams {
            reuse_probability: 0.65,
            stack_theta: 0.9,
            sequential_probability: 0.01,
            popularity_skew: 10.0,
            popularity_span: 0.5,
            cold_write_damping: 1.0,
            write_hot_fraction: 0.3,
            write_hot_multiplier: 2.0,
            phase: Some(PhaseParams {
                length: 2_800_000,
                footprint_fraction: 0.2,
                intensity: 0.75,
            }),
            ..base
        },
        // Itemset mining: tree traversals with moderate locality.
        "freqmine" => LocalityParams {
            reuse_probability: 0.75,
            stack_theta: 1.1,
            sequential_probability: 0.0005,
            popularity_skew: 8.0,
            popularity_span: 0.42,
            cold_write_damping: 0.05,
            write_hot_fraction: 0.3,
            write_hot_multiplier: 2.0,
            ..base
        },
        // Near-threshold burst reuse: the workload the paper singles out as
        // having different optimal thresholds (Section V-B).
        "raytrace" => LocalityParams {
            reuse_probability: 0.7,
            stack_theta: 0.7,
            sequential_probability: 0.001,
            popularity_skew: 10.0,
            popularity_span: 0.45,
            cold_write_damping: 0.02,
            write_hot_fraction: 0.15,
            write_hot_multiplier: 3.0,
            phase: Some(PhaseParams {
                length: 436_000,
                footprint_fraction: 0.1,
                intensity: 0.6,
            }),
            ..base
        },
        // "A large burst of accesses and a small memory footprint"
        // (Section III): tight phases hammering a tiny slice.
        "streamcluster" => LocalityParams {
            reuse_probability: 0.9,
            stack_theta: 1.5,
            sequential_probability: 0.0001,
            popularity_skew: 8.0,
            popularity_span: 0.30,
            cold_write_damping: 0.05,
            write_hot_fraction: 0.02,
            write_hot_multiplier: 10.0,
            phase: Some(PhaseParams {
                length: 42_000_000,
                footprint_fraction: 0.05,
                intensity: 0.95,
            }),
            ..base
        },
        // Write-heaviest workload; image tiles written in near-threshold
        // bursts (Section V-B).
        "vips" => LocalityParams {
            reuse_probability: 0.7,
            stack_theta: 1.0,
            sequential_probability: 0.002,
            popularity_skew: 10.0,
            popularity_span: 0.45,
            cold_write_damping: 0.05,
            write_hot_fraction: 0.45,
            write_hot_multiplier: 1.2,
            phase: Some(PhaseParams {
                length: 2_000_000,
                footprint_fraction: 0.08,
                intensity: 0.35,
            }),
            ..base
        },
        // Video encoding: frame-sequential with hot encoder state.
        "x264" => LocalityParams {
            reuse_probability: 0.75,
            stack_theta: 1.1,
            sequential_probability: 0.001,
            popularity_skew: 8.0,
            popularity_span: 0.42,
            cold_write_damping: 0.05,
            write_hot_fraction: 0.25,
            write_hot_multiplier: 2.5,
            ..base
        },
        _ => base,
    }
}

/// Returns the calibrated specification for a Table III workload.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when `name` is not one of
/// [`NAMES`].
pub fn spec(name: &str) -> Result<WorkloadSpec> {
    let row = TABLE_III
        .iter()
        .find(|row| row.name == name)
        .ok_or_else(|| {
            Error::invalid_config(format!(
                "unknown PARSEC workload {name:?}; expected one of {NAMES:?}"
            ))
        })?;
    WorkloadSpec::new(
        row.name,
        row.working_set_kb / 4, // 4 KB pages
        row.reads,
        row.writes,
        locality(row.name),
    )
}

/// All 12 specifications in Table III order.
///
/// # Examples
///
/// ```
/// let all = hybridmem_trace::parsec::all_specs();
/// assert_eq!(all.len(), 12);
/// ```
#[must_use]
pub fn all_specs() -> Vec<WorkloadSpec> {
    // Every name in NAMES has a TABLE_III row with validated
    // parameters (the test module checks all twelve), so a failing
    // spec cannot occur; filter_map keeps the path panic-free anyway.
    NAMES.iter().filter_map(|name| spec(name).ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_valid_and_match_table_iii() {
        for row in &TABLE_III {
            let s = spec(row.name).unwrap();
            assert_eq!(s.reads, row.reads);
            assert_eq!(s.writes, row.writes);
            assert_eq!(s.working_set.value(), row.working_set_kb / 4);
            assert!(s.validate().is_ok());
        }
    }

    #[test]
    fn unknown_name_is_an_error() {
        let err = spec("swaptions").unwrap_err();
        assert!(err.to_string().contains("swaptions"));
    }

    #[test]
    fn blackscholes_is_read_only() {
        let s = spec("blackscholes").unwrap();
        assert_eq!(s.writes, 0);
        assert_eq!(s.locality.write_hot_fraction, 0.0);
    }

    #[test]
    fn streamcluster_is_bursty_read_dominant() {
        let s = spec("streamcluster").unwrap();
        assert!(s.write_ratio() < 0.01);
        let phase = s.locality.phase.expect("streamcluster has phases");
        assert!(phase.intensity > 0.9);
        assert!(phase.footprint_fraction <= 0.05);
        // "small memory footprint": smallest working set after blackscholes.
        let bs = spec("blackscholes").unwrap();
        for other in all_specs() {
            if other.name != "blackscholes" && other.name != "streamcluster" {
                assert!(other.working_set > s.working_set, "{}", other.name);
            }
        }
        assert!(bs.working_set < s.working_set);
    }

    #[test]
    fn table_iii_ratios_match_paper_percentages() {
        // Paper prints read percentages; spot-check a few.
        let pct = |name: &str| (1.0 - spec(name).unwrap().write_ratio()) * 100.0;
        assert!((pct("bodytrack") - 62.0).abs() < 1.0);
        assert!((pct("canneal") - 98.0).abs() < 1.0);
        assert!((pct("dedup") - 71.0).abs() < 1.0);
        assert!((pct("vips") - 59.0).abs() < 1.0);
        assert!((pct("streamcluster") - 99.8).abs() < 0.1);
    }

    #[test]
    fn all_profiles_keep_popularity_inside_memory() {
        // The calibration requires the popularity span (plus hot band) to
        // fit inside the paper's 75% memory, so steady-state capacity
        // misses stay near zero (DESIGN.md §5).
        for spec in all_specs() {
            assert!(
                spec.locality.popularity_span <= 0.6,
                "{}: span {} risks capacity misses",
                spec.name,
                spec.locality.popularity_span
            );
            assert!(spec.locality.validate().is_ok(), "{}", spec.name);
        }
    }

    #[test]
    fn sweep_rates_keep_quiet_workloads_quiet() {
        // Non-streaming workloads must re-walk their footprint less than
        // once per trace (the initialization sweep handles discovery).
        for spec in all_specs() {
            if matches!(spec.name.as_str(), "dedup" | "blackscholes") {
                continue; // dedup streams by design; blackscholes is tiny.
            }
            let passes = spec.locality.sequential_probability
                * (1.0 - spec.locality.reuse_probability)
                * spec.total_accesses() as f64
                / spec.working_set.value() as f64;
            assert!(
                passes < 2.0,
                "{}: {passes:.2} sequential passes per trace",
                spec.name
            );
        }
    }

    #[test]
    fn names_and_table_agree() {
        assert_eq!(NAMES.len(), TABLE_III.len());
        for (name, row) in NAMES.iter().zip(TABLE_III.iter()) {
            assert_eq!(*name, row.name);
        }
    }
}
