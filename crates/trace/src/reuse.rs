//! LRU reuse-distance (stack-distance) analysis of access streams.
//!
//! The reuse-distance histogram is the canonical locality fingerprint: the
//! hit ratio of *any* LRU memory of capacity `c` equals the fraction of
//! accesses with reuse distance `< c`. This module computes exact
//! page-granular reuse distances in O(log n) per access (the same
//! Fenwick-over-slots technique as `hybridmem-policy`'s `RankedLru`) and
//! derives miss-ratio curves from them — the tool used to calibrate the
//! PARSEC profiles against the paper's near-zero steady-state fault rates.
//!
//! # Examples
//!
//! ```
//! use hybridmem_trace::{parsec, ReuseProfile, TraceGenerator};
//!
//! let spec = parsec::spec("bodytrack")?.capped(20_000);
//! let profile = ReuseProfile::from_pages(
//!     TraceGenerator::new(spec, 1).map(|a| a.page()),
//! );
//! // An LRU memory holding 75% of the footprint misses almost never.
//! let capacity = (profile.distinct_pages() as f64 * 0.75) as u64;
//! assert!(profile.miss_ratio(capacity) < 0.1);
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use hybridmem_types::{FxHashMap, PageId};

/// Exact page-granular reuse-distance profile of one access stream.
#[derive(Debug, Clone, Default)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of accesses whose reuse distance is `d`
    /// (number of distinct pages touched since the previous access to the
    /// same page). First touches are counted separately as cold misses.
    histogram: Vec<u64>,
    cold_misses: u64,
    total: u64,
}

impl ReuseProfile {
    /// Computes the profile of a page stream.
    #[must_use]
    pub fn from_pages<I: IntoIterator<Item = PageId>>(pages: I) -> Self {
        let mut profile = Self::default();
        let mut stack = DistanceStack::default();
        for page in pages {
            profile.total += 1;
            match stack.touch(page) {
                None => profile.cold_misses += 1,
                Some(distance) => {
                    if profile.histogram.len() <= distance {
                        profile.histogram.resize(distance + 1, 0);
                    }
                    profile.histogram[distance] += 1;
                }
            }
        }
        profile
    }

    /// Total accesses profiled.
    #[must_use]
    pub const fn total_accesses(&self) -> u64 {
        self.total
    }

    /// First-touch (cold/compulsory) accesses.
    #[must_use]
    pub const fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// Number of distinct pages in the stream.
    #[must_use]
    pub fn distinct_pages(&self) -> u64 {
        self.cold_misses
    }

    /// The raw reuse-distance histogram (index = distance).
    #[must_use]
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Miss ratio of an LRU memory with `capacity` pages over this stream
    /// (cold misses included). 1.0 for an empty stream.
    #[must_use]
    pub fn miss_ratio(&self, capacity: u64) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        #[allow(clippy::cast_possible_truncation)]
        let hits: u64 = self.histogram.iter().take(capacity as usize).sum();
        #[allow(clippy::cast_precision_loss)]
        {
            (self.total - hits) as f64 / self.total as f64
        }
    }

    /// The smallest LRU capacity whose miss ratio does not exceed `target`
    /// (ignoring cold misses, which no finite memory avoids), or `None`
    /// when even holding every page cannot reach it.
    #[must_use]
    pub fn capacity_for_miss_ratio(&self, target: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let mut hits = 0u64;
        #[allow(clippy::cast_precision_loss)]
        let warm = (self.total - self.cold_misses) as f64;
        if warm == 0.0 {
            return None;
        }
        for (distance, &count) in self.histogram.iter().enumerate() {
            hits += count;
            #[allow(clippy::cast_precision_loss)]
            let warm_miss = (warm - hits as f64) / warm;
            if warm_miss <= target {
                return Some(distance as u64 + 1);
            }
        }
        None
    }

    /// Mean finite reuse distance (over re-references only); `None` when
    /// the stream has no re-references.
    #[must_use]
    pub fn mean_distance(&self) -> Option<f64> {
        let reuses: u64 = self.histogram.iter().sum();
        if reuses == 0 {
            return None;
        }
        let weighted: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        #[allow(clippy::cast_precision_loss)]
        Some(weighted as f64 / reuses as f64)
    }
}

/// O(log n) exact stack-distance tracker: pages get monotonically
/// increasing timestamps; the distance of a re-reference is the number of
/// pages with a newer timestamp, counted by a Fenwick tree over timestamp
/// occupancy (with periodic compaction).
#[derive(Debug, Default)]
struct DistanceStack {
    last_stamp: FxHashMap<PageId, usize>,
    /// `occupied[t]` = 1 when some page's most recent access is stamp `t`.
    tree: Vec<u64>,
    next_stamp: usize,
    live: usize,
}

impl DistanceStack {
    fn add(&mut self, index: usize, delta: i64) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, index: usize) -> u64 {
        let mut i = (index + 1).min(self.tree.len().saturating_sub(1));
        let mut sum = 0u64;
        while i > 0 {
            sum = sum.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Touches `page`, returning its reuse distance (None on first touch).
    fn touch(&mut self, page: PageId) -> Option<usize> {
        if self.next_stamp + 1 >= self.tree.len() {
            self.grow_or_compact();
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let distance = match self.last_stamp.insert(page, stamp) {
            None => {
                self.live += 1;
                None
            }
            Some(previous) => {
                // Pages with stamps in (previous, stamp) are exactly the
                // distinct pages touched since the last access to `page`.
                let newer = self.prefix(stamp - 1) - self.prefix(previous);
                self.add(previous, -1);
                #[allow(clippy::cast_possible_truncation)]
                Some(newer as usize)
            }
        };
        self.add(stamp, 1);
        distance
    }

    /// Compacts stamps to `0..live` (preserving order) and sizes the tree
    /// to 4× the live population.
    fn grow_or_compact(&mut self) {
        let mut pairs: Vec<(usize, PageId)> = self
            .last_stamp
            .iter()
            .map(|(&page, &stamp)| (stamp, page))
            .collect();
        pairs.sort_unstable_by_key(|&(stamp, _)| stamp);
        let new_len = (pairs.len() * 4).max(64);
        self.tree = vec![0; new_len + 1];
        for (new_stamp, (_, page)) in pairs.iter().enumerate() {
            self.last_stamp.insert(*page, new_stamp);
            self.add(new_stamp, 1);
        }
        self.next_stamp = pairs.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(ids: &[u64]) -> Vec<PageId> {
        ids.iter().map(|&i| PageId::new(i)).collect()
    }

    /// O(n²) reference implementation.
    fn naive_profile(ids: &[u64]) -> (u64, Vec<u64>) {
        let mut cold = 0u64;
        let mut histogram: Vec<u64> = Vec::new();
        let mut stack: Vec<u64> = Vec::new(); // MRU at the back
        for &page in ids {
            match stack.iter().rev().position(|&p| p == page) {
                None => cold += 1,
                Some(distance) => {
                    if histogram.len() <= distance {
                        histogram.resize(distance + 1, 0);
                    }
                    histogram[distance] += 1;
                    let pos = stack.len() - 1 - distance;
                    stack.remove(pos);
                }
            }
            stack.push(page);
        }
        (cold, histogram)
    }

    #[test]
    fn textbook_example() {
        // Stream: a b c a  — distance of the second `a` is 2 (b, c).
        let profile = ReuseProfile::from_pages(pages(&[1, 2, 3, 1]));
        assert_eq!(profile.cold_misses(), 3);
        assert_eq!(profile.histogram(), &[0, 0, 1]);
        assert_eq!(profile.total_accesses(), 4);
    }

    #[test]
    fn immediate_rereference_has_distance_zero() {
        let profile = ReuseProfile::from_pages(pages(&[5, 5, 5]));
        assert_eq!(profile.cold_misses(), 1);
        assert_eq!(profile.histogram(), &[2]);
        assert_eq!(profile.mean_distance(), Some(0.0));
    }

    #[test]
    fn miss_ratio_matches_lru_semantics() {
        // a b a b cycled: distance is always 1 after warmup.
        let stream: Vec<u64> = (0..100).map(|i| i % 2).collect();
        let profile = ReuseProfile::from_pages(pages(&stream));
        assert_eq!(profile.miss_ratio(2), 2.0 / 100.0, "only cold misses");
        assert_eq!(profile.miss_ratio(1), 1.0, "capacity 1 always misses");
    }

    #[test]
    fn cyclic_scan_pathology() {
        // 0..4 cycled: LRU of capacity 4 misses every access (distance 4).
        let stream: Vec<u64> = (0..50).map(|i| i % 5).collect();
        let profile = ReuseProfile::from_pages(pages(&stream));
        assert_eq!(profile.miss_ratio(4), 1.0);
        assert_eq!(profile.miss_ratio(5), 5.0 / 50.0);
    }

    #[test]
    fn capacity_for_miss_ratio_is_minimal() {
        let stream: Vec<u64> = (0..60).map(|i| i % 3).collect();
        let profile = ReuseProfile::from_pages(pages(&stream));
        assert_eq!(profile.capacity_for_miss_ratio(0.0), Some(3));
        let read_only = ReuseProfile::from_pages(pages(&[1, 2, 3]));
        assert_eq!(read_only.capacity_for_miss_ratio(0.0), None);
    }

    #[test]
    fn matches_naive_reference_on_random_streams() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let stream: Vec<u64> = (0..400).map(|_| rng.gen_range(0..40)).collect();
            let fast = ReuseProfile::from_pages(pages(&stream));
            let (cold, histogram) = naive_profile(&stream);
            assert_eq!(fast.cold_misses(), cold);
            assert_eq!(fast.histogram(), &histogram[..]);
        }
    }

    #[test]
    fn compaction_preserves_distances() {
        // Long stream over few pages forces many compactions.
        let stream: Vec<u64> = (0..5_000).map(|i| (i * 7) % 11).collect();
        let fast = ReuseProfile::from_pages(pages(&stream));
        let (cold, histogram) = naive_profile(&stream);
        assert_eq!(fast.cold_misses(), cold);
        assert_eq!(fast.histogram(), &histogram[..]);
    }

    #[test]
    fn empty_stream() {
        let profile = ReuseProfile::from_pages(Vec::new());
        assert_eq!(profile.total_accesses(), 0);
        assert_eq!(profile.miss_ratio(10), 1.0);
        assert_eq!(profile.mean_distance(), None);
        assert_eq!(profile.capacity_for_miss_ratio(0.5), None);
    }
}
