//! Workload specifications: the statistical shape of a memory trace.

use hybridmem_types::{Error, PageCount, Result};
use serde::{Deserialize, Serialize};

/// Temporal/spatial locality parameters of a synthetic workload.
///
/// The generator draws each access in three steps: *where* (which page,
/// via an LRU-stack-distance reuse model with optional sequential runs and
/// phase behaviour), *how* (read or write, via per-page write affinity),
/// and *which byte* within the page. These parameters control all three.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityParams {
    /// Probability that an access reuses a recently touched page (drawn
    /// from the LRU stack) instead of touching a fresh/uniform page.
    pub reuse_probability: f64,
    /// Shape of the stack-distance distribution: the reuse stack position
    /// is drawn with probability ∝ `1/(rank+1)^theta`. Larger `theta`
    /// concentrates reuse on the hottest pages.
    pub stack_theta: f64,
    /// Maximum LRU-stack depth sampled for reuse, as a fraction of the
    /// working set (caps the model's memory).
    pub stack_depth_fraction: f64,
    /// Probability that a non-reuse access continues a sequential page walk
    /// instead of jumping by popularity (streaming behaviour).
    pub sequential_probability: f64,
    /// Skew of the static page-popularity distribution used for non-reuse,
    /// non-sequential draws: a page rank is drawn as `⌊wss · u^skew⌋` for
    /// uniform `u`, so mass concentrates on a hot subset as the skew grows.
    /// `1.0` is uniform. Real workloads are heavily skewed — with a 75 %
    /// memory this is what keeps page-fault rates in the per-mille range
    /// the paper's Fig. 1 implies.
    pub popularity_skew: f64,
    /// Fraction of the working set covered by the popularity distribution,
    /// in `(0, 1]`. Fresh draws never exceed rank `span · wss`; pages
    /// beyond the span are reached only by sequential sweeps and phase
    /// rotations. A span below the memory fraction (0.75) makes capacity
    /// misses a deliberate, per-workload choice rather than an artefact of
    /// the popularity tail (a pure power law pins the beyond-memory mass
    /// at ≈ 11 % of the beyond-DRAM mass, far above what the paper's
    /// near-zero fault rates allow).
    pub popularity_span: f64,
    /// Optional phase behaviour: the workload periodically restricts itself
    /// to a small sub-footprint and hammers it (burstiness).
    pub phase: Option<PhaseParams>,
    /// Multiplier applied to the write probability of *deep* accesses —
    /// sequential sweeps, deep-stack reuse, and cold popularity draws — in
    /// `[0, 50]`. Values below 1 damp cold writes; values above 1 *boost*
    /// them, modelling workloads whose writes deliberately land on
    /// otherwise-cold pages (the paper's `canneal` pathology). Real workloads mutate their hot structures and mostly
    /// *read* old or streamed-in data; this is what keeps demand writes off
    /// NVM-resident pages (the regime the paper's numbers imply). The
    /// global read/write budget is preserved by the generator's deficit
    /// controller, which shifts the displaced writes onto hot pages.
    pub cold_write_damping: f64,
    /// Fraction of pages that are write-hot. The paper's scheme keys on
    /// per-page write dominance, so the mix must be heterogeneous rather
    /// than i.i.d. per access.
    pub write_hot_fraction: f64,
    /// Multiplier applied to the base write probability on write-hot pages
    /// (cold pages are scaled down to preserve the aggregate write ratio).
    pub write_hot_multiplier: f64,
}

impl LocalityParams {
    /// A balanced default: moderate reuse, light sequential component,
    /// no phases, mild write skew.
    #[must_use]
    pub fn balanced() -> Self {
        Self {
            reuse_probability: 0.8,
            stack_theta: 1.1,
            stack_depth_fraction: 0.15,
            sequential_probability: 0.05,
            popularity_skew: 32.0,
            popularity_span: 0.55,
            cold_write_damping: 0.15,
            phase: None,
            write_hot_fraction: 0.2,
            write_hot_multiplier: 3.0,
        }
    }

    /// Validates all fields are in-domain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the first out-of-domain
    /// field.
    pub fn validate(&self) -> Result<()> {
        for (name, v, lo, hi) in [
            ("reuse_probability", self.reuse_probability, 0.0, 1.0),
            ("stack_theta", self.stack_theta, 0.0, 8.0),
            ("stack_depth_fraction", self.stack_depth_fraction, 0.0, 1.0),
            (
                "sequential_probability",
                self.sequential_probability,
                0.0,
                1.0,
            ),
            ("popularity_skew", self.popularity_skew, 1.0, 2048.0),
            ("popularity_span", self.popularity_span, 1e-6, 1.0),
            ("cold_write_damping", self.cold_write_damping, 0.0, 50.0),
            ("write_hot_fraction", self.write_hot_fraction, 0.0, 1.0),
            (
                "write_hot_multiplier",
                self.write_hot_multiplier,
                1.0,
                1000.0,
            ),
        ] {
            if !v.is_finite() || v < lo || v > hi {
                return Err(Error::invalid_config(format!(
                    "{name} must be in [{lo}, {hi}], got {v}"
                )));
            }
        }
        if let Some(phase) = &self.phase {
            phase.validate()?;
        }
        Ok(())
    }
}

impl Default for LocalityParams {
    fn default() -> Self {
        Self::balanced()
    }
}

/// Phase/burst behaviour: periods during which accesses concentrate on a
/// small slice of the footprint (e.g. `streamcluster`'s "large burst of
/// accesses and a small memory footprint").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseParams {
    /// Length of one phase in accesses.
    pub length: u64,
    /// Fraction of the working set active within a phase.
    pub footprint_fraction: f64,
    /// Probability that an access stays inside the phase footprint.
    pub intensity: f64,
}

impl PhaseParams {
    /// Validates the phase parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the length is zero or a
    /// fraction is out of `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.length == 0 {
            return Err(Error::invalid_config("phase length must be positive"));
        }
        for (name, v) in [
            ("footprint_fraction", self.footprint_fraction),
            ("intensity", self.intensity),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(Error::invalid_config(format!(
                    "{name} must be in (0, 1], got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// Complete specification of one synthetic workload.
///
/// # Examples
///
/// ```
/// use hybridmem_trace::{LocalityParams, WorkloadSpec};
///
/// let spec = WorkloadSpec::new("toy", 256, 10_000, 2_000, LocalityParams::balanced())?;
/// assert_eq!(spec.total_accesses(), 12_000);
/// assert!((spec.write_ratio() - 2.0 / 12.0).abs() < 1e-12);
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name (e.g. the PARSEC benchmark name).
    pub name: String,
    /// Working-set size in pages.
    pub working_set: PageCount,
    /// The *unscaled* working-set size. [`WorkloadSpec::scaled`] shrinks
    /// `working_set` but leaves this untouched, so consumers that model
    /// full-size effects (static power of the provisioned memory) can undo
    /// the scaling. Equal to `working_set` for an unscaled spec.
    pub nominal_working_set: PageCount,
    /// The *unscaled* total access count, preserved by scaling like
    /// [`WorkloadSpec::nominal_working_set`]. Together they give the
    /// workload's true footprint-per-access density, which the duration
    /// model needs even when a scaled run distorts the measured density
    /// (e.g. via the footprint floor in [`WorkloadSpec::capped`]).
    pub nominal_accesses: u64,
    /// Number of read requests to generate.
    pub reads: u64,
    /// Number of write requests to generate.
    pub writes: u64,
    /// Locality model.
    pub locality: LocalityParams,
    /// Number of CPU cores the trace is attributed to (Table II: 4).
    pub cores: u16,
}

impl WorkloadSpec {
    /// Creates and validates a specification.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the working set is empty, the
    /// trace has no accesses, or the locality parameters are out of domain.
    pub fn new(
        name: impl Into<String>,
        working_set_pages: u64,
        reads: u64,
        writes: u64,
        locality: LocalityParams,
    ) -> Result<Self> {
        let spec = Self {
            name: name.into(),
            working_set: PageCount::new(working_set_pages),
            nominal_working_set: PageCount::new(working_set_pages),
            nominal_accesses: reads + writes,
            reads,
            writes,
            locality,
            cores: 4,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Starts a [`WorkloadSpecBuilder`] with `working_set_pages` pages,
    /// 10 000 reads, no writes, and [`LocalityParams::balanced`].
    #[must_use]
    pub fn builder(name: impl Into<String>, working_set_pages: u64) -> WorkloadSpecBuilder {
        WorkloadSpecBuilder {
            name: name.into(),
            working_set_pages,
            reads: 10_000,
            writes: 0,
            locality: LocalityParams::balanced(),
            cores: 4,
        }
    }

    /// The workload's true pages-touched-per-access density,
    /// `nominal_working_set / nominal_accesses` — scale-invariant by
    /// construction.
    #[must_use]
    pub fn nominal_density(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.nominal_working_set.value() as f64 / self.nominal_accesses.max(1) as f64
        }
    }

    /// The scale applied so far: `working_set / nominal_working_set`, 1.0
    /// for an unscaled spec.
    #[must_use]
    pub fn scale_factor(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.working_set.value() as f64 / self.nominal_working_set.value() as f64
        }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on an empty working set, an empty
    /// trace, zero cores, or invalid locality parameters.
    pub fn validate(&self) -> Result<()> {
        if self.working_set.is_zero() {
            return Err(Error::invalid_config(
                "working set must be at least one page",
            ));
        }
        if self.reads + self.writes == 0 {
            return Err(Error::invalid_config(
                "workload must have at least one access",
            ));
        }
        if self.cores == 0 {
            return Err(Error::invalid_config("workload needs at least one core"));
        }
        self.locality.validate()
    }

    /// Total accesses (reads + writes).
    #[must_use]
    pub const fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of accesses that are writes, in `[0, 1]`.
    #[must_use]
    pub fn write_ratio(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.writes as f64 / self.total_accesses() as f64
        }
    }

    /// Returns a proportionally scaled copy: both the access counts and the
    /// working set shrink by `factor`, preserving the accesses-per-page
    /// density that drives hit ratios and migration dynamics.
    ///
    /// Counts are floored at 1 page / 1 access (when the original count was
    /// non-zero). `factor` of 1.0 returns an identical spec.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1], got {factor}"
        );
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let scale = |v: u64| -> u64 {
            if v == 0 {
                0
            } else {
                ((v as f64 * factor).round() as u64).max(1)
            }
        };
        let mut locality = self.locality;
        if let Some(phase) = &mut locality.phase {
            // Keep the phases-per-trace count stable under scaling.
            phase.length = scale(phase.length);
        }
        Self {
            name: self.name.clone(),
            working_set: PageCount::new(scale(self.working_set.value())),
            nominal_working_set: self.nominal_working_set,
            nominal_accesses: self.nominal_accesses,
            reads: scale(self.reads),
            writes: scale(self.writes),
            locality,
            cores: self.cores,
        }
    }

    /// Minimum scaled working set kept by [`WorkloadSpec::capped`]:
    /// below roughly this many pages, the policies' window/threshold
    /// machinery degenerates to a handful of pages and scaling artefacts
    /// (promotion thrash between a few frames) dominate the measurement.
    pub const MIN_CAPPED_FOOTPRINT: u64 = 1500;

    /// Scales the workload so its total access count does not exceed
    /// `max_accesses` (no-op when already under the cap).
    ///
    /// Access counts shrink proportionally; the working set shrinks by the
    /// same factor but is floored at
    /// [`WorkloadSpec::MIN_CAPPED_FOOTPRINT`] pages (or the original size
    /// if smaller), so extremely dense workloads such as `streamcluster`
    /// keep a realistic page population. [`WorkloadSpec::scale_factor`]
    /// reflects the working-set scale, which is what static-power
    /// un-scaling needs.
    #[must_use]
    pub fn capped(&self, max_accesses: u64) -> Self {
        let total = self.total_accesses();
        if total <= max_accesses {
            return self.clone();
        }
        #[allow(clippy::cast_precision_loss)]
        let factor = max_accesses as f64 / total as f64;
        let mut scaled = self.scaled(factor);
        let floor = Self::MIN_CAPPED_FOOTPRINT.min(self.working_set.value());
        if scaled.working_set.value() < floor {
            scaled.working_set = PageCount::new(floor);
        }
        scaled
    }
}

/// Builder for [`WorkloadSpec`] — ergonomic construction when only a few
/// locality knobs deviate from the defaults.
///
/// # Examples
///
/// ```
/// use hybridmem_trace::WorkloadSpec;
///
/// let spec = WorkloadSpec::builder("kv-store", 4_096)
///     .reads(90_000)
///     .writes(10_000)
///     .reuse(0.9)
///     .popularity(16.0, 0.5)
///     .write_hot(0.1, 6.0)
///     .build()?;
/// assert_eq!(spec.total_accesses(), 100_000);
/// assert_eq!(spec.locality.popularity_skew, 16.0);
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSpecBuilder {
    name: String,
    working_set_pages: u64,
    reads: u64,
    writes: u64,
    locality: LocalityParams,
    cores: u16,
}

impl WorkloadSpecBuilder {
    /// Sets the number of read requests (default 10 000).
    #[must_use]
    pub fn reads(mut self, reads: u64) -> Self {
        self.reads = reads;
        self
    }

    /// Sets the number of write requests (default 0).
    #[must_use]
    pub fn writes(mut self, writes: u64) -> Self {
        self.writes = writes;
        self
    }

    /// Sets the recency-reuse probability.
    #[must_use]
    pub fn reuse(mut self, probability: f64) -> Self {
        self.locality.reuse_probability = probability;
        self
    }

    /// Sets the sequential-walk probability.
    #[must_use]
    pub fn sequential(mut self, probability: f64) -> Self {
        self.locality.sequential_probability = probability;
        self
    }

    /// Sets the popularity skew and span.
    #[must_use]
    pub fn popularity(mut self, skew: f64, span: f64) -> Self {
        self.locality.popularity_skew = skew;
        self.locality.popularity_span = span;
        self
    }

    /// Sets the write-hot page fraction and multiplier.
    #[must_use]
    pub fn write_hot(mut self, fraction: f64, multiplier: f64) -> Self {
        self.locality.write_hot_fraction = fraction;
        self.locality.write_hot_multiplier = multiplier;
        self
    }

    /// Sets the cold-write damping (or boost, above 1).
    #[must_use]
    pub fn cold_write_damping(mut self, damping: f64) -> Self {
        self.locality.cold_write_damping = damping;
        self
    }

    /// Adds phase/burst behaviour.
    #[must_use]
    pub fn phases(mut self, length: u64, footprint_fraction: f64, intensity: f64) -> Self {
        self.locality.phase = Some(PhaseParams {
            length,
            footprint_fraction,
            intensity,
        });
        self
    }

    /// Replaces the whole locality parameter set.
    #[must_use]
    pub fn locality(mut self, locality: LocalityParams) -> Self {
        self.locality = locality;
        self
    }

    /// Sets the core count (default 4, per Table II).
    #[must_use]
    pub fn cores(mut self, cores: u16) -> Self {
        self.cores = cores;
        self
    }

    /// Validates and builds the specification.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] under the same conditions as
    /// [`WorkloadSpec::new`].
    pub fn build(self) -> Result<WorkloadSpec> {
        let mut spec = WorkloadSpec::new(
            self.name,
            self.working_set_pages,
            self.reads,
            self.writes,
            self.locality,
        )?;
        spec.cores = self.cores;
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new("w", 1000, 80_000, 20_000, LocalityParams::balanced()).unwrap()
    }

    #[test]
    fn totals_and_ratio() {
        let s = spec();
        assert_eq!(s.total_accesses(), 100_000);
        assert!((s.write_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(s.cores, 4);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(WorkloadSpec::new("w", 0, 1, 1, LocalityParams::balanced()).is_err());
        assert!(WorkloadSpec::new("w", 1, 0, 0, LocalityParams::balanced()).is_err());
        let mut bad = LocalityParams::balanced();
        bad.reuse_probability = 1.5;
        assert!(WorkloadSpec::new("w", 1, 1, 0, bad).is_err());
        let mut bad = LocalityParams::balanced();
        bad.write_hot_multiplier = 0.5;
        assert!(WorkloadSpec::new("w", 1, 1, 0, bad).is_err());
    }

    #[test]
    fn phase_validation() {
        let ok = PhaseParams {
            length: 100,
            footprint_fraction: 0.1,
            intensity: 0.9,
        };
        assert!(ok.validate().is_ok());
        assert!(PhaseParams { length: 0, ..ok }.validate().is_err());
        assert!(PhaseParams {
            footprint_fraction: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(PhaseParams {
            intensity: 1.2,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn scaled_preserves_density_and_ratio() {
        let s = spec();
        let half = s.scaled(0.5);
        assert_eq!(half.working_set, PageCount::new(500));
        assert_eq!(half.reads, 40_000);
        assert_eq!(half.writes, 10_000);
        assert!((half.write_ratio() - s.write_ratio()).abs() < 1e-9);
        // Density (accesses per page) is preserved.
        let density = |w: &WorkloadSpec| w.total_accesses() as f64 / w.working_set.value() as f64;
        assert!((density(&half) - density(&s)).abs() < 1e-9);
    }

    #[test]
    fn scaled_floors_at_one() {
        let tiny = WorkloadSpec::new("w", 10, 5, 3, LocalityParams::balanced())
            .unwrap()
            .scaled(0.001);
        assert_eq!(tiny.working_set, PageCount::new(1));
        assert_eq!(tiny.reads, 1);
        assert_eq!(tiny.writes, 1);
        // Zero stays zero.
        let ro = WorkloadSpec::new("w", 10, 5, 0, LocalityParams::balanced())
            .unwrap()
            .scaled(0.001);
        assert_eq!(ro.writes, 0);
    }

    #[test]
    fn capped_only_shrinks() {
        let s = spec();
        assert_eq!(s.capped(1_000_000), s);
        let capped = s.capped(10_000);
        assert!(
            capped.total_accesses() <= 10_100,
            "{}",
            capped.total_accesses()
        );
        assert!((capped.write_ratio() - 0.2).abs() < 0.01);
    }

    #[test]
    fn builder_constructs_and_validates() {
        let spec = WorkloadSpec::builder("b", 64)
            .reads(500)
            .writes(100)
            .reuse(0.5)
            .sequential(0.01)
            .popularity(8.0, 0.4)
            .write_hot(0.2, 2.0)
            .cold_write_damping(0.3)
            .phases(100, 0.2, 0.8)
            .cores(2)
            .build()
            .unwrap();
        assert_eq!(spec.total_accesses(), 600);
        assert_eq!(spec.cores, 2);
        assert_eq!(spec.locality.popularity_span, 0.4);
        assert!(spec.locality.phase.is_some());

        let invalid = WorkloadSpec::builder("b", 0).build();
        assert!(invalid.is_err());
        let invalid = WorkloadSpec::builder("b", 64).reuse(2.0).build();
        assert!(invalid.is_err());
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_zero() {
        let _ = spec().scaled(0.0);
    }
}
