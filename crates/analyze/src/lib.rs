//! Cross-run analytics for the hybrid-memory simulator's telemetry.
//!
//! The engine already emits four machine-readable surfaces: windowed
//! metrics JSONL, page-ledger JSONL, `BENCH_*.json` stress reports, and
//! metrics snapshots. This crate closes the loop — it ingests any of
//! them ([`ingest`]), rolls per-cell profiles and A-vs-B deltas
//! ([`diff`]), judges the committed bench history with a noise-aware
//! median-of-priors detector ([`trajectory`]), correlates black-box
//! flight dumps with every other stream into per-cell failure
//! timelines ([`postmortem`]), and renders the results both as aligned
//! text tables ([`table`]) and as the stable `hybridmem-analyze-v1`
//! JSON ([`report`]) that CI gates on.
//!
//! Like `xtask`, the crate is zero-dependency by design: it carries its
//! own small JSON reader/writer ([`json`]) whose number lexemes survive
//! a parse → emit round trip byte-for-byte, which is what makes the
//! `analyze check` self-verification exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod ingest;
pub mod json;
pub mod postmortem;
pub mod report;
pub mod table;
pub mod trajectory;

pub use diff::{
    diff, profile_intervals, profile_ledgers, CellDelta, CellProfile, DiffReport, MetricDelta,
    Worse,
};
pub use ingest::{
    bench_index, load, BenchPoint, HistogramStat, Input, IntervalStat, LedgerStat, Loaded,
    MetricsStat,
};
pub use json::{parse, Json};
pub use postmortem::{
    correlate, postmortem_report, CellTimeline, PostmortemInputs, PostmortemReport, Signal,
    POSTMORTEM_SCHEMA,
};
pub use report::{diff_report, round_trips, trajectory_report, ANALYZE_SCHEMA};
pub use table::{diff_table, metrics_table, postmortem_table, trajectory_table};
pub use trajectory::{roll, SeriesVerdict, TrajectoryOptions, TrajectoryReport};
