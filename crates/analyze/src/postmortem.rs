//! Cross-stream post-mortem correlation for `hybridmem postmortem`.
//!
//! A quarantined cell leaves evidence scattered across up to six
//! artifacts: the black-box flight dump (`hybridmem-flight-v1`), the
//! matrix health report, the run-health audit report, the windowed
//! metrics JSONL, the page-ledger JSONL, and the binary resume
//! journal. Each one is self-consistent but none tells the whole
//! story. This module joins them on `(workload, policy)` cell keys and
//! 0-based demand-access indices into one timeline per flight-dumped
//! cell, so triage starts from "what happened around access N in cell
//! W/P" instead of six files open in six panes.
//!
//! Like the rest of the crate the module is zero-dependency: every
//! JSON input goes through [`crate::json::parse`], and the resume
//! journal's binary framing (documented in `hybridmem-core::journal`)
//! is decoded by hand. Inputs written by other tool versions degrade
//! to warnings, never panics — a post-mortem tool that dies on the
//! evidence defeats its purpose.
//!
//! The output is rendered both as a human table
//! ([`crate::table::postmortem_table`]) and as the stable
//! `hybridmem-postmortem-v1` JSON ([`postmortem_report`]). Everything
//! is derived from the inputs, so the report is byte-deterministic.

use crate::json::{parse, Json};

/// Schema identifier of the postmortem JSON report.
pub const POSTMORTEM_SCHEMA: &str = "hybridmem-postmortem-v1";

/// Schema identifier the flight dump input must carry.
const FLIGHT_SCHEMA: &str = "hybridmem-flight-v1";

/// The raw artifact contents to correlate. Only the flight dump is
/// required; every other stream enriches the timeline when present.
#[derive(Debug, Default)]
pub struct PostmortemInputs<'a> {
    /// The `hybridmem-flight-v1` dump (required).
    pub flight: &'a str,
    /// The `hybridmem-matrix-health-v1` report.
    pub health: Option<&'a str>,
    /// The `hybridmem-audit-v1` report.
    pub audit: Option<&'a str>,
    /// Windowed interval metrics JSONL.
    pub metrics: Option<&'a str>,
    /// Page-ledger JSONL.
    pub ledger: Option<&'a str>,
    /// The binary resume journal, verbatim.
    pub journal: Option<&'a [u8]>,
}

/// One correlated observation on a cell's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    /// Which stream produced it: `flight`, `health`, `audit`,
    /// `metrics`, `ledger`, or `journal`.
    pub source: String,
    /// 0-based demand-access index the observation is anchored to,
    /// when the stream carries one.
    pub access: Option<u64>,
    /// Human-readable description.
    pub detail: String,
}

/// One flight-dumped cell with every signal the other streams
/// contributed, in timeline order (anchored signals by ascending
/// access, then the un-anchored context).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellTimeline {
    /// Workload name of the cell.
    pub workload: String,
    /// Policy name of the cell.
    pub policy: String,
    /// Why the black box was dumped (`completed`, `panic`, `error`,
    /// `audit-violation`, ...).
    pub trigger: String,
    /// The failure message, when the trigger carried one.
    pub error: Option<String>,
    /// Panicking attempts that preceded the capture.
    pub retries: u64,
    /// Demand accesses the recorder saw before the capture.
    pub accesses: u64,
    /// 0-based index of the last demand access recorded.
    pub final_access: u64,
    /// Events evicted from the bounded ring before the capture.
    pub events_dropped: u64,
    /// The correlated timeline.
    pub signals: Vec<Signal>,
    /// Signals contributed by streams other than the flight dump.
    pub correlated_signals: u64,
}

/// The full correlation result over every flight-dumped cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostmortemReport {
    /// Streams that were provided, in canonical order.
    pub sources: Vec<String>,
    /// Cells whose dump trigger was not `completed`.
    pub triggered_cells: u64,
    /// Per-cell timelines, in flight-dump (matrix) order.
    pub cells: Vec<CellTimeline>,
    /// Ingest degradations: malformed JSONL lines, foreign schemas in
    /// optional inputs, failed cells with no flight record.
    pub warnings: Vec<String>,
}

/// A parsed health row.
struct HealthRow {
    workload: String,
    policy: String,
    status: String,
    retries: u64,
    panicked: bool,
    error: Option<String>,
}

/// A parsed audit cell with its retained violations.
struct AuditCell {
    workload: String,
    policy: String,
    clean: bool,
    total_violations: u64,
    violations: Vec<AuditViolation>,
}

struct AuditViolation {
    invariant: String,
    access_index: u64,
    page: Option<u64>,
    observed: String,
    expected: String,
}

/// One windowed-metrics interval row.
struct MetricsWindow {
    workload: String,
    policy: String,
    interval: u64,
    start_access: u64,
    end_access: u64,
    faults: u64,
    hit_ratio: Option<String>,
}

/// One cell's ledger roll-up plus its hottest retained page.
struct LedgerCell {
    workload: String,
    policy: String,
    ping_pongs: u64,
    ping_pong_pages: u64,
    top_page: Option<(u64, u64, u64)>, // (page, migrations, ping_pongs)
}

/// One journaled completion.
struct JournalCell {
    workload: String,
    policy: String,
}

fn field_str(doc: &Json, key: &str) -> Option<String> {
    doc.get(key).and_then(Json::as_str).map(str::to_owned)
}

fn field_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_u64)
}

/// Correlates the provided streams into per-cell timelines.
///
/// # Errors
///
/// Returns a one-line message when the flight dump itself is
/// unreadable or carries a foreign schema, or when a provided health
/// or audit report does not parse at all. Damaged *lines* inside
/// JSONL streams and shape mismatches degrade to warnings instead.
pub fn correlate(inputs: &PostmortemInputs<'_>) -> Result<PostmortemReport, String> {
    let flight = parse(inputs.flight).map_err(|e| format!("flight dump: {e}"))?;
    let schema = flight.get("schema").and_then(Json::as_str);
    if schema != Some(FLIGHT_SCHEMA) {
        return Err(format!(
            "flight dump schema is {schema:?}, expected {FLIGHT_SCHEMA:?}"
        ));
    }
    let mut warnings = Vec::new();
    let health = match inputs.health {
        Some(text) => parse_health(text)?,
        None => Vec::new(),
    };
    let audit = match inputs.audit {
        Some(text) => parse_audit(text)?,
        None => Vec::new(),
    };
    let metrics = match inputs.metrics {
        Some(text) => parse_metrics(text, &mut warnings),
        None => Vec::new(),
    };
    let ledger = match inputs.ledger {
        Some(text) => parse_ledger(text, &mut warnings),
        None => Vec::new(),
    };
    let journal = match inputs.journal {
        Some(bytes) => parse_journal(bytes, &mut warnings)?,
        None => Vec::new(),
    };

    let flight_cells = flight.get("cells").and_then(Json::as_array).unwrap_or(&[]);
    let mut cells = Vec::with_capacity(flight_cells.len());
    for cell in flight_cells {
        cells.push(correlate_cell(
            cell, &health, &audit, &metrics, &ledger, &journal,
        ));
    }

    // A failed cell with no flight record means the black box never
    // armed (e.g. the fault fired before the simulation started) —
    // worth knowing when the timeline someone expected is missing.
    for row in &health {
        if row.status == "failed"
            && !cells
                .iter()
                .any(|c: &CellTimeline| c.workload == row.workload && c.policy == row.policy)
        {
            warnings.push(format!(
                "health reports cell {}/{} as failed but the flight dump has no record for it \
                 (the cell died before its recorder armed)",
                row.workload, row.policy
            ));
        }
    }

    let mut sources = vec!["flight".to_owned()];
    for (name, present) in [
        ("health", inputs.health.is_some()),
        ("audit", inputs.audit.is_some()),
        ("metrics", inputs.metrics.is_some()),
        ("ledger", inputs.ledger.is_some()),
        ("journal", inputs.journal.is_some()),
    ] {
        if present {
            sources.push(name.to_owned());
        }
    }
    let triggered_cells = cells.iter().filter(|c| c.trigger != "completed").count() as u64;
    Ok(PostmortemReport {
        sources,
        triggered_cells,
        cells,
        warnings,
    })
}

/// Builds one cell's timeline from its flight record plus whatever the
/// side streams know about the same `(workload, policy)` key.
fn correlate_cell(
    cell: &Json,
    health: &[HealthRow],
    audit: &[AuditCell],
    metrics: &[MetricsWindow],
    ledger: &[LedgerCell],
    journal: &[JournalCell],
) -> CellTimeline {
    let workload = field_str(cell, "workload").unwrap_or_default();
    let policy = field_str(cell, "policy").unwrap_or_default();
    let trigger = field_str(cell, "trigger").unwrap_or_else(|| "unknown".to_owned());
    let final_access = field_u64(cell, "final_access").unwrap_or(0);
    let mut signals = Vec::new();

    // The flight dump's own contribution: the last state snapshot and
    // the last event the ring retained before the capture.
    if let Some(snapshot) = cell
        .get("snapshots")
        .and_then(Json::as_array)
        .and_then(<[Json]>::last)
    {
        signals.push(Signal {
            source: "flight".to_owned(),
            access: field_u64(snapshot, "access"),
            detail: format!(
                "last state snapshot: {} DRAM / {} NVM pages resident, {} served, {} faults, \
                 {} migrations",
                field_u64(snapshot, "dram_resident").unwrap_or(0),
                field_u64(snapshot, "nvm_resident").unwrap_or(0),
                field_u64(snapshot, "served").unwrap_or(0),
                field_u64(snapshot, "faults").unwrap_or(0),
                field_u64(snapshot, "migrations").unwrap_or(0),
            ),
        });
    }
    if let Some(event) = cell
        .get("events")
        .and_then(Json::as_array)
        .and_then(<[Json]>::last)
    {
        signals.push(Signal {
            source: "flight".to_owned(),
            access: field_u64(event, "access"),
            detail: format!(
                "last recorded event: {}",
                event.get("event").map_or_else(
                    || "unreadable".to_owned(),
                    |e| describe_flight_event(e, final_access)
                )
            ),
        });
    }

    if let Some(row) = health
        .iter()
        .find(|r| r.workload == workload && r.policy == policy)
    {
        let detail = if row.status == "failed" {
            format!(
                "quarantined after {} retr{} ({}): {}",
                row.retries,
                if row.retries == 1 { "y" } else { "ies" },
                if row.panicked { "panic" } else { "typed error" },
                row.error.as_deref().unwrap_or("no error recorded"),
            )
        } else {
            format!("completed with {} retried attempt(s)", row.retries)
        };
        signals.push(Signal {
            source: "health".to_owned(),
            access: None,
            detail,
        });
    }

    if let Some(report) = audit
        .iter()
        .find(|r| r.workload == workload && r.policy == policy)
    {
        if report.clean {
            signals.push(Signal {
                source: "audit".to_owned(),
                access: None,
                detail: "audit clean: no invariant violations".to_owned(),
            });
        }
        for violation in &report.violations {
            let lead = if violation.access_index <= final_access {
                format!(
                    "{} accesses before the final access",
                    final_access - violation.access_index
                )
            } else {
                "after the final recorded access".to_owned()
            };
            let page = violation
                .page
                .map_or(String::new(), |p| format!(" (page {p})"));
            signals.push(Signal {
                source: "audit".to_owned(),
                access: Some(violation.access_index),
                detail: format!(
                    "invariant {} violated{page}: observed {}, expected {} — {lead}",
                    violation.invariant, violation.observed, violation.expected,
                ),
            });
        }
        if report.total_violations > report.violations.len() as u64 {
            signals.push(Signal {
                source: "audit".to_owned(),
                access: None,
                detail: format!(
                    "{} further violation(s) beyond the retention cap",
                    report.total_violations - report.violations.len() as u64
                ),
            });
        }
    }

    // The interval window that contains the final access: the cell's
    // last known-good aggregate before things went wrong.
    if let Some(window) = metrics.iter().find(|w| {
        w.workload == workload
            && w.policy == policy
            && w.start_access <= final_access
            && final_access < w.end_access
    }) {
        let ratio = window
            .hit_ratio
            .as_deref()
            .map_or(String::new(), |r| format!(", hit ratio {r}"));
        signals.push(Signal {
            source: "metrics".to_owned(),
            access: Some(window.start_access),
            detail: format!(
                "interval {} (accesses {}..{}) contains the final access: {} faults{ratio}",
                window.interval, window.start_access, window.end_access, window.faults,
            ),
        });
    }

    if let Some(cell) = ledger
        .iter()
        .find(|l| l.workload == workload && l.policy == policy)
    {
        let top = cell
            .top_page
            .map_or(String::new(), |(page, migrations, pp)| {
                format!("; hottest page {page}: {migrations} migrations, {pp} ping-pongs")
            });
        signals.push(Signal {
            source: "ledger".to_owned(),
            access: None,
            detail: format!(
                "{} ping-pong round trips across {} pages{top}",
                cell.ping_pongs, cell.ping_pong_pages,
            ),
        });
    }

    if journal
        .iter()
        .any(|j| j.workload == workload && j.policy == policy)
    {
        signals.push(Signal {
            source: "journal".to_owned(),
            access: None,
            detail: "journaled as completed — a resume will replay this cell, not rerun it"
                .to_owned(),
        });
    } else if !journal.is_empty() {
        signals.push(Signal {
            source: "journal".to_owned(),
            access: None,
            detail: "absent from the resume journal — a resume will recompute this cell".to_owned(),
        });
    }

    // Timeline order: anchored signals by ascending access (stable on
    // source then detail), un-anchored context after them.
    signals.sort_by(|a, b| {
        let key = |s: &Signal| (s.access.unwrap_or(u64::MAX), s.source.clone());
        key(a).cmp(&key(b)).then_with(|| a.detail.cmp(&b.detail))
    });
    let correlated_signals = signals.iter().filter(|s| s.source != "flight").count() as u64;
    CellTimeline {
        workload,
        policy,
        trigger,
        error: field_str(cell, "error"),
        retries: field_u64(cell, "retries").unwrap_or(0),
        accesses: field_u64(cell, "accesses").unwrap_or(0),
        final_access,
        events_dropped: field_u64(cell, "events_dropped").unwrap_or(0),
        signals,
        correlated_signals,
    }
}

/// One line for a flight event object (`{"kind": ..., ...}`).
fn describe_flight_event(event: &Json, final_access: u64) -> String {
    let page = field_u64(event, "page").unwrap_or(0);
    let rw = |key: &str| {
        if event.get(key).and_then(Json::as_bool) == Some(true) {
            "write"
        } else {
            "read"
        }
    };
    let place = |key: &str| field_str(event, key).unwrap_or_else(|| "?".to_owned());
    match event.get("kind").and_then(Json::as_str) {
        Some("served") => format!("page {page} {} served from {}", rw("write"), place("from")),
        Some("fault") => format!("page {page} {} faulted", rw("write")),
        Some("migrate") => format!("page {page} migrated {} -> {}", place("from"), place("to")),
        Some("fill") => format!("page {page} filled from disk into {}", place("into")),
        Some("evict") => format!("page {page} evicted from {}", place("from")),
        Some("probe") => format!(
            "page {page} counter probe: {} reads / {} writes{}",
            field_u64(event, "reads").unwrap_or(0),
            field_u64(event, "writes").unwrap_or(0),
            if event.get("fired").and_then(Json::as_bool) == Some(true) {
                ", threshold fired"
            } else {
                ""
            },
        ),
        _ => format!("unrecognized event kind at access {final_access}"),
    }
}

/// Parses a `hybridmem-matrix-health-v1` report into rows.
fn parse_health(text: &str) -> Result<Vec<HealthRow>, String> {
    let doc = parse(text).map_err(|e| format!("health report: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some("hybridmem-matrix-health-v1") {
        return Err(format!(
            "health report schema is {schema:?}, expected \"hybridmem-matrix-health-v1\""
        ));
    }
    Ok(doc
        .get("cells")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .map(|cell| HealthRow {
            workload: field_str(cell, "workload").unwrap_or_default(),
            policy: field_str(cell, "policy").unwrap_or_default(),
            status: field_str(cell, "status").unwrap_or_default(),
            retries: field_u64(cell, "retries").unwrap_or(0),
            panicked: cell
                .get("panicked")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            error: field_str(cell, "error"),
        })
        .collect())
}

/// Parses a `hybridmem-audit-v1` report into cells.
fn parse_audit(text: &str) -> Result<Vec<AuditCell>, String> {
    let doc = parse(text).map_err(|e| format!("audit report: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some("hybridmem-audit-v1") {
        return Err(format!(
            "audit report schema is {schema:?}, expected \"hybridmem-audit-v1\""
        ));
    }
    Ok(doc
        .get("cells")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .map(|cell| AuditCell {
            workload: field_str(cell, "workload").unwrap_or_default(),
            policy: field_str(cell, "policy").unwrap_or_default(),
            clean: cell.get("clean").and_then(Json::as_bool).unwrap_or(true),
            total_violations: field_u64(cell, "total_violations").unwrap_or(0),
            violations: cell
                .get("violations")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|v| AuditViolation {
                    invariant: field_str(v, "invariant").unwrap_or_default(),
                    access_index: field_u64(v, "access_index").unwrap_or(0),
                    page: field_u64(v, "page"),
                    observed: field_str(v, "observed").unwrap_or_default(),
                    expected: field_str(v, "expected").unwrap_or_default(),
                })
                .collect(),
        })
        .collect())
}

/// Parses windowed-metrics JSONL; damaged lines become warnings.
fn parse_metrics(text: &str, warnings: &mut Vec<String>) -> Vec<MetricsWindow> {
    let mut windows = Vec::new();
    for (number, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(doc) = parse(line) else {
            warnings.push(format!("metrics line {}: unparseable", number + 1));
            continue;
        };
        let (Some(workload), Some(policy)) =
            (field_str(&doc, "workload"), field_str(&doc, "policy"))
        else {
            warnings.push(format!(
                "metrics line {}: not an interval record",
                number + 1
            ));
            continue;
        };
        windows.push(MetricsWindow {
            workload,
            policy,
            interval: field_u64(&doc, "interval").unwrap_or(0),
            start_access: field_u64(&doc, "start_access").unwrap_or(0),
            end_access: field_u64(&doc, "end_access").unwrap_or(0),
            faults: field_u64(&doc, "faults").unwrap_or(0),
            hit_ratio: doc.get("hit_ratio").and_then(|j| match j {
                Json::Number(lexeme) => Some(lexeme.clone()),
                _ => None,
            }),
        });
    }
    windows
}

/// Parses page-ledger JSONL (a header line per cell followed by its
/// page records); damaged lines become warnings.
fn parse_ledger(text: &str, warnings: &mut Vec<String>) -> Vec<LedgerCell> {
    let mut cells: Vec<LedgerCell> = Vec::new();
    for (number, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(doc) = parse(line) else {
            warnings.push(format!("ledger line {}: unparseable", number + 1));
            continue;
        };
        if let (Some(workload), Some(policy)) =
            (field_str(&doc, "workload"), field_str(&doc, "policy"))
        {
            let summary = doc.get("summary");
            cells.push(LedgerCell {
                workload,
                policy,
                ping_pongs: summary
                    .and_then(|s| field_u64(s, "ping_pongs"))
                    .unwrap_or(0),
                ping_pong_pages: summary
                    .and_then(|s| field_u64(s, "ping_pong_pages"))
                    .unwrap_or(0),
                top_page: None,
            });
        } else if let Some(page) = field_u64(&doc, "page") {
            // Page records bind to the most recent header; the first
            // one is the retention order's hottest page.
            let Some(cell) = cells.last_mut() else {
                warnings.push(format!(
                    "ledger line {}: page record before any header",
                    number + 1
                ));
                continue;
            };
            if cell.top_page.is_none() {
                let summary = doc.get("summary");
                let sum = |key: &str| summary.and_then(|s| field_u64(s, key)).unwrap_or(0);
                let migrations = sum("promotions_read")
                    + sum("promotions_write")
                    + sum("promotions_unattributed")
                    + sum("demotions_fault")
                    + sum("demotions_swap");
                cell.top_page = Some((page, migrations, sum("ping_pongs")));
            }
        } else {
            warnings.push(format!("ledger line {}: not a ledger record", number + 1));
        }
    }
    cells
}

/// FNV-1a 64 over `bytes` (the journal's record checksum).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Decodes the binary resume journal (see `hybridmem-core::journal`
/// for the format). A torn or corrupt tail becomes a warning, exactly
/// as the journal's own open path treats it.
fn parse_journal(bytes: &[u8], warnings: &mut Vec<String>) -> Result<Vec<JournalCell>, String> {
    const HEADER_BYTES: usize = 20;
    const FRAME_BYTES: usize = 12;
    let magic = bytes.get(..8);
    if magic != Some(b"HMJRNL1\0") {
        return Err("journal: not a run journal (bad magic)".to_owned());
    }
    let le_u32 = |slice: Option<&[u8]>| {
        slice
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .map(u32::from_le_bytes)
    };
    let le_u64 = |slice: Option<&[u8]>| {
        slice
            .and_then(|s| <[u8; 8]>::try_from(s).ok())
            .map(u64::from_le_bytes)
    };
    let version = le_u32(bytes.get(8..12));
    if version != Some(1) {
        return Err(format!("journal: unsupported version {version:?}"));
    }
    let mut cells = Vec::new();
    let mut offset = HEADER_BYTES;
    while bytes.len().saturating_sub(offset) >= FRAME_BYTES {
        let Some(len) = le_u32(bytes.get(offset..offset + 4)) else {
            break;
        };
        let crc = le_u64(bytes.get(offset + 4..offset + 12));
        let Some(end) = offset.checked_add(FRAME_BYTES + len as usize) else {
            break;
        };
        let Some(payload) = bytes.get(offset + FRAME_BYTES..end) else {
            break; // torn final record
        };
        if Some(fnv1a64(payload)) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(entry) = parse(text) else {
            break;
        };
        if let (Some(workload), Some(policy)) =
            (field_str(&entry, "workload"), field_str(&entry, "policy"))
        {
            cells.push(JournalCell { workload, policy });
        }
        offset = end;
    }
    let tail = bytes.len().saturating_sub(offset);
    if tail > 0 {
        warnings.push(format!(
            "journal: {tail} trailing byte(s) of torn or corrupt tail ignored"
        ));
    }
    Ok(cells)
}

/// Renders the correlation as the stable `hybridmem-postmortem-v1`
/// JSON document.
#[must_use]
pub fn postmortem_report(report: &PostmortemReport) -> Json {
    let cells = report
        .cells
        .iter()
        .map(|cell| {
            let signals = cell
                .signals
                .iter()
                .map(|s| {
                    Json::Object(vec![
                        ("source".to_owned(), Json::str(&s.source)),
                        ("access".to_owned(), s.access.map_or(Json::Null, Json::u64)),
                        ("detail".to_owned(), Json::str(&s.detail)),
                    ])
                })
                .collect();
            Json::Object(vec![
                ("workload".to_owned(), Json::str(&cell.workload)),
                ("policy".to_owned(), Json::str(&cell.policy)),
                ("trigger".to_owned(), Json::str(&cell.trigger)),
                (
                    "error".to_owned(),
                    cell.error.as_deref().map_or(Json::Null, Json::str),
                ),
                ("retries".to_owned(), Json::u64(cell.retries)),
                ("accesses".to_owned(), Json::u64(cell.accesses)),
                ("final_access".to_owned(), Json::u64(cell.final_access)),
                ("events_dropped".to_owned(), Json::u64(cell.events_dropped)),
                (
                    "correlated_signals".to_owned(),
                    Json::u64(cell.correlated_signals),
                ),
                ("signals".to_owned(), Json::Array(signals)),
            ])
        })
        .collect();
    Json::Object(vec![
        ("schema".to_owned(), Json::str(POSTMORTEM_SCHEMA)),
        (
            "sources".to_owned(),
            Json::Array(report.sources.iter().map(Json::str).collect()),
        ),
        (
            "flight_cells".to_owned(),
            Json::u64(report.cells.len() as u64),
        ),
        (
            "triggered_cells".to_owned(),
            Json::u64(report.triggered_cells),
        ),
        ("cells".to_owned(), Json::Array(cells)),
        (
            "warnings".to_owned(),
            Json::Array(report.warnings.iter().map(Json::str).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal but structurally faithful flight dump with one
    /// panicked cell and one completed cell.
    fn flight_dump() -> String {
        r#"{
  "schema": "hybridmem-flight-v1",
  "cells": [
    {
      "workload": "w.trace", "policy": "two-lru", "trigger": "panic",
      "error": "injected fault: cell w.trace/two-lru panicked at access 500",
      "retries": 2, "warmup_accesses": 0, "dram_capacity": 12, "nvm_capacity": 110,
      "accesses": 500, "final_access": 499, "dram_resident": 12, "nvm_resident": 90,
      "served": 420, "faults": 80, "migrations": 7, "fills": 80, "evictions": 60,
      "probes": 0, "ring_capacity": 64, "events_dropped": 436,
      "snapshot_every": 256, "snapshot_capacity": 64, "snapshots_dropped": 0,
      "snapshots": [
        {"access": 256, "dram_resident": 10, "nvm_resident": 70, "served": 200,
         "faults": 56, "migrations": 3, "fills": 56, "evictions": 40, "probes": 0}
      ],
      "events": [
        {"access": 498, "event": {"kind": "fault", "page": 17, "write": false}},
        {"access": 499, "event": {"kind": "served", "page": 9, "write": true, "from": "dram"}}
      ]
    },
    {
      "workload": "w.trace", "policy": "dram-only", "trigger": "completed",
      "retries": 0, "warmup_accesses": 0, "dram_capacity": 122, "nvm_capacity": 0,
      "accesses": 1000, "final_access": 999, "dram_resident": 100, "nvm_resident": 0,
      "served": 900, "faults": 100, "migrations": 0, "fills": 100, "evictions": 10,
      "probes": 0, "ring_capacity": 64, "events_dropped": 1936,
      "snapshot_every": 256, "snapshot_capacity": 64, "snapshots_dropped": 0,
      "snapshots": [],
      "events": [
        {"access": 999, "event": {"kind": "served", "page": 3, "write": false, "from": "dram"}}
      ]
    }
  ],
  "dumped_cells": 2,
  "triggered_cells": 1
}"#
        .to_owned()
    }

    fn health_report() -> String {
        r#"{
  "schema": "hybridmem-matrix-health-v1",
  "cells": [
    {"workload": "w.trace", "policy": "two-lru", "status": "failed", "retries": 2,
     "panicked": true, "error": "injected fault: cell w.trace/two-lru panicked at access 500"},
    {"workload": "w.trace", "policy": "dram-only", "status": "ok", "retries": 0,
     "panicked": false, "error": null}
  ],
  "total_cells": 2, "failed_cells": 1, "retried_cells": 1, "clean": false
}"#
        .to_owned()
    }

    fn audit_report() -> String {
        r#"{
  "schema": "hybridmem-audit-v1",
  "cells": [
    {"workload": "w.trace", "policy": "two-lru", "accesses": 500, "faults": 80,
     "fills": 80, "violations": [
       {"invariant": "fill-fault", "access_index": 471, "page": 17,
        "observed": "a fill without a fault", "expected": "fills follow faults"}
     ],
     "dropped_violations": 0, "total_violations": 1, "clean": false}
  ],
  "total_violations": 1, "dropped_violations": 0, "clean": false
}"#
        .to_owned()
    }

    #[test]
    fn correlates_flight_health_and_audit_into_a_timeline() {
        let flight = flight_dump();
        let health = health_report();
        let audit = audit_report();
        let report = correlate(&PostmortemInputs {
            flight: &flight,
            health: Some(&health),
            audit: Some(&audit),
            ..PostmortemInputs::default()
        })
        .expect("correlates");

        assert_eq!(report.triggered_cells, 1);
        assert_eq!(report.sources, ["flight", "health", "audit"]);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);

        let failed = report
            .cells
            .iter()
            .find(|c| c.policy == "two-lru")
            .expect("failing cell present");
        assert_eq!(failed.workload, "w.trace");
        assert_eq!(failed.trigger, "panic");
        assert_eq!(failed.final_access, 499);
        assert!(failed.correlated_signals >= 2, "{failed:?}");
        // The audit violation is anchored 28 accesses before the
        // failure and sorts before the flight ring's last event.
        let audit_signal = failed
            .signals
            .iter()
            .find(|s| s.source == "audit")
            .expect("audit signal");
        assert_eq!(audit_signal.access, Some(471));
        assert!(
            audit_signal.detail.contains("28 accesses before"),
            "{}",
            audit_signal.detail
        );
        let anchored: Vec<Option<u64>> = failed
            .signals
            .iter()
            .filter_map(|s| s.access.map(Some))
            .collect();
        let mut sorted = anchored.clone();
        sorted.sort_unstable();
        assert_eq!(anchored, sorted, "anchored signals ascend");
        let health_signal = failed
            .signals
            .iter()
            .find(|s| s.source == "health")
            .expect("health signal");
        assert!(
            health_signal.detail.contains("quarantined after 2"),
            "{}",
            health_signal.detail
        );

        let completed = report
            .cells
            .iter()
            .find(|c| c.policy == "dram-only")
            .expect("completed cell present");
        assert_eq!(completed.trigger, "completed");
        assert!(completed
            .signals
            .iter()
            .any(|s| s.source == "health" && s.detail.contains("completed")));
    }

    #[test]
    fn metrics_and_ledger_streams_enrich_the_timeline() {
        let flight = flight_dump();
        let metrics = concat!(
            r#"{"workload":"w.trace","policy":"two-lru","interval":0,"start_access":0,"end_access":1000,"accesses":1000,"faults":80,"hit_ratio":0.915,"amat_ns":100.0}"#,
            "\n",
            "not json\n",
        );
        let ledger = concat!(
            r#"{"workload":"w.trace","policy":"two-lru","accesses":500,"warmup_accesses":0,"summary":{"pages":120,"faults":80,"ping_pongs":9,"ping_pong_pages":4}}"#,
            "\n",
            r#"{"page":17,"summary":{"accesses":40,"promotions_read":3,"promotions_write":1,"promotions_unattributed":0,"demotions_fault":2,"demotions_swap":1,"ping_pongs":3},"events":[],"dropped_events":0}"#,
            "\n",
        );
        let report = correlate(&PostmortemInputs {
            flight: &flight,
            metrics: Some(metrics),
            ledger: Some(ledger),
            ..PostmortemInputs::default()
        })
        .expect("correlates");
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);

        let failed = report
            .cells
            .iter()
            .find(|c| c.policy == "two-lru")
            .expect("failing cell");
        let metrics_signal = failed
            .signals
            .iter()
            .find(|s| s.source == "metrics")
            .expect("metrics signal");
        assert!(
            metrics_signal.detail.contains("interval 0"),
            "{}",
            metrics_signal.detail
        );
        assert!(
            metrics_signal.detail.contains("hit ratio 0.915"),
            "lexeme preserved: {}",
            metrics_signal.detail
        );
        let ledger_signal = failed
            .signals
            .iter()
            .find(|s| s.source == "ledger")
            .expect("ledger signal");
        assert!(
            ledger_signal
                .detail
                .contains("hottest page 17: 7 migrations"),
            "{}",
            ledger_signal.detail
        );
    }

    #[test]
    fn journal_stream_marks_completed_and_missing_cells() {
        // Build a faithful journal by hand: header + one record.
        let payload = br#"{"workload":"w.trace","policy":"dram-only","report":{}}"#;
        let mut journal = Vec::new();
        journal.extend_from_slice(b"HMJRNL1\0");
        journal.extend_from_slice(&1u32.to_le_bytes());
        journal.extend_from_slice(&0xABCDu64.to_le_bytes());
        journal.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        journal.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        journal.extend_from_slice(payload);
        // A torn tail: a frame header with no payload behind it.
        journal.extend_from_slice(&64u32.to_le_bytes());
        journal.extend_from_slice(&0u64.to_le_bytes());
        journal.extend_from_slice(b"{\"wo");

        let flight = flight_dump();
        let report = correlate(&PostmortemInputs {
            flight: &flight,
            journal: Some(&journal),
            ..PostmortemInputs::default()
        })
        .expect("correlates");
        assert!(
            report.warnings.iter().any(|w| w.contains("torn")),
            "{:?}",
            report.warnings
        );
        let completed = report
            .cells
            .iter()
            .find(|c| c.policy == "dram-only")
            .expect("cell");
        assert!(completed
            .signals
            .iter()
            .any(|s| s.source == "journal" && s.detail.contains("journaled as completed")));
        let failed = report
            .cells
            .iter()
            .find(|c| c.policy == "two-lru")
            .expect("cell");
        assert!(failed
            .signals
            .iter()
            .any(|s| s.source == "journal" && s.detail.contains("absent")));
    }

    #[test]
    fn failed_cells_missing_from_the_flight_dump_become_warnings() {
        let flight = r#"{"schema": "hybridmem-flight-v1", "cells": [],
                         "dumped_cells": 0, "triggered_cells": 0}"#;
        let health = health_report();
        let report = correlate(&PostmortemInputs {
            flight,
            health: Some(&health),
            ..PostmortemInputs::default()
        })
        .expect("correlates");
        assert!(report.cells.is_empty());
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("w.trace/two-lru") && w.contains("no record")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn rejects_foreign_or_unreadable_required_inputs() {
        let err = correlate(&PostmortemInputs {
            flight: "{\"schema\": \"other\"}",
            ..PostmortemInputs::default()
        })
        .unwrap_err();
        assert!(err.contains("hybridmem-flight-v1"), "{err}");
        assert!(correlate(&PostmortemInputs {
            flight: "not json",
            ..PostmortemInputs::default()
        })
        .is_err());
        let flight = flight_dump();
        let err = correlate(&PostmortemInputs {
            flight: &flight,
            health: Some("{\"schema\": \"other\"}"),
            ..PostmortemInputs::default()
        })
        .unwrap_err();
        assert!(err.contains("matrix-health"), "{err}");
    }

    #[test]
    fn report_json_round_trips_and_names_the_failing_cell() {
        let flight = flight_dump();
        let health = health_report();
        let audit = audit_report();
        let report = correlate(&PostmortemInputs {
            flight: &flight,
            health: Some(&health),
            audit: Some(&audit),
            ..PostmortemInputs::default()
        })
        .expect("correlates");
        let json = postmortem_report(&report);
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some(POSTMORTEM_SCHEMA)
        );
        assert_eq!(json.get("triggered_cells").and_then(Json::as_u64), Some(1));
        let text = json.emit_pretty();
        let reparsed = parse(&text).expect("own output parses");
        assert_eq!(reparsed.emit_pretty(), text, "byte round-trip");
        assert!(text.contains("\"two-lru\""));
        assert!(text.contains("\"final_access\": 499"));
    }
}
