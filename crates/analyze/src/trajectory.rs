//! The bench-trajectory ratchet: noise-aware regression detection over
//! the committed `BENCH_*.json` history.
//!
//! Wall-clock throughput is noisy, so the detector compares the newest
//! point against the *median* of the prior comparable points per series
//! (each `hybridmem-stress-v1` phase and policy), with a relative
//! threshold: a series regresses only when the newest rate falls more
//! than `threshold` below that median. Points are comparable when their
//! workload shape matches (same `quick`, `cap`, `seed`); mixing full and
//! quick runs would gate noise, not regressions.
//!
//! The gate stays advisory until the history holds at least
//! [`TrajectoryOptions::min_points`] comparable points — a median of one
//! prior run is just that run's noise.

use crate::ingest::BenchPoint;

/// Detector knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryOptions {
    /// Relative drop below the prior median that counts as a regression
    /// (0.25 = 25 % slower).
    pub threshold: f64,
    /// Comparable points (newest included) required before the gate
    /// enforces; below this the verdicts are advisory.
    pub min_points: usize,
}

impl Default for TrajectoryOptions {
    fn default() -> Self {
        Self {
            threshold: 0.25,
            min_points: 3,
        }
    }
}

/// One series' verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesVerdict {
    /// Series name (`phase/...` or `policy/...`).
    pub series: String,
    /// The newest point's rate, accesses/second.
    pub latest: f64,
    /// Median rate of the prior comparable points (0 when none carried
    /// this series).
    pub median_prior: f64,
    /// `latest / median_prior` (1.0 when no priors).
    pub ratio: f64,
    /// Latest fell more than the threshold below the prior median.
    pub regressed: bool,
    /// Latest rose more than the threshold above the prior median.
    pub improved: bool,
}

/// The rolled trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryReport {
    /// All points, sorted by trajectory index then name.
    pub points: Vec<BenchPoint>,
    /// Points comparable with the newest (newest included).
    pub comparable: usize,
    /// Whether the history is deep enough for the gate to enforce.
    pub enforceable: bool,
    /// The threshold used.
    pub threshold: f64,
    /// Per-series verdicts for the newest point, in its series order.
    pub verdicts: Vec<SeriesVerdict>,
    /// Regressed series count.
    pub regressions: u64,
}

/// Median of an unsorted sample (mean of the middle two when even).
fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        f64::midpoint(values[mid - 1], values[mid])
    }
}

/// Rolls the history and judges the newest point.
///
/// Points are sorted by `BENCH_<n>` index (then name) first, so callers
/// can pass files in any order; "newest" is the highest-indexed point.
#[must_use]
pub fn roll(mut points: Vec<BenchPoint>, options: TrajectoryOptions) -> TrajectoryReport {
    points.sort_by(|a, b| (a.index, &a.name).cmp(&(b.index, &b.name)));
    let Some(latest) = points.last().cloned() else {
        return TrajectoryReport {
            points,
            comparable: 0,
            enforceable: false,
            threshold: options.threshold,
            verdicts: Vec::new(),
            regressions: 0,
        };
    };
    let priors: Vec<&BenchPoint> = points[..points.len() - 1]
        .iter()
        .filter(|p| p.comparable(&latest))
        .collect();
    let comparable = priors.len() + 1;
    let enforceable = comparable >= options.min_points.max(1);
    let mut verdicts = Vec::new();
    let mut regressions = 0;
    for (series, rate) in latest.series() {
        let mut sample: Vec<f64> = priors
            .iter()
            .flat_map(|p| p.series())
            .filter(|(name, _)| *name == series)
            .map(|(_, rate)| rate)
            .collect();
        let median_prior = median(&mut sample);
        let (ratio, regressed, improved) = if median_prior > 0.0 {
            let ratio = rate / median_prior;
            (
                ratio,
                ratio < 1.0 - options.threshold,
                ratio > 1.0 + options.threshold,
            )
        } else {
            (1.0, false, false)
        };
        if regressed {
            regressions += 1;
        }
        verdicts.push(SeriesVerdict {
            series,
            latest: rate,
            median_prior,
            ratio,
            regressed,
            improved,
        });
    }
    TrajectoryReport {
        points,
        comparable,
        enforceable,
        threshold: options.threshold,
        verdicts,
        regressions,
    }
}

impl TrajectoryReport {
    /// True when the gate should fail the build: enough history *and* at
    /// least one regressed series.
    #[must_use]
    pub fn gate_fails(&self) -> bool {
        self.enforceable && self.regressions > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(index: u64, batched: f64) -> BenchPoint {
        BenchPoint {
            name: format!("BENCH_{index}.json"),
            index: Some(index),
            quick: true,
            seed: 42,
            cap: 60_000,
            wall_seconds: 4.0,
            phases: vec![
                ("reference".to_owned(), 200_000.0),
                ("replay_batched".to_owned(), batched),
            ],
            policies: vec![("two-lru".to_owned(), batched)],
        }
    }

    #[test]
    fn median_of_priors_absorbs_one_noisy_run() {
        // Priors 400k, 90k (noise spike), 410k -> median 400k. The
        // newest 350k is within 25% of the median even though it is far
        // from the noisy minimum.
        let report = roll(
            vec![
                point(1, 400_000.0),
                point(2, 90_000.0),
                point(3, 410_000.0),
                point(4, 350_000.0),
            ],
            TrajectoryOptions::default(),
        );
        assert_eq!(report.comparable, 4);
        assert!(report.enforceable);
        let verdict = report
            .verdicts
            .iter()
            .find(|v| v.series == "phase/replay_batched")
            .expect("series present");
        assert!(!verdict.regressed, "{verdict:?}");
        assert!((verdict.median_prior - 400_000.0).abs() < 1e-9);
        assert!(!report.gate_fails());
    }

    #[test]
    fn a_real_drop_regresses_and_fails_the_gate() {
        let report = roll(
            vec![
                point(1, 400_000.0),
                point(2, 420_000.0),
                point(3, 410_000.0),
                point(4, 200_000.0),
            ],
            TrajectoryOptions::default(),
        );
        // replay_batched and the two-lru policy series both halved.
        assert_eq!(report.regressions, 2);
        assert!(report.gate_fails());
    }

    #[test]
    fn short_history_is_advisory() {
        let report = roll(
            vec![point(1, 400_000.0), point(2, 100_000.0)],
            TrajectoryOptions::default(),
        );
        assert_eq!(report.comparable, 2);
        assert!(!report.enforceable, "2 points < min_points");
        assert!(report.regressions > 0, "still reported");
        assert!(!report.gate_fails(), "but not enforced");
    }

    #[test]
    fn incomparable_points_are_excluded_from_the_sample() {
        let mut full_run = point(2, 50_000.0);
        full_run.quick = false;
        full_run.cap = 1_000_000;
        let report = roll(
            vec![point(1, 400_000.0), full_run, point(3, 390_000.0)],
            TrajectoryOptions::default(),
        );
        assert_eq!(report.comparable, 2, "the full run does not count");
        let verdict = &report.verdicts[1];
        assert!((verdict.median_prior - 400_000.0).abs() < 1e-9);
    }

    #[test]
    fn points_sort_by_index_not_argument_order() {
        let report = roll(
            vec![
                point(9, 100_000.0),
                point(2, 400_000.0),
                point(5, 410_000.0),
            ],
            TrajectoryOptions::default(),
        );
        assert_eq!(report.points[0].index, Some(2));
        assert_eq!(report.points[2].index, Some(9), "BENCH_9 is newest");
        assert!(report.gate_fails(), "the newest point halved");
    }

    #[test]
    fn improvements_are_marked_not_gated() {
        let report = roll(
            vec![
                point(1, 100_000.0),
                point(2, 100_000.0),
                point(3, 400_000.0),
            ],
            TrajectoryOptions::default(),
        );
        assert!(report.verdicts[1].improved);
        assert_eq!(report.regressions, 0);
    }

    #[test]
    fn empty_history_is_a_no_op() {
        let report = roll(Vec::new(), TrajectoryOptions::default());
        assert!(report.verdicts.is_empty());
        assert!(!report.gate_fails());
    }

    #[test]
    fn median_handles_even_samples() {
        let mut values = vec![4.0, 1.0, 3.0, 2.0];
        assert!((median(&mut values) - 2.5).abs() < 1e-12);
    }
}
