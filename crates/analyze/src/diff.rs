//! Per-cell deltas between two runs of the same matrix.
//!
//! Windowed records are first rolled up per `(workload, policy)` cell
//! into a named metric list ([`CellProfile`]); ledger roll-ups reduce to
//! the same shape. [`diff`] then matches cells across the two runs and
//! reports absolute and relative deltas per metric, flagging the ones
//! where the *worse* direction moved beyond the threshold.

use crate::ingest::{IntervalStat, LedgerStat};

/// Which direction of change is a regression for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Worse {
    /// Growth is bad (latency, faults, energy).
    Higher,
    /// Shrinkage is bad (hit ratio).
    Lower,
    /// Neither direction is inherently bad (occupancy, window count).
    Neither,
}

/// One cell's roll-up: named metric values in a stable order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellProfile {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// `(metric, value, worse-direction)` rows, in presentation order.
    pub metrics: Vec<(String, f64, Worse)>,
}

#[allow(clippy::cast_precision_loss)]
fn count(value: u64) -> f64 {
    value as f64
}

/// Rolls windowed records up per cell, in first-seen order (the JSONL
/// is written spec-major in kinds order, which the tables keep).
/// Ratios and per-request figures are access-weighted means.
#[must_use]
pub fn profile_intervals(records: &[IntervalStat]) -> Vec<CellProfile> {
    struct Tally {
        workload: String,
        policy: String,
        windows: u64,
        accesses: u64,
        faults: u64,
        dram_hits: u64,
        nvm_hits: u64,
        migrations: u64,
        fills: u64,
        evictions: u64,
        amat_weighted: f64,
        appr_weighted: f64,
        final_dram: u64,
        final_nvm: u64,
    }
    let mut tallies: Vec<Tally> = Vec::new();
    for record in records {
        let position = tallies
            .iter()
            .position(|t| t.workload == record.workload && t.policy == record.policy);
        let tally = match position {
            Some(index) => &mut tallies[index],
            None => {
                tallies.push(Tally {
                    workload: record.workload.clone(),
                    policy: record.policy.clone(),
                    windows: 0,
                    accesses: 0,
                    faults: 0,
                    dram_hits: 0,
                    nvm_hits: 0,
                    migrations: 0,
                    fills: 0,
                    evictions: 0,
                    amat_weighted: 0.0,
                    appr_weighted: 0.0,
                    final_dram: 0,
                    final_nvm: 0,
                });
                tallies.last_mut().expect("just pushed")
            }
        };
        tally.windows += 1;
        tally.accesses += record.accesses;
        tally.faults += record.faults;
        tally.dram_hits += record.dram_hits;
        tally.nvm_hits += record.nvm_hits;
        tally.migrations += record.migrations_to_dram + record.migrations_to_nvm;
        tally.fills += record.fills;
        tally.evictions += record.evictions;
        tally.amat_weighted += record.amat_ns * count(record.accesses);
        tally.appr_weighted += record.appr_nj * count(record.accesses);
        tally.final_dram = record.dram_occupancy;
        tally.final_nvm = record.nvm_occupancy;
    }
    tallies
        .into_iter()
        .map(|t| {
            let per_access = |weighted: f64| {
                if t.accesses > 0 {
                    weighted / count(t.accesses)
                } else {
                    0.0
                }
            };
            let hit_ratio = per_access(count(t.dram_hits + t.nvm_hits));
            CellProfile {
                workload: t.workload,
                policy: t.policy,
                metrics: vec![
                    ("windows".to_owned(), count(t.windows), Worse::Neither),
                    ("accesses".to_owned(), count(t.accesses), Worse::Neither),
                    ("hit_ratio".to_owned(), hit_ratio, Worse::Lower),
                    (
                        "amat_ns".to_owned(),
                        per_access(t.amat_weighted),
                        Worse::Higher,
                    ),
                    (
                        "appr_nj".to_owned(),
                        per_access(t.appr_weighted),
                        Worse::Higher,
                    ),
                    ("faults".to_owned(), count(t.faults), Worse::Higher),
                    ("migrations".to_owned(), count(t.migrations), Worse::Neither),
                    ("fills".to_owned(), count(t.fills), Worse::Neither),
                    ("evictions".to_owned(), count(t.evictions), Worse::Neither),
                    (
                        "dram_occupancy".to_owned(),
                        count(t.final_dram),
                        Worse::Neither,
                    ),
                    (
                        "nvm_occupancy".to_owned(),
                        count(t.final_nvm),
                        Worse::Neither,
                    ),
                ],
            }
        })
        .collect()
}

/// Reduces ledger roll-ups to the shared cell-profile shape.
#[must_use]
pub fn profile_ledgers(stats: &[LedgerStat]) -> Vec<CellProfile> {
    stats
        .iter()
        .map(|s| CellProfile {
            workload: s.workload.clone(),
            policy: s.policy.clone(),
            metrics: vec![
                ("accesses".to_owned(), count(s.accesses), Worse::Neither),
                ("pages".to_owned(), count(s.pages), Worse::Neither),
                ("faults".to_owned(), count(s.faults), Worse::Higher),
                ("promotions".to_owned(), count(s.promotions), Worse::Neither),
                ("demotions".to_owned(), count(s.demotions), Worse::Neither),
                ("evictions".to_owned(), count(s.evictions), Worse::Neither),
                ("ping_pongs".to_owned(), count(s.ping_pongs), Worse::Higher),
            ],
        })
        .collect()
}

/// One metric's movement between run A and run B.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub metric: String,
    /// Run A's value.
    pub a: f64,
    /// Run B's value.
    pub b: f64,
    /// `b - a`.
    pub delta: f64,
    /// `(b - a) / |a|`, or 0 when A is 0.
    pub relative: f64,
    /// True when the worse direction moved beyond the threshold.
    pub regressed: bool,
}

/// One cell's deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDelta {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Per-metric deltas, in profile order.
    pub metrics: Vec<MetricDelta>,
}

/// The full A-vs-B comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Cells present in both runs, in run A's order.
    pub cells: Vec<CellDelta>,
    /// `workload/policy` labels only run A has.
    pub only_a: Vec<String>,
    /// `workload/policy` labels only run B has.
    pub only_b: Vec<String>,
    /// The relative threshold regressions were judged against.
    pub threshold: f64,
    /// Total regressed metrics across all cells.
    pub regressions: u64,
}

/// Compares two profiled runs. `threshold` is the relative movement in
/// a metric's worse direction that counts as a regression (e.g. `0.05`
/// = 5 % worse).
#[must_use]
pub fn diff(a: &[CellProfile], b: &[CellProfile], threshold: f64) -> DiffReport {
    let mut cells = Vec::new();
    let mut only_a = Vec::new();
    let mut regressions = 0;
    for cell_a in a {
        let Some(cell_b) = b
            .iter()
            .find(|c| c.workload == cell_a.workload && c.policy == cell_a.policy)
        else {
            only_a.push(format!("{}/{}", cell_a.workload, cell_a.policy));
            continue;
        };
        let mut metrics = Vec::new();
        for (metric, value_a, worse) in &cell_a.metrics {
            let Some((_, value_b, _)) = cell_b.metrics.iter().find(|(name, _, _)| name == metric)
            else {
                continue;
            };
            let delta = value_b - value_a;
            let relative = if value_a.abs() > 0.0 {
                delta / value_a.abs()
            } else {
                0.0
            };
            let regressed = match worse {
                Worse::Higher => relative > threshold,
                Worse::Lower => relative < -threshold,
                Worse::Neither => false,
            };
            if regressed {
                regressions += 1;
            }
            metrics.push(MetricDelta {
                metric: metric.clone(),
                a: *value_a,
                b: *value_b,
                delta,
                relative,
                regressed,
            });
        }
        cells.push(CellDelta {
            workload: cell_a.workload.clone(),
            policy: cell_a.policy.clone(),
            metrics,
        });
    }
    let only_b = b
        .iter()
        .filter(|cell_b| {
            !a.iter()
                .any(|c| c.workload == cell_b.workload && c.policy == cell_b.policy)
        })
        .map(|c| format!("{}/{}", c.workload, c.policy))
        .collect();
    DiffReport {
        cells,
        only_a,
        only_b,
        threshold,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(policy: &str, interval: u64, accesses: u64, amat: f64) -> IntervalStat {
        IntervalStat {
            workload: "w".to_owned(),
            policy: policy.to_owned(),
            interval,
            accesses,
            faults: 10,
            dram_hits: accesses / 2,
            nvm_hits: accesses / 4,
            migrations_to_dram: 3,
            migrations_to_nvm: 1,
            fills: 10,
            evictions: 8,
            dram_occupancy: 5,
            nvm_occupancy: 50,
            hit_ratio: 0.75,
            amat_ns: amat,
            appr_nj: 1.0,
        }
    }

    #[test]
    fn interval_rollup_weights_by_accesses() {
        let records = [
            interval("two-lru", 0, 1000, 100.0),
            interval("two-lru", 1, 3000, 200.0),
            interval("clock-dwf", 0, 1000, 400.0),
        ];
        let profiles = profile_intervals(&records);
        assert_eq!(profiles.len(), 2);
        let two_lru = &profiles[0];
        assert_eq!(two_lru.policy, "two-lru");
        let amat = two_lru
            .metrics
            .iter()
            .find(|(name, _, _)| name == "amat_ns")
            .map(|(_, value, _)| *value)
            .expect("amat present");
        // (1000*100 + 3000*200) / 4000 = 175.
        assert!((amat - 175.0).abs() < 1e-9, "{amat}");
        let windows = two_lru.metrics[0].1;
        assert!((windows - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diff_flags_only_worse_direction_moves() {
        let records_a = [interval("two-lru", 0, 1000, 100.0)];
        let records_b = [interval("two-lru", 0, 1000, 120.0)];
        let report = diff(
            &profile_intervals(&records_a),
            &profile_intervals(&records_b),
            0.05,
        );
        assert_eq!(report.cells.len(), 1);
        let amat = report.cells[0]
            .metrics
            .iter()
            .find(|m| m.metric == "amat_ns")
            .expect("amat present");
        assert!(amat.regressed, "20% worse AMAT beats the 5% threshold");
        assert!((amat.relative - 0.2).abs() < 1e-9);
        assert_eq!(report.regressions, 1);

        // The improvement direction never regresses.
        let improved = diff(
            &profile_intervals(&records_b),
            &profile_intervals(&records_a),
            0.05,
        );
        assert_eq!(improved.regressions, 0);
    }

    #[test]
    fn diff_reports_unmatched_cells() {
        let a = profile_intervals(&[interval("two-lru", 0, 100, 1.0)]);
        let b = profile_intervals(&[interval("clock-dwf", 0, 100, 1.0)]);
        let report = diff(&a, &b, 0.05);
        assert!(report.cells.is_empty());
        assert_eq!(report.only_a, vec!["w/two-lru"]);
        assert_eq!(report.only_b, vec!["w/clock-dwf"]);
    }

    #[test]
    fn ledger_profiles_reduce_summary_counts() {
        let stats = [LedgerStat {
            workload: "w".to_owned(),
            policy: "two-lru".to_owned(),
            accesses: 1000,
            pages: 64,
            faults: 100,
            promotions: 11,
            demotions: 10,
            evictions: 90,
            ping_pongs: 3,
        }];
        let profiles = profile_ledgers(&stats);
        assert_eq!(profiles[0].metrics.len(), 7);
        assert!((profiles[0].metrics[3].1 - 11.0).abs() < 1e-12);
    }
}
