//! Input loading: format sniffing over the telemetry the engine emits.
//!
//! Four producers feed the analyzer, each recognizable without a flag:
//!
//! * windowed-metrics JSONL — one [`IntervalRecord`] object per line,
//!   marked by the `interval` field;
//! * ledger JSONL — one `LedgerReport` object per line, marked by the
//!   `summary` field (detail pages are ignored; only the roll-up counts
//!   feed the diff);
//! * `BENCH_*.json` — one `hybridmem-stress-v1` trajectory point;
//! * `throughput.json` / a bare `MetricsSnapshot` — histogram quantiles
//!   for the `analyze metrics` table.
//!
//! `IntervalRecord` is `hybridmem_core::IntervalRecord`'s JSON shape;
//! the analyzer reads it structurally so it stays zero-dependency.

use crate::json::{parse, Json};

/// One windowed-metrics record (the fields the analyzer consumes).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalStat {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Window ordinal.
    pub interval: u64,
    /// Demand accesses in the window.
    pub accesses: u64,
    /// Page faults in the window.
    pub faults: u64,
    /// DRAM hits (reads + writes).
    pub dram_hits: u64,
    /// NVM hits (reads + writes).
    pub nvm_hits: u64,
    /// NVM→DRAM migrations.
    pub migrations_to_dram: u64,
    /// DRAM→NVM migrations.
    pub migrations_to_nvm: u64,
    /// Disk fills (both tiers).
    pub fills: u64,
    /// Evictions to disk.
    pub evictions: u64,
    /// End-of-window DRAM occupancy, pages.
    pub dram_occupancy: u64,
    /// End-of-window NVM occupancy, pages.
    pub nvm_occupancy: u64,
    /// Window hit ratio.
    pub hit_ratio: f64,
    /// Window Eq. 1 AMAT, ns/request.
    pub amat_ns: f64,
    /// Window Eq. 2 dynamic APPR, nJ/request.
    pub appr_nj: f64,
}

/// One ledger roll-up (the summary counts; detail pages are ignored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerStat {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Demand accesses observed (warmup included).
    pub accesses: u64,
    /// Distinct pages touched.
    pub pages: u64,
    /// Page faults.
    pub faults: u64,
    /// Promotions (read + write + unattributed).
    pub promotions: u64,
    /// Demotions (fault-fill + promotion-swap).
    pub demotions: u64,
    /// Evictions to disk.
    pub evictions: u64,
    /// Ping-pong round trips.
    pub ping_pongs: u64,
}

/// One `hybridmem-stress-v1` trajectory point.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Source label (usually the file name).
    pub name: String,
    /// Trajectory index parsed from a `BENCH_<n>.json` name, when the
    /// label has one — points sort by it, then by name.
    pub index: Option<u64>,
    /// Whether the point came from a `--quick` run.
    pub quick: bool,
    /// Trace generator seed.
    pub seed: u64,
    /// Accesses per workload.
    pub cap: u64,
    /// End-to-end wall-clock, seconds.
    pub wall_seconds: f64,
    /// Phase totals: `(name, accesses_per_second)`.
    pub phases: Vec<(String, f64)>,
    /// Per-policy batched-replay totals: `(name, accesses_per_second)`.
    pub policies: Vec<(String, f64)>,
}

impl BenchPoint {
    /// All throughput series of this point, namespaced for the
    /// trajectory table (`phase/...`, `policy/...`).
    #[must_use]
    pub fn series(&self) -> Vec<(String, f64)> {
        self.phases
            .iter()
            .map(|(name, rate)| (format!("phase/{name}"), *rate))
            .chain(
                self.policies
                    .iter()
                    .map(|(name, rate)| (format!("policy/{name}"), *rate)),
            )
            .collect()
    }

    /// Two points are comparable when the workload shape matches: same
    /// quick flag, cap, and seed. Mixing full and `--quick` runs in one
    /// trajectory would gate noise, not regressions.
    #[must_use]
    pub fn comparable(&self, other: &Self) -> bool {
        self.quick == other.quick && self.cap == other.cap && self.seed == other.seed
    }
}

/// One histogram row of a metrics snapshot, quantiles included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStat {
    /// Metric name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Exact-within-bucket-bounds quantiles (0 when absent: snapshots
    /// written before the quantile export).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A metrics snapshot reduced to what the tables show.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsStat {
    /// Counters, in the snapshot's (sorted) order.
    pub counters: Vec<(String, u64)>,
    /// Gauges, in the snapshot's (sorted) order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms with quantiles.
    pub histograms: Vec<HistogramStat>,
}

/// One successfully sniffed input.
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// Windowed-metrics JSONL.
    Intervals(Vec<IntervalStat>),
    /// Ledger JSONL (roll-ups only).
    Ledgers(Vec<LedgerStat>),
    /// A `hybridmem-stress-v1` bench point.
    Bench(BenchPoint),
    /// A metrics snapshot (bare, or inside `throughput.json`).
    Metrics(MetricsStat),
    /// A `hybridmem-analyze-v1` report (for round-trip checking).
    Report(Json),
}

/// A loaded input plus the ingest warnings gathered on the way: JSONL
/// lines that were malformed or partial are skipped and reported here
/// (one message each, in file order) instead of failing the whole
/// ingest — a long campaign's telemetry with a torn tail line still
/// analyzes.
#[derive(Debug, Clone, PartialEq)]
pub struct Loaded {
    /// The sniffed input.
    pub input: Input,
    /// One message per skipped JSONL line.
    pub warnings: Vec<String>,
}

/// Sniffs and loads one input file's text.
///
/// # Errors
///
/// Returns a message naming `label` when the text is neither valid JSON
/// nor JSONL, parses but matches no known producer, or (for JSONL)
/// contains no usable line at all. Individually malformed JSONL lines
/// degrade to [`Loaded::warnings`] instead.
pub fn load(label: &str, text: &str) -> Result<Loaded, String> {
    if let Ok(doc) = parse(text) {
        let input = classify_document(label, &doc)
            .ok_or_else(|| format!("{label}: JSON parses but matches no known schema"))??;
        return Ok(Loaded {
            input,
            warnings: Vec::new(),
        });
    }
    load_jsonl(label, text)
}

/// Classifies a single parsed document. `None` = unrecognized;
/// `Some(Err)` = recognized but malformed.
fn classify_document(label: &str, doc: &Json) -> Option<Result<Input, String>> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("hybridmem-stress-v1") => return Some(bench_point(label, doc).map(Input::Bench)),
        Some("hybridmem-analyze-v1") => return Some(Ok(Input::Report(doc.clone()))),
        _ => {}
    }
    if doc.get("histograms").is_some() {
        return Some(metrics_stat(label, doc).map(Input::Metrics));
    }
    if let Some(snapshot) = doc.get("metrics").filter(|m| m.get("histograms").is_some()) {
        return Some(metrics_stat(label, snapshot).map(Input::Metrics));
    }
    if doc.get("interval").is_some() {
        return Some(interval_stat(label, doc).map(|stat| Input::Intervals(vec![stat])));
    }
    if doc.get("summary").is_some() {
        return Some(ledger_stat(label, doc).map(|stat| Input::Ledgers(vec![stat])));
    }
    None
}

/// Loads JSONL: every non-empty line an object, classified per line.
/// Malformed, partial, and unrecognized lines are skipped with a
/// warning; the ingest only fails when no line is usable or the usable
/// lines mix interval and ledger records.
fn load_jsonl(label: &str, text: &str) -> Result<Loaded, String> {
    let mut intervals = Vec::new();
    let mut ledgers = Vec::new();
    let mut warnings = Vec::new();
    for (number, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = match parse(line) {
            Ok(doc) => doc,
            Err(e) => {
                warnings.push(format!("{label}:{}: {e}", number + 1));
                continue;
            }
        };
        if doc.get("interval").is_some() {
            match interval_stat(label, &doc) {
                Ok(stat) => intervals.push(stat),
                Err(e) => warnings.push(format!("{e} (line {})", number + 1)),
            }
        } else if doc.get("summary").is_some() {
            match ledger_stat(label, &doc) {
                Ok(stat) => ledgers.push(stat),
                Err(e) => warnings.push(format!("{e} (line {})", number + 1)),
            }
        } else {
            warnings.push(format!(
                "{label}:{}: line matches no known JSONL schema",
                number + 1
            ));
        }
    }
    let input = match (intervals.is_empty(), ledgers.is_empty()) {
        (false, true) => Input::Intervals(intervals),
        (true, false) => Input::Ledgers(ledgers),
        (false, false) => {
            return Err(format!(
                "{label}: mixes interval and ledger lines; pass them separately"
            ))
        }
        (true, true) => {
            return Err(match warnings.first() {
                Some(first) => format!("{label}: no usable JSON lines ({first})"),
                None => format!("{label}: no JSON lines found"),
            })
        }
    };
    Ok(Loaded { input, warnings })
}

fn str_field(label: &str, doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("{label}: missing string field {key:?}"))
}

fn u64_field(label: &str, doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{label}: missing integer field {key:?}"))
}

fn f64_field(label: &str, doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{label}: missing number field {key:?}"))
}

fn interval_stat(label: &str, doc: &Json) -> Result<IntervalStat, String> {
    let u = |key| u64_field(label, doc, key);
    let f = |key| f64_field(label, doc, key);
    Ok(IntervalStat {
        workload: str_field(label, doc, "workload")?,
        policy: str_field(label, doc, "policy")?,
        interval: u("interval")?,
        accesses: u("accesses")?,
        faults: u("faults")?,
        dram_hits: u("dram_read_hits")?.saturating_add(u("dram_write_hits")?),
        nvm_hits: u("nvm_read_hits")?.saturating_add(u("nvm_write_hits")?),
        migrations_to_dram: u("migrations_to_dram")?,
        migrations_to_nvm: u("migrations_to_nvm")?,
        fills: u("fills_to_dram")?.saturating_add(u("fills_to_nvm")?),
        evictions: u("evictions_to_disk")?,
        dram_occupancy: u("dram_occupancy")?,
        nvm_occupancy: u("nvm_occupancy")?,
        hit_ratio: f("hit_ratio")?,
        amat_ns: f("amat_ns")?,
        appr_nj: f("appr_nj")?,
    })
}

fn ledger_stat(label: &str, doc: &Json) -> Result<LedgerStat, String> {
    let summary = doc
        .get("summary")
        .ok_or_else(|| format!("{label}: missing ledger summary"))?;
    let s = |key| u64_field(label, summary, key);
    Ok(LedgerStat {
        workload: str_field(label, doc, "workload")?,
        policy: str_field(label, doc, "policy")?,
        accesses: u64_field(label, doc, "accesses")?,
        pages: s("pages")?,
        faults: s("faults")?,
        promotions: s("promotions_read")?
            .saturating_add(s("promotions_write")?)
            .saturating_add(s("promotions_unattributed")?),
        demotions: s("demotions_fault")?.saturating_add(s("demotions_swap")?),
        evictions: s("evictions")?,
        ping_pongs: s("ping_pongs")?,
    })
}

/// Parses the `<n>` out of a `BENCH_<n>.json` style label (path
/// prefixes allowed).
#[must_use]
pub fn bench_index(label: &str) -> Option<u64> {
    let file = label.rsplit(['/', '\\']).next().unwrap_or(label);
    file.strip_prefix("BENCH_")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

fn named_rates(label: &str, doc: &Json, key: &str) -> Result<Vec<(String, f64)>, String> {
    doc.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{label}: missing array field {key:?}"))?
        .iter()
        .map(|entry| {
            Ok((
                str_field(label, entry, "name")?,
                f64_field(label, entry, "accesses_per_second")?,
            ))
        })
        .collect()
}

fn bench_point(label: &str, doc: &Json) -> Result<BenchPoint, String> {
    Ok(BenchPoint {
        name: label.to_owned(),
        index: bench_index(label),
        quick: doc
            .get("quick")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("{label}: missing bool field \"quick\""))?,
        seed: u64_field(label, doc, "seed")?,
        cap: u64_field(label, doc, "cap")?,
        wall_seconds: f64_field(label, doc, "wall_seconds")?,
        phases: named_rates(label, doc, "phases")?,
        policies: named_rates(label, doc, "policies")?,
    })
}

fn metrics_stat(label: &str, doc: &Json) -> Result<MetricsStat, String> {
    let object = |key: &str| -> Result<&[(String, Json)], String> {
        doc.get(key)
            .and_then(Json::as_object)
            .ok_or_else(|| format!("{label}: missing object field {key:?}"))
    };
    let counters = object("counters")?
        .iter()
        .map(|(name, value)| {
            value
                .as_u64()
                .map(|v| (name.clone(), v))
                .ok_or_else(|| format!("{label}: counter {name:?} is not an integer"))
        })
        .collect::<Result<_, _>>()?;
    let gauges = object("gauges")?
        .iter()
        .map(|(name, value)| {
            value
                .as_f64()
                .map(|v| (name.clone(), v))
                .ok_or_else(|| format!("{label}: gauge {name:?} is not a number"))
        })
        .collect::<Result<_, _>>()?;
    let histograms = object("histograms")?
        .iter()
        .map(|(name, value)| {
            let u = |key: &str| u64_field(label, value, key);
            // p50/p95/p99 default to 0: snapshots serialized before the
            // quantile export deserialize the same way in serde.
            let q = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
            Ok(HistogramStat {
                name: name.clone(),
                count: u("count")?,
                sum: u("sum")?,
                min: u("min")?,
                max: u("max")?,
                p50: q("p50"),
                p95: q("p95"),
                p99: q("p99"),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(MetricsStat {
        counters,
        gauges,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTERVAL_LINE: &str = r#"{"workload":"bodytrack","policy":"two-lru","interval":0,"start_access":0,"end_access":1000,"accesses":1000,"dram_read_hits":10,"dram_write_hits":5,"nvm_read_hits":700,"nvm_write_hits":200,"faults":85,"migrations_to_dram":3,"migrations_to_nvm":2,"fills_to_dram":0,"fills_to_nvm":85,"evictions_to_disk":80,"dram_occupancy":12,"nvm_occupancy":110,"hit_ratio":0.915,"amat_ns":312.5,"appr_nj":1.25}"#;

    const LEDGER_LINE: &str = r#"{"workload":"bodytrack","policy":"two-lru","accesses":3000,"warmup_accesses":0,"summary":{"pages":128,"faults":200,"promotions_read":4,"promotions_write":6,"promotions_unattributed":1,"demotions_fault":3,"demotions_swap":7,"evictions":150,"resets_read":2,"resets_write":1,"ping_pong_pages":2,"ping_pongs":3,"detailed_pages":64,"pruned_pages":64},"pages":[]}"#;

    fn bench_json(batched: f64) -> String {
        format!(
            r#"{{"schema":"hybridmem-stress-v1","quick":true,"seed":42,"cap":60000,
            "threads":1,"wall_seconds":4.2,"peak_rss_bytes":null,
            "speedup_batched_vs_reference":2.4,"speedup_spill_vs_reference":2.1,
            "workloads":[],
            "phases":[{{"name":"reference","seconds":1.0,"accesses":240000,"accesses_per_second":240000.0}},
                      {{"name":"replay_batched","seconds":0.5,"accesses":240000,"accesses_per_second":{batched}}}],
            "policies":[{{"name":"two-lru","seconds":0.5,"accesses":240000,"accesses_per_second":480000.0}}],
            "trace_cache":{{"hits":1,"misses":4,"evictions":0,"oversize_rejections":0,
            "resident_traces":4,"resident_bytes":100,"spill_hits":4,"spill_misses":4,
            "spill_bytes_read":10,"spill_bytes_written":10}}}}"#
        )
    }

    #[test]
    fn sniffs_interval_jsonl() {
        let text = format!("{INTERVAL_LINE}\n{INTERVAL_LINE}\n");
        let Input::Intervals(stats) = load("m.jsonl", &text).expect("loads").input else {
            panic!("expected intervals");
        };
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].workload, "bodytrack");
        assert_eq!(stats[0].dram_hits, 15);
        assert_eq!(stats[0].nvm_hits, 900);
        assert_eq!(stats[0].fills, 85);
        assert!((stats[0].amat_ns - 312.5).abs() < 1e-12);
    }

    #[test]
    fn sniffs_ledger_jsonl() {
        let Input::Ledgers(stats) = load("l.jsonl", LEDGER_LINE).expect("loads").input else {
            panic!("expected ledgers");
        };
        assert_eq!(stats[0].promotions, 11);
        assert_eq!(stats[0].demotions, 10);
        assert_eq!(stats[0].pages, 128);
    }

    #[test]
    fn sniffs_bench_points_and_indices() {
        let Input::Bench(point) = load("runs/BENCH_8.json", &bench_json(480_000.0))
            .expect("loads")
            .input
        else {
            panic!("expected a bench point");
        };
        assert_eq!(point.index, Some(8));
        assert!(point.quick);
        assert_eq!(point.cap, 60_000);
        assert_eq!(point.series().len(), 3);
        assert_eq!(point.series()[1].0, "phase/replay_batched");
        assert_eq!(bench_index("BENCH_12.json"), Some(12));
        assert_eq!(bench_index("BENCH_x.json"), None);
        assert_eq!(bench_index("throughput.json"), None);
    }

    #[test]
    fn comparability_requires_matching_shape() {
        let Input::Bench(a) = load("BENCH_1.json", &bench_json(1.0)).expect("loads").input else {
            panic!("bench");
        };
        let mut b = a.clone();
        assert!(a.comparable(&b));
        b.cap = 1;
        assert!(!a.comparable(&b));
    }

    #[test]
    fn sniffs_metrics_snapshots_with_and_without_quantiles() {
        let bare = r#"{"counters":{"sim.accesses":100},"gauges":{"load":0.5},
            "histograms":{"lat":{"count":3,"sum":30,"min":5,"max":20,"p50":10,"p95":20,"p99":20,"buckets":[]}}}"#;
        let Input::Metrics(stat) = load("m.json", bare).expect("loads").input else {
            panic!("expected metrics");
        };
        assert_eq!(stat.counters, vec![("sim.accesses".to_owned(), 100)]);
        assert_eq!(stat.histograms[0].p95, 20);

        // Pre-quantile snapshot inside a throughput.json wrapper.
        let wrapped = r#"{"workers":2,"metrics":{"counters":{},"gauges":{},
            "histograms":{"lat":{"count":1,"sum":7,"min":7,"max":7,"buckets":[7]}}}}"#;
        let Input::Metrics(stat) = load("throughput.json", wrapped).expect("loads").input else {
            panic!("expected metrics");
        };
        assert_eq!(stat.histograms[0].p50, 0, "absent quantiles default to 0");
    }

    #[test]
    fn rejects_unknown_and_mixed_inputs() {
        assert!(load("x", "{\"a\":1}").is_err());
        assert!(load("x", "not json at all").is_err());
        let mixed = format!("{INTERVAL_LINE}\n{LEDGER_LINE}\n");
        assert!(load("x", &mixed).unwrap_err().contains("mixes"));
    }

    #[test]
    fn jsonl_degrades_bad_lines_to_warnings() {
        // A torn tail, an unrecognized record, and a partial record are
        // each skipped with a warning; the good lines still load.
        let text = format!(
            "{INTERVAL_LINE}\n{{\"interval\":0}}\n{{\"other\":true}}\nnot json\n{INTERVAL_LINE}\n"
        );
        let loaded = load("m.jsonl", &text).expect("loads");
        let Input::Intervals(stats) = loaded.input else {
            panic!("expected intervals");
        };
        assert_eq!(stats.len(), 2);
        assert_eq!(loaded.warnings.len(), 3);
        assert!(
            loaded.warnings[0].contains("(line 2)"),
            "{:?}",
            loaded.warnings
        );
        assert!(loaded.warnings[1].contains("no known JSONL schema"));
        assert!(loaded.warnings[2].contains("m.jsonl:4"));

        // When nothing is usable the ingest still fails, carrying the
        // first warning for context.
        let err = load("m.jsonl", "not json\n").unwrap_err();
        assert!(err.contains("no usable JSON lines"), "{err}");
    }
}
