//! A minimal JSON value with lexeme-preserving numbers.
//!
//! The analyzer ingests JSON produced by several writers (serde in the
//! simulator crates, hand-rolled emitters elsewhere) and must round-trip
//! its *own* `hybridmem-analyze-v1` reports byte-for-byte (emit → parse →
//! emit is the identity). Binding a number to `f64` at parse time would
//! lose that property for 64-bit counters, so [`Json::Number`] stores the
//! raw lexeme and converts on demand.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a map): the
//! emitter's key order is part of the stable report format.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source lexeme (e.g. `"1.5"`, `"18446744073709551615"`).
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds a number from a `u64` (canonical decimal lexeme).
    #[must_use]
    pub fn u64(value: u64) -> Self {
        Self::Number(value.to_string())
    }

    /// Builds a number from an `f64` using Rust's shortest round-trip
    /// formatting (deterministic across platforms; non-finite values
    /// become `null`, which JSON requires).
    #[must_use]
    pub fn f64(value: f64) -> Self {
        if value.is_finite() {
            Self::Number(format!("{value}"))
        } else {
            Self::Null
        }
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(value: impl Into<String>) -> Self {
        Self::String(value.into())
    }

    /// Object field lookup (first match, `None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `f64`, when it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Number(lexeme) => lexeme.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `u64`, when it is a plain non-negative
    /// integer lexeme (every counter the simulator emits is one).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Number(lexeme) => lexeme.parse().ok(),
            _ => None,
        }
    }

    /// The value as an array slice, when it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, when it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Self::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline — the
    /// canonical `hybridmem-analyze-v1` presentation.
    #[must_use]
    pub fn emit_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(true) => out.push_str("true"),
            Self::Bool(false) => out.push_str("false"),
            Self::Number(lexeme) => out.push_str(lexeme),
            Self::String(s) => write_escaped(out, s),
            Self::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Self::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (index, (key, value)) in fields.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a one-line message with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected {:?} at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: JSON escapes astral chars as
                            // two \uXXXX units.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(code) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(code))
                            };
                            out.push(
                                c.ok_or_else(|| format!("invalid \\u escape at byte {start}"))?,
                            );
                        }
                        other => {
                            return Err(format!(
                                "invalid escape \\{} at byte {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|slice| std::str::from_utf8(slice).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let code = u16::from_str_radix(hex, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |parser: &mut Self| {
            let begin = parser.pos;
            while matches!(parser.peek(), Some(b'0'..=b'9')) {
                parser.pos += 1;
            }
            parser.pos > begin
        };
        if !digits(self) {
            return Err(format!("invalid number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        Ok(Json::Number(lexeme.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": true}, "e": "x\ny"}"#)
            .expect("parses");
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(
            doc.get("b").unwrap().get("d").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(doc.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn numbers_keep_their_lexemes() {
        let doc = parse("[18446744073709551615, 0.30000000000000004]").expect("parses");
        let items = doc.as_array().unwrap();
        assert_eq!(items[0], Json::Number("18446744073709551615".to_owned()));
        assert_eq!(items[0].as_u64(), Some(u64::MAX));
        assert_eq!(items[1].as_f64(), Some(0.300_000_000_000_000_04));
    }

    #[test]
    fn emit_parse_emit_is_the_identity() {
        let report = Json::Object(vec![
            ("schema".to_owned(), Json::str("hybridmem-analyze-v1")),
            ("count".to_owned(), Json::u64(u64::MAX)),
            ("ratio".to_owned(), Json::f64(0.1 + 0.2)),
            ("empty".to_owned(), Json::Array(Vec::new())),
            (
                "cells".to_owned(),
                Json::Array(vec![Json::Object(vec![(
                    "name".to_owned(),
                    Json::str("a \"b\"\n"),
                )])]),
            ),
        ]);
        let text = report.emit_pretty();
        let reparsed = parse(&text).expect("own output parses");
        assert_eq!(reparsed, report, "structural round-trip");
        assert_eq!(reparsed.emit_pretty(), text, "byte round-trip");
    }

    #[test]
    fn surrogate_pairs_and_escapes_decode() {
        let doc = parse(r#""\ud83d\ude00 \u0041\t""#).expect("parses");
        assert_eq!(doc.as_str(), Some("😀 A\t"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\x\"", ""] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Json::f64(f64::NAN), Json::Null);
        assert_eq!(Json::f64(f64::INFINITY), Json::Null);
    }
}
