//! The stable `hybridmem-analyze-v1` report.
//!
//! Both analyzer modes emit the same envelope so CI can gate on one
//! shape:
//!
//! ```json
//! {
//!   "schema": "hybridmem-analyze-v1",
//!   "mode": "diff" | "trajectory",
//!   "regressions": 0,
//!   "clean": true,
//!   ...mode-specific body...
//! }
//! ```
//!
//! The emission is canonical (2-space pretty, insertion-ordered keys,
//! shortest-round-trip floats), so emit → parse → emit is the byte
//! identity — [`round_trips`] checks exactly that, and CI runs it over
//! every report the pipeline writes.

use crate::diff::DiffReport;
use crate::json::{parse, Json};
use crate::trajectory::TrajectoryReport;

/// The report schema identifier.
pub const ANALYZE_SCHEMA: &str = "hybridmem-analyze-v1";

fn envelope(mode: &str, regressions: u64, body: Vec<(String, Json)>) -> Json {
    let mut fields = vec![
        ("schema".to_owned(), Json::str(ANALYZE_SCHEMA)),
        ("mode".to_owned(), Json::str(mode)),
        ("regressions".to_owned(), Json::u64(regressions)),
        ("clean".to_owned(), Json::Bool(regressions == 0)),
    ];
    fields.extend(body);
    Json::Object(fields)
}

/// Renders a diff comparison as `hybridmem-analyze-v1`.
///
/// `ingest_warnings` counts the JSONL lines skipped while loading both
/// inputs (see [`crate::ingest::Loaded`]); it is carried in the report
/// so a gate passing on degraded telemetry is visible after the fact.
#[must_use]
pub fn diff_report(
    a_label: &str,
    b_label: &str,
    report: &DiffReport,
    ingest_warnings: u64,
) -> Json {
    let cells = report
        .cells
        .iter()
        .map(|cell| {
            let metrics = cell
                .metrics
                .iter()
                .map(|m| {
                    Json::Object(vec![
                        ("metric".to_owned(), Json::str(&m.metric)),
                        ("a".to_owned(), Json::f64(m.a)),
                        ("b".to_owned(), Json::f64(m.b)),
                        ("delta".to_owned(), Json::f64(m.delta)),
                        ("relative".to_owned(), Json::f64(m.relative)),
                        ("regressed".to_owned(), Json::Bool(m.regressed)),
                    ])
                })
                .collect();
            Json::Object(vec![
                ("workload".to_owned(), Json::str(&cell.workload)),
                ("policy".to_owned(), Json::str(&cell.policy)),
                ("metrics".to_owned(), Json::Array(metrics)),
            ])
        })
        .collect();
    let labels = |items: &[String]| Json::Array(items.iter().map(Json::str).collect());
    envelope(
        "diff",
        report.regressions,
        vec![
            ("a".to_owned(), Json::str(a_label)),
            ("b".to_owned(), Json::str(b_label)),
            ("threshold".to_owned(), Json::f64(report.threshold)),
            ("cells".to_owned(), Json::Array(cells)),
            ("only_a".to_owned(), labels(&report.only_a)),
            ("only_b".to_owned(), labels(&report.only_b)),
            ("ingest_warnings".to_owned(), Json::u64(ingest_warnings)),
        ],
    )
}

/// Renders a rolled trajectory as `hybridmem-analyze-v1`.
#[must_use]
pub fn trajectory_report(report: &TrajectoryReport) -> Json {
    let points = report
        .points
        .iter()
        .map(|p| {
            Json::Object(vec![
                ("name".to_owned(), Json::str(&p.name)),
                ("index".to_owned(), p.index.map_or(Json::Null, Json::u64)),
                ("quick".to_owned(), Json::Bool(p.quick)),
                ("cap".to_owned(), Json::u64(p.cap)),
                ("seed".to_owned(), Json::u64(p.seed)),
                ("wall_seconds".to_owned(), Json::f64(p.wall_seconds)),
            ])
        })
        .collect();
    let verdicts = report
        .verdicts
        .iter()
        .map(|v| {
            Json::Object(vec![
                ("series".to_owned(), Json::str(&v.series)),
                ("latest".to_owned(), Json::f64(v.latest)),
                ("median_prior".to_owned(), Json::f64(v.median_prior)),
                ("ratio".to_owned(), Json::f64(v.ratio)),
                ("regressed".to_owned(), Json::Bool(v.regressed)),
                ("improved".to_owned(), Json::Bool(v.improved)),
            ])
        })
        .collect();
    envelope(
        "trajectory",
        report.regressions,
        vec![
            ("threshold".to_owned(), Json::f64(report.threshold)),
            (
                "points_total".to_owned(),
                Json::u64(report.points.len() as u64),
            ),
            ("comparable".to_owned(), Json::u64(report.comparable as u64)),
            ("enforceable".to_owned(), Json::Bool(report.enforceable)),
            ("gate_fails".to_owned(), Json::Bool(report.gate_fails())),
            ("points".to_owned(), Json::Array(points)),
            ("series".to_owned(), Json::Array(verdicts)),
        ],
    )
}

/// Verifies that `text` is a `hybridmem-analyze-v1` report whose
/// canonical re-emission reproduces it byte-for-byte.
///
/// # Errors
///
/// Returns a message describing the first divergence: unparseable text,
/// a different schema, or a byte-level mismatch (with its offset).
pub fn round_trips(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some(ANALYZE_SCHEMA) {
        return Err(format!("schema is {schema:?}, expected {ANALYZE_SCHEMA:?}"));
    }
    let reemitted = doc.emit_pretty();
    if reemitted == text {
        return Ok(());
    }
    let offset = reemitted
        .bytes()
        .zip(text.bytes())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| reemitted.len().min(text.len()));
    Err(format!(
        "re-emission diverges from the input at byte {offset}: the file \
         was not written by this analyzer version"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff, profile_intervals};
    use crate::ingest::{BenchPoint, IntervalStat};
    use crate::trajectory::{roll, TrajectoryOptions};

    fn interval(amat: f64) -> IntervalStat {
        IntervalStat {
            workload: "w".to_owned(),
            policy: "two-lru".to_owned(),
            interval: 0,
            accesses: 1000,
            faults: 10,
            dram_hits: 500,
            nvm_hits: 400,
            migrations_to_dram: 3,
            migrations_to_nvm: 1,
            fills: 10,
            evictions: 8,
            dram_occupancy: 5,
            nvm_occupancy: 50,
            hit_ratio: 0.9,
            amat_ns: amat,
            appr_nj: 1.0,
        }
    }

    fn bench(index: u64, rate: f64) -> BenchPoint {
        BenchPoint {
            name: format!("BENCH_{index}.json"),
            index: Some(index),
            quick: true,
            seed: 42,
            cap: 60_000,
            wall_seconds: 4.25,
            phases: vec![("replay_batched".to_owned(), rate)],
            policies: Vec::new(),
        }
    }

    #[test]
    fn diff_reports_round_trip() {
        let a = profile_intervals(&[interval(100.0)]);
        let b = profile_intervals(&[interval(173.0)]);
        let json = diff_report("a.jsonl", "b.jsonl", &diff(&a, &b, 0.05), 2);
        assert_eq!(json.get("mode").and_then(Json::as_str), Some("diff"));
        assert_eq!(json.get("clean"), Some(&Json::Bool(false)));
        assert_eq!(json.get("ingest_warnings").and_then(Json::as_u64), Some(2));
        round_trips(&json.emit_pretty()).expect("byte round-trip");
    }

    #[test]
    fn trajectory_reports_round_trip() {
        let report = roll(
            vec![
                bench(1, 400_000.5),
                bench(2, 410_000.0),
                bench(3, 120_000.0),
            ],
            TrajectoryOptions::default(),
        );
        let json = trajectory_report(&report);
        assert_eq!(json.get("gate_fails"), Some(&Json::Bool(true)));
        assert_eq!(json.get("comparable").and_then(Json::as_u64), Some(3));
        round_trips(&json.emit_pretty()).expect("byte round-trip");
    }

    #[test]
    fn round_trip_rejects_foreign_documents() {
        assert!(round_trips("{\"schema\": \"other\"}\n").is_err());
        assert!(round_trips("nonsense").is_err());
        // Same data, different formatting: parses, but is not canonical.
        let json = trajectory_report(&roll(vec![bench(1, 1.0)], TrajectoryOptions::default()));
        let compact = json.emit_pretty().replace('\n', "");
        assert!(round_trips(&compact).unwrap_err().contains("byte"));
    }
}
