//! Aligned plain-text tables for the human-facing `analyze` output.
//!
//! Every renderer feeds one shared aligner: label columns flush left,
//! value columns flush right, two spaces between columns, a dash rule
//! under the header. Values print as integers when they are whole,
//! with three decimals otherwise, so counter-dominated tables stay
//! narrow.

use crate::diff::DiffReport;
use crate::ingest::MetricsStat;
use crate::postmortem::PostmortemReport;
use crate::trajectory::TrajectoryReport;

/// Formats a value: whole numbers without a fraction, others with three
/// decimals.
#[must_use]
pub fn value(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn percent(relative: f64) -> String {
    format!("{:+.1}%", relative * 100.0)
}

/// Renders rows under a header; the first `labels` columns align left,
/// the rest right.
fn render(header: &[&str], labels: usize, rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(0);
            }
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = |cells: &[String]| {
        let rendered: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let width = widths.get(i).copied().unwrap_or(0);
                if i < labels {
                    format!("{cell:<width$}")
                } else {
                    format!("{cell:>width$}")
                }
            })
            .collect();
        out.push_str(rendered.join("  ").trim_end());
        out.push('\n');
    };
    line(&header.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
    out
}

/// Renders an A-vs-B diff, one row per (cell, metric).
#[must_use]
pub fn diff_table(report: &DiffReport) -> String {
    let mut rows = Vec::new();
    for cell in &report.cells {
        for m in &cell.metrics {
            rows.push(vec![
                cell.workload.clone(),
                cell.policy.clone(),
                m.metric.clone(),
                value(m.a),
                value(m.b),
                percent(m.relative),
                if m.regressed { "REGRESSED" } else { "" }.to_owned(),
            ]);
        }
    }
    let mut out = render(
        &["workload", "policy", "metric", "a", "b", "rel", "verdict"],
        3,
        &rows,
    );
    for label in &report.only_a {
        out.push_str(&format!("only in A: {label}\n"));
    }
    for label in &report.only_b {
        out.push_str(&format!("only in B: {label}\n"));
    }
    out.push_str(&format!(
        "{} regressed metric(s) at threshold {}\n",
        report.regressions,
        percent(report.threshold)
    ));
    out
}

/// Renders the newest point's trajectory verdicts, one row per series.
#[must_use]
pub fn trajectory_table(report: &TrajectoryReport) -> String {
    let rows: Vec<Vec<String>> = report
        .verdicts
        .iter()
        .map(|v| {
            vec![
                v.series.clone(),
                value(v.latest),
                value(v.median_prior),
                format!("{:.2}x", v.ratio),
                if v.regressed {
                    "REGRESSED"
                } else if v.improved {
                    "improved"
                } else {
                    "ok"
                }
                .to_owned(),
            ]
        })
        .collect();
    let mut out = render(
        &["series", "latest/s", "median prior/s", "ratio", "verdict"],
        1,
        &rows,
    );
    out.push_str(&format!(
        "{} point(s), {} comparable; gate {}\n",
        report.points.len(),
        report.comparable,
        if !report.enforceable {
            "advisory (short history)"
        } else if report.regressions > 0 {
            "FAILED"
        } else {
            "passed"
        }
    ));
    out
}

/// Renders a metrics snapshot: histogram quantiles first, then counters
/// and gauges.
#[must_use]
pub fn metrics_table(stat: &MetricsStat) -> String {
    let histogram_rows: Vec<Vec<String>> = stat
        .histograms
        .iter()
        .map(|h| {
            vec![
                h.name.clone(),
                h.count.to_string(),
                h.min.to_string(),
                h.p50.to_string(),
                h.p95.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]
        })
        .collect();
    let mut out = render(
        &["histogram", "count", "min", "p50", "p95", "p99", "max"],
        1,
        &histogram_rows,
    );
    let scalar_rows: Vec<Vec<String>> = stat
        .counters
        .iter()
        .map(|(name, v)| vec![name.clone(), v.to_string()])
        .chain(
            stat.gauges
                .iter()
                .map(|(name, v)| vec![name.clone(), value(*v)]),
        )
        .collect();
    if !scalar_rows.is_empty() {
        out.push('\n');
        out.push_str(&render(&["scalar", "value"], 1, &scalar_rows));
    }
    out
}

/// Renders a postmortem correlation: one block per flight-dumped cell
/// (a preamble line, then its signal timeline), followed by warnings.
#[must_use]
pub fn postmortem_table(report: &PostmortemReport) -> String {
    let mut out = String::new();
    for cell in &report.cells {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "cell {}/{} — trigger {}, final access {}, {} accesses, {} retried attempt(s)\n",
            cell.workload,
            cell.policy,
            cell.trigger,
            cell.final_access,
            cell.accesses,
            cell.retries,
        ));
        if let Some(error) = &cell.error {
            out.push_str(&format!("  error: {error}\n"));
        }
        let rows: Vec<Vec<String>> = cell
            .signals
            .iter()
            .map(|s| {
                vec![
                    s.source.clone(),
                    s.access.map_or_else(|| "-".to_owned(), |a| a.to_string()),
                    s.detail.clone(),
                ]
            })
            .collect();
        out.push_str(&render(&["source", "access", "detail"], 3, &rows));
    }
    for warning in &report.warnings {
        out.push_str(&format!("warning: {warning}\n"));
    }
    out.push_str(&format!(
        "{} flight cell(s), {} triggered; sources: {}\n",
        report.cells.len(),
        report.triggered_cells,
        report.sources.join(", ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff, profile_intervals};
    use crate::ingest::{HistogramStat, IntervalStat};
    use crate::trajectory::{roll, TrajectoryOptions};

    #[test]
    fn values_print_whole_or_three_decimals() {
        assert_eq!(value(4.0), "4");
        assert_eq!(value(0.915), "0.915");
        assert_eq!(value(312.5), "312.500");
        assert_eq!(value(-3.0), "-3");
    }

    #[test]
    fn columns_align_and_trailing_space_is_trimmed() {
        let out = render(
            &["name", "v"],
            1,
            &[
                vec!["a".to_owned(), "1".to_owned()],
                vec!["longer".to_owned(), "22".to_owned()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "name     v");
        assert_eq!(lines[1], "------  --");
        assert_eq!(lines[2], "a        1");
        assert_eq!(lines[3], "longer  22");
        assert!(out.lines().all(|l| l == l.trim_end()));
    }

    #[test]
    fn diff_table_marks_regressions_and_strays() {
        fn interval(policy: &str, amat: f64) -> IntervalStat {
            IntervalStat {
                workload: "w".to_owned(),
                policy: policy.to_owned(),
                interval: 0,
                accesses: 1000,
                faults: 10,
                dram_hits: 500,
                nvm_hits: 400,
                migrations_to_dram: 3,
                migrations_to_nvm: 1,
                fills: 10,
                evictions: 8,
                dram_occupancy: 5,
                nvm_occupancy: 50,
                hit_ratio: 0.9,
                amat_ns: amat,
                appr_nj: 1.0,
            }
        }
        let a = profile_intervals(&[interval("two-lru", 100.0), interval("clock-dwf", 100.0)]);
        let b = profile_intervals(&[interval("two-lru", 150.0)]);
        let out = diff_table(&diff(&a, &b, 0.05));
        assert!(out.contains("REGRESSED"));
        assert!(out.contains("+50.0%"));
        assert!(out.contains("only in A: w/clock-dwf"));
        assert!(out.contains("1 regressed metric(s)"));
    }

    #[test]
    fn trajectory_table_reports_the_gate_state() {
        let point = |index: u64, rate: f64| crate::ingest::BenchPoint {
            name: format!("BENCH_{index}.json"),
            index: Some(index),
            quick: true,
            seed: 42,
            cap: 60_000,
            wall_seconds: 4.0,
            phases: vec![("replay_batched".to_owned(), rate)],
            policies: Vec::new(),
        };
        let short = roll(vec![point(1, 100.0)], TrajectoryOptions::default());
        assert!(trajectory_table(&short).contains("advisory"));
        let failed = roll(
            vec![point(1, 400.0), point(2, 400.0), point(3, 100.0)],
            TrajectoryOptions::default(),
        );
        assert!(trajectory_table(&failed).contains("gate FAILED"));
    }

    #[test]
    fn postmortem_table_shows_cells_signals_and_warnings() {
        let report = PostmortemReport {
            sources: vec!["flight".to_owned(), "health".to_owned()],
            triggered_cells: 1,
            cells: vec![crate::postmortem::CellTimeline {
                workload: "w.trace".to_owned(),
                policy: "two-lru".to_owned(),
                trigger: "panic".to_owned(),
                error: Some("injected fault".to_owned()),
                retries: 2,
                accesses: 500,
                final_access: 499,
                events_dropped: 436,
                signals: vec![
                    crate::postmortem::Signal {
                        source: "flight".to_owned(),
                        access: Some(499),
                        detail: "last recorded event: page 9 write served from dram".to_owned(),
                    },
                    crate::postmortem::Signal {
                        source: "health".to_owned(),
                        access: None,
                        detail: "quarantined after 2 retries (panic): injected fault".to_owned(),
                    },
                ],
                correlated_signals: 1,
            }],
            warnings: vec!["metrics line 2: unparseable".to_owned()],
        };
        let out = postmortem_table(&report);
        assert!(out.contains("cell w.trace/two-lru — trigger panic, final access 499"));
        assert!(out.contains("error: injected fault"));
        assert!(out.contains("quarantined after 2 retries"));
        assert!(out.contains("warning: metrics line 2"));
        assert!(out.contains("1 flight cell(s), 1 triggered; sources: flight, health"));
        assert!(out.lines().all(|l| l == l.trim_end()));
    }

    #[test]
    fn metrics_table_shows_quantiles_and_scalars() {
        let stat = MetricsStat {
            counters: vec![("sim.accesses".to_owned(), 100)],
            gauges: vec![("load".to_owned(), 0.5)],
            histograms: vec![HistogramStat {
                name: "latency".to_owned(),
                count: 3,
                sum: 30,
                min: 5,
                max: 20,
                p50: 10,
                p95: 20,
                p99: 20,
            }],
        };
        let out = metrics_table(&stat);
        assert!(out.contains("p95"));
        assert!(out.contains("latency"));
        assert!(out.contains("sim.accesses"));
        assert!(out.contains("0.5"));
    }
}
