//! Memory-access vocabulary: request kinds and trace records.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{page_of, Address, CoreId, PageId};

/// The direction of a memory request.
///
/// NVM technologies are strongly asymmetric between reads and writes in both
/// latency and energy (Table IV: PCM reads 100 ns / 6.4 nJ, writes
/// 350 ns / 32 nJ), so every layer of the simulator carries the request kind.
///
/// # Examples
///
/// ```
/// use hybridmem_types::AccessKind;
///
/// assert!(AccessKind::Write.is_write());
/// assert_eq!(AccessKind::Read.flipped(), AccessKind::Write);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AccessKind {
    /// A load from memory.
    Read,
    /// A store to memory.
    Write,
}

impl AccessKind {
    /// Returns true for [`AccessKind::Read`].
    #[must_use]
    pub const fn is_read(self) -> bool {
        matches!(self, Self::Read)
    }

    /// Returns true for [`AccessKind::Write`].
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, Self::Write)
    }

    /// Returns the opposite kind.
    #[must_use]
    pub const fn flipped(self) -> Self {
        match self {
            Self::Read => Self::Write,
            Self::Write => Self::Read,
        }
    }

    /// All kinds, in a stable order (reads first).
    #[must_use]
    pub const fn all() -> [Self; 2] {
        [Self::Read, Self::Write]
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Read => f.write_str("read"),
            Self::Write => f.write_str("write"),
        }
    }
}

/// One CPU-level memory access, as produced by the trace generator and
/// consumed by the cache simulator.
///
/// # Examples
///
/// ```
/// use hybridmem_types::{Access, AccessKind, Address, CoreId};
///
/// let a = Access::new(Address::new(64), AccessKind::Read, CoreId::new(1));
/// assert_eq!(a.page().value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Access {
    /// Byte address touched by the request.
    pub address: Address,
    /// Load or store.
    pub kind: AccessKind,
    /// Core issuing the request (selects the private L1 in the cache sim).
    pub core: CoreId,
}

impl Access {
    /// Creates an access record.
    #[must_use]
    pub const fn new(address: Address, kind: AccessKind, core: CoreId) -> Self {
        Self {
            address,
            kind,
            core,
        }
    }

    /// Convenience constructor for a read.
    #[must_use]
    pub const fn read(address: Address, core: CoreId) -> Self {
        Self::new(address, AccessKind::Read, core)
    }

    /// Convenience constructor for a write.
    #[must_use]
    pub const fn write(address: Address, core: CoreId) -> Self {
        Self::new(address, AccessKind::Write, core)
    }

    /// Returns the page this access falls in.
    #[must_use]
    pub const fn page(self) -> PageId {
        page_of(self.address)
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} @{}", self.core, self.kind, self.address)
    }
}

/// One page-granular main-memory access, as seen by the OS-level migration
/// policies after cache filtering.
///
/// This is the unit Algorithm 1 of the paper operates on: "in case of
/// arriving a request", where the request names a page and a direction.
///
/// # Examples
///
/// ```
/// use hybridmem_types::{AccessKind, PageAccess, PageId};
///
/// let pa = PageAccess::write(PageId::new(9));
/// assert!(pa.kind.is_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageAccess {
    /// Page being requested.
    pub page: PageId,
    /// Load or store.
    pub kind: AccessKind,
}

impl PageAccess {
    /// Creates a page access record.
    #[must_use]
    pub const fn new(page: PageId, kind: AccessKind) -> Self {
        Self { page, kind }
    }

    /// Convenience constructor for a page read.
    #[must_use]
    pub const fn read(page: PageId) -> Self {
        Self::new(page, AccessKind::Read)
    }

    /// Convenience constructor for a page write.
    #[must_use]
    pub const fn write(page: PageId) -> Self {
        Self::new(page, AccessKind::Write)
    }
}

impl From<Access> for PageAccess {
    fn from(access: Access) -> Self {
        Self::new(access.page(), access.kind)
    }
}

impl fmt::Display for PageAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn kind_predicates_are_exclusive() {
        for kind in AccessKind::all() {
            assert_ne!(kind.is_read(), kind.is_write());
            assert_eq!(kind.flipped().flipped(), kind);
        }
    }

    #[test]
    fn access_page_math() {
        let a = Access::read(Address::new(5 * PAGE_SIZE as u64 + 7), CoreId::new(0));
        assert_eq!(a.page(), PageId::new(5));
        let pa = PageAccess::from(a);
        assert_eq!(pa.page, PageId::new(5));
        assert!(pa.kind.is_read());
    }

    #[test]
    fn constructors_set_kind() {
        assert!(Access::write(Address::new(0), CoreId::new(0))
            .kind
            .is_write());
        assert!(Access::read(Address::new(0), CoreId::new(0)).kind.is_read());
        assert!(PageAccess::write(PageId::new(1)).kind.is_write());
        assert!(PageAccess::read(PageId::new(1)).kind.is_read());
    }

    #[test]
    fn display_is_nonempty_and_informative() {
        let a = Access::write(Address::new(4096), CoreId::new(2));
        let s = format!("{a}");
        assert!(s.contains("core2") && s.contains("write") && s.contains("0x1000"));
        assert_eq!(
            format!("{}", PageAccess::read(PageId::new(3))),
            "read page#3"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let a = Access::write(Address::new(128), CoreId::new(1));
        let json = serde_json::to_string(&a).unwrap();
        let back: Access = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
        assert!(json.contains("\"write\""));
    }
}
