//! Identifier newtypes: byte addresses, page numbers, and CPU cores.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A byte address in the simulated physical address space.
///
/// Addresses are what trace generators emit and what the cache simulator
/// consumes; page-level components work with [`PageId`] instead (see
/// [`crate::page_of`]).
///
/// # Examples
///
/// ```
/// use hybridmem_types::Address;
///
/// let a = Address::new(0x1000);
/// assert_eq!(a.value(), 0x1000);
/// assert_eq!(format!("{a}"), "0x1000");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte offset.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// Returns the raw byte offset.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`, saturating at `u64::MAX`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hybridmem_types::Address;
    ///
    /// assert_eq!(Address::new(8).offset(8), Address::new(16));
    /// ```
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0.saturating_add(bytes))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

impl From<Address> for u64 {
    fn from(value: Address) -> Self {
        value.0
    }
}

/// A virtual page number: a byte address divided by [`crate::PAGE_SIZE`].
///
/// The OS-level migration policies in this project manage memory at page
/// granularity, so `PageId` is the key used by LRU queues, clock rings,
/// page tables, and endurance counters.
///
/// # Examples
///
/// ```
/// use hybridmem_types::{page_of, Address, PageId, PAGE_SIZE};
///
/// assert_eq!(page_of(Address::new(3 * PAGE_SIZE as u64)), PageId::new(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from a raw page number.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// Returns the raw page number.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this page.
    ///
    /// # Examples
    ///
    /// ```
    /// use hybridmem_types::{Address, PageId, PAGE_SIZE};
    ///
    /// assert_eq!(PageId::new(2).base_address(), Address::new(2 * PAGE_SIZE as u64));
    /// ```
    #[must_use]
    pub const fn base_address(self) -> Address {
        Address::new(self.0 * crate::PAGE_SIZE as u64)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

impl From<u64> for PageId {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

impl From<PageId> for u64 {
    fn from(value: PageId) -> Self {
        value.0
    }
}

/// A CPU core identifier in the simulated multi-core system.
///
/// The DATE 2016 evaluation uses a quad-core configuration (Table II); the
/// cache simulator keeps one private L1 pair per core, indexed by `CoreId`.
///
/// # Examples
///
/// ```
/// use hybridmem_types::CoreId;
///
/// let core = CoreId::new(3);
/// assert_eq!(core.index(), 3);
/// assert_eq!(format!("{core}"), "core3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core id.
    #[must_use]
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// Returns the zero-based core index.
    #[must_use]
    pub const fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(value: u16) -> Self {
        Self(value)
    }
}

impl From<CoreId> for u16 {
    fn from(value: CoreId) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_roundtrip_and_formatting() {
        let a = Address::new(4096);
        assert_eq!(u64::from(a), 4096);
        assert_eq!(Address::from(4096u64), a);
        assert_eq!(format!("{a:x}"), "1000");
        assert_eq!(format!("{a:X}"), "1000");
        assert_eq!(format!("{a}"), "0x1000");
    }

    #[test]
    fn address_offset_saturates() {
        assert_eq!(Address::new(u64::MAX).offset(10), Address::new(u64::MAX));
        assert_eq!(Address::new(16).offset(48), Address::new(64));
    }

    #[test]
    fn page_id_base_address_is_page_aligned() {
        let p = PageId::new(7);
        assert_eq!(p.base_address().value() % crate::PAGE_SIZE as u64, 0);
        assert_eq!(p.base_address().value(), 7 * crate::PAGE_SIZE as u64);
    }

    #[test]
    fn page_id_ordering_follows_value() {
        assert!(PageId::new(1) < PageId::new(2));
        assert_eq!(PageId::new(5).value(), 5);
    }

    #[test]
    fn core_id_display_and_index() {
        assert_eq!(CoreId::new(0).index(), 0);
        assert_eq!(format!("{}", CoreId::new(2)), "core2");
        assert_eq!(u16::from(CoreId::from(9u16)), 9);
    }

    #[test]
    fn ids_serialize_transparently() {
        assert_eq!(serde_json::to_string(&PageId::new(3)).unwrap(), "3");
        assert_eq!(serde_json::to_string(&Address::new(10)).unwrap(), "10");
        assert_eq!(serde_json::to_string(&CoreId::new(1)).unwrap(), "1");
        let p: PageId = serde_json::from_str("42").unwrap();
        assert_eq!(p, PageId::new(42));
    }
}
