//! Physical-quantity newtypes for latency and energy.
//!
//! The paper's models work in nanoseconds (Table IV latencies) and
//! nanojoules (Table IV dynamic energies); these newtypes keep the two
//! dimensions from being mixed while supporting the arithmetic the models
//! need (sums, scaling by probabilities and by `PageFactor`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw value.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN.
            #[must_use]
            pub fn new(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " cannot be NaN"));
                Self(value)
            }

            /// Returns the raw value.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns true when the value is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns the ratio `self / other` as a dimensionless number.
            ///
            /// This is how normalized figures (e.g. "AMAT normalized to
            /// DRAM-only") are computed.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("use hybridmem_types::", stringify!($name), ";")]
            #[doc = concat!("let a = ", stringify!($name), "::new(10.0);")]
            #[doc = concat!("let b = ", stringify!($name), "::new(4.0);")]
            /// assert!((a.ratio_to(b) - 2.5).abs() < 1e-12);
            /// ```
            #[must_use]
            pub fn ratio_to(self, other: Self) -> f64 {
                self.0 / other.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.4} ", $unit), self.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self::new(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}

quantity!(
    /// A latency or duration in nanoseconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use hybridmem_types::Nanoseconds;
    ///
    /// let dram_read = Nanoseconds::new(50.0);
    /// let nvm_write = Nanoseconds::new(350.0);
    /// assert_eq!((dram_read + nvm_write).value(), 400.0);
    /// assert_eq!((dram_read * 2.0).value(), 100.0);
    /// ```
    Nanoseconds,
    "ns"
);

quantity!(
    /// An energy in nanojoules.
    ///
    /// The paper's Table I labels per-access power values with "ηj"
    /// (nanojoule energy per request); APPR (Eq. 2) is therefore an energy
    /// per request, which we model with this type.
    ///
    /// # Examples
    ///
    /// ```
    /// use hybridmem_types::Nanojoules;
    ///
    /// let read = Nanojoules::new(6.4);
    /// let write = Nanojoules::new(32.0);
    /// assert!(((read + write).value() - 38.4).abs() < 1e-12);
    /// ```
    Nanojoules,
    "nJ"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_constants() {
        assert!(Nanoseconds::ZERO.is_zero());
        let a = Nanoseconds::new(100.0);
        let b = Nanoseconds::new(50.0);
        assert_eq!((a - b).value(), 50.0);
        assert_eq!((a / 4.0).value(), 25.0);
        assert_eq!((0.5 * a).value(), 50.0);
        let mut c = a;
        c += b;
        assert_eq!(c.value(), 150.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Nanojoules = (1..=4).map(|i| Nanojoules::new(f64::from(i))).sum();
        assert_eq!(total.value(), 10.0);
    }

    #[test]
    fn ratio_to_gives_normalized_value() {
        let hybrid = Nanojoules::new(3.0);
        let dram_only = Nanojoules::new(6.0);
        assert_eq!(hybrid.ratio_to(dram_only), 0.5);
    }

    #[test]
    #[should_panic(expected = "cannot be NaN")]
    fn nan_rejected() {
        let _ = Nanoseconds::new(f64::NAN);
    }

    #[test]
    fn conversions_roundtrip() {
        let q = Nanojoules::from(3.25);
        assert_eq!(f64::from(q), 3.25);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Nanoseconds::new(50.0)), "50.0000 ns");
        assert_eq!(format!("{}", Nanojoules::new(6.4)), "6.4000 nJ");
    }

    #[test]
    fn serde_transparent() {
        assert_eq!(
            serde_json::to_string(&Nanoseconds::new(1.5)).unwrap(),
            "1.5"
        );
        let q: Nanojoules = serde_json::from_str("2.25").unwrap();
        assert_eq!(q.value(), 2.25);
    }
}
