//! Memory-tier vocabulary: module kinds and page residency.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the two main-memory modules in the hybrid architecture.
///
/// The paper assumes "separate memory modules for DRAM and NVM that
/// communicate through Direct Memory Access (DMA)" (Section II), at the same
/// level of the memory hierarchy.
///
/// # Examples
///
/// ```
/// use hybridmem_types::MemoryKind;
///
/// assert_eq!(MemoryKind::Dram.other(), MemoryKind::Nvm);
/// assert_eq!(format!("{}", MemoryKind::Nvm), "NVM");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum MemoryKind {
    /// The DRAM module: fast, symmetric, high static (refresh) power.
    Dram,
    /// The NVM (PCM) module: slower asymmetric access, negligible static
    /// power, limited write endurance.
    Nvm,
}

impl MemoryKind {
    /// Returns the other module — the migration target of this one.
    #[must_use]
    pub const fn other(self) -> Self {
        match self {
            Self::Dram => Self::Nvm,
            Self::Nvm => Self::Dram,
        }
    }

    /// Both kinds, DRAM first (the search order of Algorithm 1).
    #[must_use]
    pub const fn all() -> [Self; 2] {
        [Self::Dram, Self::Nvm]
    }
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Dram => f.write_str("DRAM"),
            Self::Nvm => f.write_str("NVM"),
        }
    }
}

/// Where a page currently lives.
///
/// A page is resident in exactly one place at any time; the simulator's
/// page table maintains this as an invariant (checked by property tests).
///
/// # Examples
///
/// ```
/// use hybridmem_types::{MemoryKind, Residency};
///
/// let r = Residency::InMemory(MemoryKind::Dram);
/// assert!(r.is_resident());
/// assert_eq!(r.memory(), Some(MemoryKind::Dram));
/// assert!(!Residency::OnDisk.is_resident());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Residency {
    /// The page is resident in the given main-memory module.
    InMemory(MemoryKind),
    /// The page has been evicted to (or never left) secondary storage.
    OnDisk,
}

impl Residency {
    /// Returns true when the page is in either memory module.
    #[must_use]
    pub const fn is_resident(self) -> bool {
        matches!(self, Self::InMemory(_))
    }

    /// Returns the memory module holding the page, if resident.
    #[must_use]
    pub const fn memory(self) -> Option<MemoryKind> {
        match self {
            Self::InMemory(kind) => Some(kind),
            Self::OnDisk => None,
        }
    }
}

impl From<MemoryKind> for Residency {
    fn from(kind: MemoryKind) -> Self {
        Self::InMemory(kind)
    }
}

impl fmt::Display for Residency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InMemory(kind) => write!(f, "in {kind}"),
            Self::OnDisk => f.write_str("on disk"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_an_involution() {
        for kind in MemoryKind::all() {
            assert_eq!(kind.other().other(), kind);
            assert_ne!(kind.other(), kind);
        }
    }

    #[test]
    fn residency_queries() {
        assert!(Residency::InMemory(MemoryKind::Nvm).is_resident());
        assert_eq!(
            Residency::InMemory(MemoryKind::Nvm).memory(),
            Some(MemoryKind::Nvm)
        );
        assert_eq!(Residency::OnDisk.memory(), None);
        assert_eq!(
            Residency::from(MemoryKind::Dram),
            Residency::InMemory(MemoryKind::Dram)
        );
    }

    #[test]
    fn display_strings() {
        assert_eq!(format!("{}", MemoryKind::Dram), "DRAM");
        assert_eq!(
            format!("{}", Residency::InMemory(MemoryKind::Nvm)),
            "in NVM"
        );
        assert_eq!(format!("{}", Residency::OnDisk), "on disk");
    }

    #[test]
    fn serde_uses_snake_case() {
        assert_eq!(
            serde_json::to_string(&MemoryKind::Dram).unwrap(),
            "\"dram\""
        );
        let r: Residency = serde_json::from_str("{\"in_memory\":\"nvm\"}").unwrap();
        assert_eq!(r, Residency::InMemory(MemoryKind::Nvm));
    }
}
