//! A small, fast, non-cryptographic hasher for hot-path maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which the simulator's per-access bookkeeping structures
//! do not need: keys are [`PageId`](crate::PageId)-like integers under the
//! process's own control, and the maps live entirely inside one
//! simulation. This module provides an FxHash-style multiply-rotate hasher
//! (the scheme used by the Firefox and rustc internals) that hashes a
//! `u64` key in a couple of arithmetic instructions instead of a SipHash
//! round, together with map/set type aliases.
//!
//! The hash is deterministic across processes and platforms for the same
//! byte stream, which also makes it suitable for stable fingerprints (see
//! `hybridmem-core`'s trace cache).
//!
//! # Examples
//!
//! ```
//! use hybridmem_types::{FxHashMap, PageId};
//!
//! let mut counters: FxHashMap<PageId, u64> = FxHashMap::default();
//! *counters.entry(PageId::new(7)).or_insert(0) += 1;
//! assert_eq!(counters[&PageId::new(7)], 1);
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash scheme (a 64-bit prime close to
/// 2⁶⁴/φ, chosen for good bit diffusion under wrapping multiplication).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// An FxHash-style streaming hasher: `state = (state <<< 5 ^ word) * SEED`
/// per ingested word.
///
/// Not cryptographic and not DoS-resistant; use only for in-process maps
/// over trusted keys and for stable fingerprints.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" hash differently.
            self.add_word(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_word(u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add_word(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_word(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_word(value);
    }

    #[inline]
    fn write_u128(&mut self, value: u128) {
        #[allow(clippy::cast_possible_truncation)]
        {
            self.add_word(value as u64);
            self.add_word((value >> 64) as u64);
        }
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_word(value as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s (stateless, so every
/// map built from it hashes identically).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Drop-in replacement for hot-path maps
/// keyed by small trusted values.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>; // xtask:allow(default_hasher)

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>; // xtask:allow(default_hasher)

/// Hashes one `Hash` value to a stable `u64` fingerprint with [`FxHasher`].
///
/// Stable across processes and platforms for the same logical value (the
/// hasher is unkeyed and all words are ingested little-endian).
#[must_use]
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(fx_hash_one(&12_345u64), fx_hash_one(&12_345u64));
        assert_eq!(fx_hash_one(&"hello"), fx_hash_one(&"hello"));
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
    }

    #[test]
    fn trailing_bytes_are_significant() {
        assert_ne!(fx_hash_one(&[1u8, 2]), fx_hash_one(&[1u8, 2, 0]));
        assert_ne!(fx_hash_one(&"ab"), fx_hash_one(&"ab\0"));
    }

    #[test]
    fn maps_and_sets_work() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));

        let mut set: FxHashSet<crate::PageId> = FxHashSet::default();
        assert!(set.insert(crate::PageId::new(9)));
        assert!(!set.insert(crate::PageId::new(9)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn distributes_sequential_keys() {
        // Sequential page ids must not collapse into few buckets: check
        // that the low bits (what a power-of-two-capacity table uses)
        // spread out.
        let mut low_bits = FxHashSet::default();
        for page in 0..256u64 {
            low_bits.insert(fx_hash_one(&page) & 0xff);
        }
        assert!(low_bits.len() > 128, "only {} distinct", low_bits.len());
    }
}
