//! The shared error type for fallible `hybridmem` constructors.

use std::fmt;

/// Convenience alias for results carrying [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by `hybridmem` configuration and parsing.
///
/// # Examples
///
/// ```
/// use hybridmem_types::Error;
///
/// let err = Error::invalid_config("dram_fraction must be in (0, 1]");
/// assert!(err.to_string().contains("dram_fraction"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value was out of its valid domain.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A trace record could not be parsed.
    ParseTrace {
        /// Line or record number (1-based) where parsing failed.
        record: u64,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A simulation was driven with an input it cannot accept
    /// (e.g. an access to a page outside the configured address space).
    InvalidInput {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl Error {
    /// Creates an [`Error::InvalidConfig`].
    #[must_use]
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        Self::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Creates an [`Error::ParseTrace`].
    #[must_use]
    pub fn parse_trace(record: u64, reason: impl Into<String>) -> Self {
        Self::ParseTrace {
            record,
            reason: reason.into(),
        }
    }

    /// Creates an [`Error::InvalidInput`].
    #[must_use]
    pub fn invalid_input(reason: impl Into<String>) -> Self {
        Self::InvalidInput {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::ParseTrace { record, reason } => {
                write!(f, "trace parse error at record {record}: {reason}")
            }
            Self::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = Error::invalid_config("capacity must be non-zero");
        assert_eq!(
            e.to_string(),
            "invalid configuration: capacity must be non-zero"
        );
        let e = Error::parse_trace(12, "expected R or W");
        assert_eq!(
            e.to_string(),
            "trace parse error at record 12: expected R or W"
        );
        let e = Error::invalid_input("page beyond footprint");
        assert_eq!(e.to_string(), "invalid input: page beyond footprint");
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }
}
