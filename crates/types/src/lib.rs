//! Core vocabulary types shared by every `hybridmem` crate.
//!
//! This crate defines the small, dependency-light building blocks of the
//! hybrid DRAM–NVM memory simulator that reproduces *"An Operating System
//! Level Data Migration Scheme in Hybrid DRAM-NVM Memory Architecture"*
//! (Salkhordeh & Asadi, DATE 2016):
//!
//! * identifier newtypes — [`Address`], [`PageId`], [`CoreId`] — that keep
//!   byte addresses, page numbers, and CPU cores statically distinct;
//! * the memory-access vocabulary — [`AccessKind`], [`Access`],
//!   [`PageAccess`] — used by trace generators, the cache simulator, and the
//!   page-migration policies;
//! * the memory-tier vocabulary — [`MemoryKind`], [`Residency`] — naming the
//!   DRAM and NVM modules and where a page currently lives;
//! * physical-quantity newtypes — [`Nanoseconds`], [`Nanojoules`] — so
//!   latency and energy cannot be accidentally mixed;
//! * geometry constants and helpers — [`PAGE_SIZE`], [`page_of`] — for the
//!   4 KB pages the paper assumes;
//! * the shared [`Error`] type returned by fallible constructors.
//!
//! # Examples
//!
//! ```
//! use hybridmem_types::{Access, AccessKind, Address, CoreId, page_of, PAGE_SIZE};
//!
//! let access = Access::new(
//!     Address::new(2 * PAGE_SIZE as u64 + 16),
//!     AccessKind::Write,
//!     CoreId::new(0),
//! );
//! assert_eq!(page_of(access.address).value(), 2);
//! assert!(access.kind.is_write());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod error;
mod hash;
mod ids;
mod memory;
mod quantity;
mod sizes;

pub use access::{Access, AccessKind, PageAccess};
pub use error::{Error, Result};
pub use hash::{fx_hash_one, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{Address, CoreId, PageId};
pub use memory::{MemoryKind, Residency};
pub use quantity::{Nanojoules, Nanoseconds};
pub use sizes::{page_of, PageCount, ACCESS_GRANULARITY, PAGE_FACTOR, PAGE_SIZE};
