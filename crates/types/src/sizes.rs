//! Geometry constants and page-math helpers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use crate::{Address, PageId};

/// Size of a data page in bytes.
///
/// The paper assumes 4 KB pages (Section II-A): "The granularity of the
/// moves between disk and memory modules and between two memories is a data
/// page which is typically 4KB or 8KB. In this paper, we assume 4KB".
pub const PAGE_SIZE: usize = 4096;

/// Granularity of a single CPU access to memory, in bytes.
///
/// The paper states CPU-visible accesses are "typically 4 up to 16B";
/// we use 8 B (one 64-bit bus word), the midpoint.
pub const ACCESS_GRANULARITY: usize = 8;

/// `PageFactor` from Table I: the number of memory accesses needed to move
/// one data page, i.e. [`PAGE_SIZE`] / [`ACCESS_GRANULARITY`] = 512.
///
/// Both the performance model (Eq. 1) and the power model (Eq. 2) multiply
/// migration probabilities by this coefficient, which is what makes page
/// migrations roughly three orders of magnitude more expensive than single
/// requests — the central observation of the paper.
pub const PAGE_FACTOR: u64 = (PAGE_SIZE / ACCESS_GRANULARITY) as u64;

/// Returns the page containing a byte address.
///
/// # Examples
///
/// ```
/// use hybridmem_types::{page_of, Address, PageId, PAGE_SIZE};
///
/// assert_eq!(page_of(Address::new(0)), PageId::new(0));
/// assert_eq!(page_of(Address::new(PAGE_SIZE as u64 - 1)), PageId::new(0));
/// assert_eq!(page_of(Address::new(PAGE_SIZE as u64)), PageId::new(1));
/// ```
#[must_use]
pub const fn page_of(address: Address) -> PageId {
    PageId::new(address.value() / PAGE_SIZE as u64)
}

/// A count of 4 KB pages, used for memory capacities and working-set sizes.
///
/// # Examples
///
/// ```
/// use hybridmem_types::PageCount;
///
/// let dram = PageCount::new(100);
/// let nvm = PageCount::new(900);
/// assert_eq!((dram + nvm).value(), 1000);
/// assert_eq!(dram.bytes(), 100 * 4096);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PageCount(u64);

impl PageCount {
    /// Creates a page count.
    #[must_use]
    pub const fn new(pages: u64) -> Self {
        Self(pages)
    }

    /// Creates the page count covering `bytes`, rounding up to whole pages.
    ///
    /// # Examples
    ///
    /// ```
    /// use hybridmem_types::PageCount;
    ///
    /// assert_eq!(PageCount::from_bytes(1), PageCount::new(1));
    /// assert_eq!(PageCount::from_bytes(4096), PageCount::new(1));
    /// assert_eq!(PageCount::from_bytes(4097), PageCount::new(2));
    /// ```
    #[must_use]
    pub const fn from_bytes(bytes: u64) -> Self {
        Self(bytes.div_ceil(PAGE_SIZE as u64))
    }

    /// Returns the number of pages.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the capacity in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }

    /// Returns true when the count is zero pages.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `fraction` of this count, rounded to nearest, but at least
    /// one page when `self` is non-empty and `fraction > 0`.
    ///
    /// This mirrors the paper's sizing rule (memory = 75 % of footprint,
    /// DRAM = 10 % of memory) where a zero-page DRAM would be meaningless.
    ///
    /// # Examples
    ///
    /// ```
    /// use hybridmem_types::PageCount;
    ///
    /// assert_eq!(PageCount::new(1000).scaled(0.10), PageCount::new(100));
    /// assert_eq!(PageCount::new(3).scaled(0.10), PageCount::new(1));
    /// assert_eq!(PageCount::new(0).scaled(0.5), PageCount::new(0));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite.
    #[must_use]
    pub fn scaled(self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "fraction must be finite and non-negative, got {fraction}"
        );
        if self.0 == 0 || fraction == 0.0 {
            return Self(0);
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let scaled = (self.0 as f64 * fraction).round() as u64;
        Self(scaled.max(1))
    }
}

impl fmt::Display for PageCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pages", self.0)
    }
}

impl Add for PageCount {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for PageCount {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for PageCount {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for PageCount {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for PageCount {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

impl From<PageCount> for u64 {
    fn from(value: PageCount) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_factor_matches_geometry() {
        assert_eq!(PAGE_FACTOR, 512);
        assert_eq!(PAGE_FACTOR, (PAGE_SIZE / ACCESS_GRANULARITY) as u64);
    }

    #[test]
    fn page_of_boundaries() {
        assert_eq!(page_of(Address::new(0)).value(), 0);
        assert_eq!(page_of(Address::new(4095)).value(), 0);
        assert_eq!(page_of(Address::new(4096)).value(), 1);
        assert_eq!(page_of(Address::new(8191)).value(), 1);
    }

    #[test]
    fn from_bytes_rounds_up() {
        assert_eq!(PageCount::from_bytes(0), PageCount::new(0));
        assert_eq!(PageCount::from_bytes(4096 * 3), PageCount::new(3));
        assert_eq!(PageCount::from_bytes(4096 * 3 + 1), PageCount::new(4));
    }

    #[test]
    fn arithmetic_behaves() {
        let a = PageCount::new(10);
        let b = PageCount::new(3);
        assert_eq!(a + b, PageCount::new(13));
        assert_eq!(a - b, PageCount::new(7));
        assert_eq!(b - a, PageCount::new(0), "subtraction saturates");
        let mut c = a;
        c += b;
        assert_eq!(c, PageCount::new(13));
        let total: PageCount = [a, b, c].into_iter().sum();
        assert_eq!(total, PageCount::new(26));
    }

    #[test]
    fn scaled_clamps_to_one_page_minimum() {
        assert_eq!(PageCount::new(5).scaled(0.01), PageCount::new(1));
        assert_eq!(PageCount::new(0).scaled(0.9), PageCount::new(0));
        assert_eq!(PageCount::new(100).scaled(0.0), PageCount::new(0));
        assert_eq!(PageCount::new(200).scaled(0.75), PageCount::new(150));
    }

    #[test]
    #[should_panic(expected = "fraction must be finite")]
    fn scaled_rejects_negative() {
        let _ = PageCount::new(10).scaled(-0.5);
    }
}
