//! Device models for the hybrid DRAM–NVM main memory.
//!
//! This crate models the *hardware substrate* of the DATE 2016 paper's
//! evaluation:
//!
//! * [`MemoryCharacteristics`] — per-technology latency, dynamic energy, and
//!   static power, with the exact Table IV constants used by both this paper
//!   and CLOCK-DWF ([`MemoryCharacteristics::dram_date2016`],
//!   [`MemoryCharacteristics::pcm_date2016`]);
//! * [`DiskCharacteristics`] — the 5 ms HDD of Table II;
//! * [`MemoryModule`] — a DRAM or NVM module that accounts every access
//!   (latency, energy, and *why* the access happened: demand request, page
//!   fault fill, or migration traffic);
//! * [`MigrationEngine`] — the DMA page-move cost model: moving a 4 KB page
//!   costs [`PAGE_FACTOR`](hybridmem_types::PAGE_FACTOR) reads of the source
//!   plus as many writes of the destination (Eqs. 1–2, last two terms);
//! * [`WearTracker`] — per-page NVM write counters for the endurance
//!   analysis (Fig. 2c / Fig. 4b) and lifetime estimation;
//! * [`StartGapLeveler`] — optional Start-Gap wear leveling under the NVM
//!   module, for the `ext_wear_leveling` extension experiment.
//!
//! # Examples
//!
//! ```
//! use hybridmem_device::{AccessSource, MemoryCharacteristics, MemoryModule};
//! use hybridmem_types::{AccessKind, MemoryKind, PageCount};
//!
//! let mut nvm = MemoryModule::new(
//!     MemoryKind::Nvm,
//!     PageCount::new(1024),
//!     MemoryCharacteristics::pcm_date2016(),
//! );
//! let cost = nvm.record_access(AccessKind::Write, AccessSource::Request);
//! assert_eq!(cost.latency.value(), 350.0); // Table IV: PCM write = 350 ns
//! assert_eq!(cost.energy.value(), 32.0);   // Table IV: PCM write = 32 nJ
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod characteristics;
mod dma;
mod endurance;
mod module;
mod wear_leveling;

pub use characteristics::{DiskCharacteristics, MemoryCharacteristics};
pub use dma::{MigrationEngine, PageMoveCost};
pub use endurance::{LifetimeEstimate, WearHistogram, WearTracker, DEFAULT_PCM_CELL_ENDURANCE};
pub use module::{AccessCost, AccessSource, MemoryModule, ModuleStats, SourceStats};
pub use wear_leveling::StartGapLeveler;
