//! DMA page-move cost model.
//!
//! "Upon occurring a migration, a data page will be read from a memory and
//! will be written to the other memory. Since the granularity of data pages
//! is quite larger than the actual accesses to memory (typically 4 up to
//! 16B), we use `PageFactor` ... which converts moving of a data page into
//! the required number of accesses to memory." — Section II-A.

use hybridmem_types::{AccessKind, Nanojoules, Nanoseconds, PAGE_FACTOR};
use serde::{Deserialize, Serialize};

use crate::{AccessSource, MemoryModule};

/// The priced cost of moving one 4 KB page.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PageMoveCost {
    /// Total device busy time of the move (source reads + destination
    /// writes; the paper's Eq. 1 charges both serially).
    pub latency: Nanoseconds,
    /// Total dynamic energy of the move.
    pub energy: Nanojoules,
    /// Number of accesses performed on the source module (reads).
    pub source_accesses: u64,
    /// Number of accesses performed on the destination module (writes).
    pub destination_accesses: u64,
}

/// Prices and accounts page movements between memory modules and from disk.
///
/// The engine is stateless apart from the `page_factor` coefficient; the
/// per-module accounting lives in the [`MemoryModule`]s it is handed.
///
/// # Examples
///
/// ```
/// use hybridmem_device::{MemoryCharacteristics, MemoryModule, MigrationEngine};
/// use hybridmem_types::{MemoryKind, PageCount, PAGE_FACTOR};
///
/// let mut dram = MemoryModule::new(
///     MemoryKind::Dram, PageCount::new(8), MemoryCharacteristics::dram_date2016());
/// let mut nvm = MemoryModule::new(
///     MemoryKind::Nvm, PageCount::new(64), MemoryCharacteristics::pcm_date2016());
///
/// let engine = MigrationEngine::new();
/// // Migrate NVM -> DRAM: PAGE_FACTOR reads of NVM + PAGE_FACTOR writes of DRAM.
/// let cost = engine.migrate_page(&mut nvm, &mut dram);
/// assert_eq!(cost.source_accesses, PAGE_FACTOR);
/// assert_eq!(cost.latency.value(), PAGE_FACTOR as f64 * (100.0 + 50.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationEngine {
    page_factor: u64,
}

impl MigrationEngine {
    /// Creates an engine with the paper's default
    /// [`PAGE_FACTOR`](hybridmem_types::PAGE_FACTOR) of 512 accesses/page.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            page_factor: PAGE_FACTOR,
        }
    }

    /// Creates an engine with a custom accesses-per-page coefficient
    /// (e.g. 256 for a 16 B access granularity).
    #[must_use]
    pub const fn with_page_factor(page_factor: u64) -> Self {
        Self { page_factor }
    }

    /// The accesses-per-page coefficient in use.
    #[must_use]
    pub const fn page_factor(&self) -> u64 {
        self.page_factor
    }

    /// Moves one page from `source` to `destination`, recording
    /// `page_factor` reads on the source and as many writes on the
    /// destination, both attributed to [`AccessSource::Migration`].
    pub fn migrate_page(
        &self,
        source: &mut MemoryModule,
        destination: &mut MemoryModule,
    ) -> PageMoveCost {
        let read =
            source.record_accesses(AccessKind::Read, AccessSource::Migration, self.page_factor);
        let write = destination.record_accesses(
            AccessKind::Write,
            AccessSource::Migration,
            self.page_factor,
        );
        PageMoveCost {
            latency: read.latency + write.latency,
            energy: read.energy + write.energy,
            source_accesses: self.page_factor,
            destination_accesses: self.page_factor,
        }
    }

    /// Fills one page from disk into `destination`, recording `page_factor`
    /// writes attributed to [`AccessSource::PageFault`].
    ///
    /// Latency is *not* charged here: "the delay of writing data blocks to
    /// memory will be overlaid with reading the next data block from the
    /// disk. Therefore, OS only sees the disk delay" (Section II-A). The
    /// caller charges the disk latency separately; the returned cost carries
    /// the memory-side *energy*, which Eq. 2 does account (terms 3–4).
    pub fn fill_from_disk(&self, destination: &mut MemoryModule) -> PageMoveCost {
        let write = destination.record_accesses(
            AccessKind::Write,
            AccessSource::PageFault,
            self.page_factor,
        );
        PageMoveCost {
            // Overlapped with the disk transfer: the OS-visible latency of a
            // fault is the disk latency alone.
            latency: Nanoseconds::ZERO,
            energy: write.energy,
            source_accesses: 0,
            destination_accesses: self.page_factor,
        }
    }
}

impl Default for MigrationEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryCharacteristics;
    use hybridmem_types::{MemoryKind, PageCount};

    fn modules() -> (MemoryModule, MemoryModule) {
        (
            MemoryModule::new(
                MemoryKind::Dram,
                PageCount::new(8),
                MemoryCharacteristics::dram_date2016(),
            ),
            MemoryModule::new(
                MemoryKind::Nvm,
                PageCount::new(64),
                MemoryCharacteristics::pcm_date2016(),
            ),
        )
    }

    #[test]
    fn nvm_to_dram_migration_cost_matches_eq1() {
        let (mut dram, mut nvm) = modules();
        let cost = MigrationEngine::new().migrate_page(&mut nvm, &mut dram);
        // Eq. 1, term 4: PageFactor * (TR_NVM + TW_DRAM).
        let pf = PAGE_FACTOR as f64;
        assert!((cost.latency.value() - pf * (100.0 + 50.0)).abs() < 1e-6);
        // Eq. 2, term 5: PageFactor * (PoR_NVM + PoW_DRAM).
        assert!((cost.energy.value() - pf * (6.4 + 3.2)).abs() < 1e-6);
        assert_eq!(nvm.stats().migration.reads, PAGE_FACTOR);
        assert_eq!(dram.stats().migration.writes, PAGE_FACTOR);
    }

    #[test]
    fn dram_to_nvm_migration_cost_matches_eq1() {
        let (mut dram, mut nvm) = modules();
        let cost = MigrationEngine::new().migrate_page(&mut dram, &mut nvm);
        let pf = PAGE_FACTOR as f64;
        // Eq. 1, term 5: PageFactor * (TR_DRAM + TW_NVM).
        assert!((cost.latency.value() - pf * (50.0 + 350.0)).abs() < 1e-6);
        // Eq. 2, term 6: PageFactor * (PoR_DRAM + PoW_NVM).
        assert!((cost.energy.value() - pf * (3.2 + 32.0)).abs() < 1e-6);
    }

    #[test]
    fn disk_fill_has_no_memory_latency_but_has_energy() {
        let (mut dram, _) = modules();
        let cost = MigrationEngine::new().fill_from_disk(&mut dram);
        assert!(cost.latency.is_zero());
        assert!((cost.energy.value() - PAGE_FACTOR as f64 * 3.2).abs() < 1e-6);
        assert_eq!(dram.stats().page_fault.writes, PAGE_FACTOR);
        assert_eq!(cost.source_accesses, 0);
    }

    #[test]
    fn custom_page_factor_is_honoured() {
        let (mut dram, mut nvm) = modules();
        let engine = MigrationEngine::with_page_factor(256);
        assert_eq!(engine.page_factor(), 256);
        let cost = engine.migrate_page(&mut nvm, &mut dram);
        assert_eq!(cost.source_accesses, 256);
        assert_eq!(cost.destination_accesses, 256);
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(MigrationEngine::default(), MigrationEngine::new());
    }
}
