//! Start-Gap wear leveling (Qureshi et al., MICRO 2009) — the standard
//! low-overhead PCM wear-leveling technique, provided as an optional layer
//! under the NVM module.
//!
//! The paper's endurance analysis assumes no wear leveling (lifetime is
//! bounded by the hottest page); this module quantifies how much of the
//! proposed scheme's lifetime advantage survives once the device levels
//! wear on its own — an extension experiment (`ext_wear_leveling`).
//!
//! # Algorithm
//!
//! `N` logical pages are stored in `N + 1` physical frames; one frame is a
//! *gap*. Every `gap_interval` writes, the page adjacent to the gap moves
//! into it, rotating the gap one slot; after `N + 1` gap moves every page
//! has shifted by one frame (`start` advances). The logical→physical map is
//! a pure function of `(start, gap)`, so the remap table is two counters.
//!
//! # Examples
//!
//! ```
//! use hybridmem_device::StartGapLeveler;
//! use hybridmem_types::PageId;
//!
//! let mut leveler = StartGapLeveler::new(8, 4)?;
//! let before = leveler.physical_frame(PageId::new(3));
//! // Drive enough writes for several gap movements.
//! for _ in 0..64 {
//!     leveler.record_write();
//! }
//! assert!(leveler.gap_moves() > 0);
//! let after = leveler.physical_frame(PageId::new(3));
//! assert_ne!(before, after, "the mapping rotates over time");
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use hybridmem_types::{Error, PageId, Result};
use serde::{Deserialize, Serialize};

/// A Start-Gap address-rotation wear leveler over `pages` logical pages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StartGapLeveler {
    pages: u64,
    /// Number of completed full rotations of the gap (each advances the
    /// effective start position by one frame).
    start: u64,
    /// Physical frame currently serving as the gap, in `0..=pages`.
    gap: u64,
    /// Writes observed since the last gap movement.
    writes_since_move: u64,
    /// Gap moves per this many writes.
    gap_interval: u64,
    gap_moves: u64,
    total_writes: u64,
}

impl StartGapLeveler {
    /// Creates a leveler for `pages` logical pages that rotates the gap
    /// every `gap_interval` writes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `pages` or `gap_interval` is
    /// zero.
    pub fn new(pages: u64, gap_interval: u64) -> Result<Self> {
        if pages == 0 {
            return Err(Error::invalid_config(
                "wear leveling needs at least one page",
            ));
        }
        if gap_interval == 0 {
            return Err(Error::invalid_config("gap interval must be positive"));
        }
        Ok(Self {
            pages,
            start: 0,
            gap: pages, // the spare frame starts as the gap
            writes_since_move: 0,
            gap_interval,
            gap_moves: 0,
            total_writes: 0,
        })
    }

    /// Number of logical pages managed.
    #[must_use]
    pub const fn pages(&self) -> u64 {
        self.pages
    }

    /// Total gap movements so far (each costs one physical page copy).
    #[must_use]
    pub const fn gap_moves(&self) -> u64 {
        self.gap_moves
    }

    /// Total writes observed.
    #[must_use]
    pub const fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// The physical frame (in `0..=pages`) currently holding `page`.
    ///
    /// # Panics
    ///
    /// Panics when `page` is outside the managed range.
    #[must_use]
    pub fn physical_frame(&self, page: PageId) -> u64 {
        assert!(
            page.value() < self.pages,
            "page {page} outside the {} managed pages",
            self.pages
        );
        // Start-Gap (Qureshi et al.): base = (LA + Start) mod N lands in
        // [0, N-1]; frames at or past the gap shift up by one, so the image
        // is [0, N] minus the gap frame — injective by construction.
        let base = (page.value() + self.start) % self.pages;
        if base >= self.gap {
            base + 1
        } else {
            base
        }
    }

    /// Records one physical write; every `gap_interval` writes the gap
    /// rotates. Returns the number of extra page copies performed (0 or 1)
    /// so callers can charge the remapping traffic.
    pub fn record_write(&mut self) -> u64 {
        self.total_writes += 1;
        self.writes_since_move += 1;
        if self.writes_since_move < self.gap_interval {
            return 0;
        }
        self.writes_since_move = 0;
        self.gap_moves += 1;
        // Move the gap down one frame (the page above it copies into it).
        if self.gap == 0 {
            self.gap = self.pages;
            // A full rotation completed: every page has shifted by one.
            self.start = (self.start + 1) % self.pages;
        } else {
            self.gap -= 1;
        }
        1
    }

    /// Write amplification introduced by the gap movements:
    /// `(writes + moves × PageFactor_equivalent) / writes`, expressed with
    /// moves as single page copies. Returns 1.0 before any writes.
    #[must_use]
    pub fn write_amplification(&self) -> f64 {
        if self.total_writes == 0 {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            (self.total_writes + self.gap_moves) as f64 / self.total_writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rejects_degenerate_configs() {
        assert!(StartGapLeveler::new(0, 4).is_err());
        assert!(StartGapLeveler::new(4, 0).is_err());
    }

    #[test]
    fn mapping_is_injective_at_all_times() {
        let mut leveler = StartGapLeveler::new(16, 1).unwrap();
        for _ in 0..200 {
            let frames: HashSet<u64> = (0..16)
                .map(|p| leveler.physical_frame(PageId::new(p)))
                .collect();
            assert_eq!(frames.len(), 16, "mapping must stay injective");
            assert!(frames.iter().all(|&f| f <= 16));
            assert!(
                !frames.contains(&leveler.gap),
                "no page may map onto the gap frame"
            );
            leveler.record_write();
        }
    }

    #[test]
    fn gap_rotates_every_interval() {
        let mut leveler = StartGapLeveler::new(8, 4).unwrap();
        for i in 1..=16u64 {
            let moved = leveler.record_write();
            assert_eq!(moved, u64::from(i % 4 == 0));
        }
        assert_eq!(leveler.gap_moves(), 4);
        assert_eq!(leveler.total_writes(), 16);
    }

    #[test]
    fn full_rotation_advances_start() {
        // pages=3 → 4 frames; 4 gap moves complete a rotation.
        let mut leveler = StartGapLeveler::new(3, 1).unwrap();
        let initial: Vec<u64> = (0..3)
            .map(|p| leveler.physical_frame(PageId::new(p)))
            .collect();
        for _ in 0..4 {
            leveler.record_write();
        }
        let rotated: Vec<u64> = (0..3)
            .map(|p| leveler.physical_frame(PageId::new(p)))
            .collect();
        assert_ne!(initial, rotated, "a full rotation shifts every page");
    }

    #[test]
    fn rotation_spreads_a_hot_page_over_all_frames() {
        // Hammer one logical page; over enough writes its physical frame
        // must visit every slot — the whole point of wear leveling.
        let mut leveler = StartGapLeveler::new(8, 1).unwrap();
        let mut visited = HashSet::new();
        for _ in 0..200 {
            visited.insert(leveler.physical_frame(PageId::new(0)));
            leveler.record_write();
        }
        assert_eq!(visited.len() as u64, 9, "hot page visits all 9 frames");
    }

    #[test]
    fn write_amplification_matches_interval() {
        let mut leveler = StartGapLeveler::new(64, 100).unwrap();
        assert_eq!(leveler.write_amplification(), 1.0);
        for _ in 0..10_000 {
            leveler.record_write();
        }
        // One move per 100 writes → amplification ≈ 1.01.
        assert!((leveler.write_amplification() - 1.01).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_page_panics() {
        let leveler = StartGapLeveler::new(4, 1).unwrap();
        let _ = leveler.physical_frame(PageId::new(4));
    }
}
