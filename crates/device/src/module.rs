//! A single memory module with full access accounting.

use hybridmem_types::{AccessKind, MemoryKind, Nanojoules, Nanoseconds, PageCount};
use serde::{Deserialize, Serialize};

use crate::MemoryCharacteristics;

/// Why a memory access happened.
///
/// The paper's analyses break every metric down by cause (Figs. 1, 2, 4):
/// demand requests, page-fault fills from disk, and migration traffic
/// between the two modules. Attributing each device access to its source is
/// what lets the models report those breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AccessSource {
    /// A demand read/write issued by the CPU (after cache filtering).
    Request,
    /// A write performed to fill a page from disk after a page fault.
    PageFault,
    /// A read or write performed while migrating a page between DRAM and NVM.
    Migration,
}

impl AccessSource {
    /// All sources in reporting order.
    #[must_use]
    pub const fn all() -> [Self; 3] {
        [Self::Request, Self::PageFault, Self::Migration]
    }
}

/// The latency and energy of one device access.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccessCost {
    /// Time the device was busy with the access.
    pub latency: Nanoseconds,
    /// Dynamic energy drawn by the access.
    pub energy: Nanojoules,
}

impl AccessCost {
    /// Creates an access cost.
    #[must_use]
    pub const fn new(latency: Nanoseconds, energy: Nanojoules) -> Self {
        Self { latency, energy }
    }
}

/// Counters for one access source within one module.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SourceStats {
    /// Number of read accesses.
    pub reads: u64,
    /// Number of write accesses.
    pub writes: u64,
    /// Total dynamic energy of these accesses.
    pub energy: Nanojoules,
    /// Total device busy time of these accesses.
    pub busy_time: Nanoseconds,
}

impl SourceStats {
    /// Total accesses (reads + writes).
    #[must_use]
    pub const fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Aggregate statistics of one module, broken down by [`AccessSource`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ModuleStats {
    /// Demand-request accesses.
    pub request: SourceStats,
    /// Page-fault fill accesses.
    pub page_fault: SourceStats,
    /// Migration traffic accesses.
    pub migration: SourceStats,
}

impl ModuleStats {
    /// Returns the stats bucket for a source.
    #[must_use]
    pub const fn source(&self, source: AccessSource) -> &SourceStats {
        match source {
            AccessSource::Request => &self.request,
            AccessSource::PageFault => &self.page_fault,
            AccessSource::Migration => &self.migration,
        }
    }

    fn source_mut(&mut self, source: AccessSource) -> &mut SourceStats {
        match source {
            AccessSource::Request => &mut self.request,
            AccessSource::PageFault => &mut self.page_fault,
            AccessSource::Migration => &mut self.migration,
        }
    }

    /// Total writes across all sources.
    #[must_use]
    pub const fn total_writes(&self) -> u64 {
        self.request.writes + self.page_fault.writes + self.migration.writes
    }

    /// Total reads across all sources.
    #[must_use]
    pub const fn total_reads(&self) -> u64 {
        self.request.reads + self.page_fault.reads + self.migration.reads
    }

    /// Total accesses across all sources.
    #[must_use]
    pub const fn total_accesses(&self) -> u64 {
        self.total_reads() + self.total_writes()
    }

    /// Total dynamic energy across all sources.
    #[must_use]
    pub fn total_energy(&self) -> Nanojoules {
        self.request.energy + self.page_fault.energy + self.migration.energy
    }

    /// Total busy time across all sources.
    #[must_use]
    pub fn total_busy_time(&self) -> Nanoseconds {
        self.request.busy_time + self.page_fault.busy_time + self.migration.busy_time
    }
}

/// One DRAM or NVM module: capacity, characteristics, and accounting.
///
/// The module does not know *which* pages it holds — placement is the
/// policy's job (`hybridmem-policy`); the module only prices and counts the
/// accesses routed to it.
///
/// # Examples
///
/// ```
/// use hybridmem_device::{AccessSource, MemoryCharacteristics, MemoryModule};
/// use hybridmem_types::{AccessKind, MemoryKind, PageCount};
///
/// let mut dram = MemoryModule::new(
///     MemoryKind::Dram,
///     PageCount::new(64),
///     MemoryCharacteristics::dram_date2016(),
/// );
/// dram.record_access(AccessKind::Read, AccessSource::Request);
/// dram.record_access(AccessKind::Write, AccessSource::Migration);
/// assert_eq!(dram.stats().request.reads, 1);
/// assert_eq!(dram.stats().migration.writes, 1);
/// assert_eq!(dram.stats().total_accesses(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModule {
    kind: MemoryKind,
    capacity: PageCount,
    characteristics: MemoryCharacteristics,
    stats: ModuleStats,
}

impl MemoryModule {
    /// Creates a module of the given kind and capacity.
    #[must_use]
    pub const fn new(
        kind: MemoryKind,
        capacity: PageCount,
        characteristics: MemoryCharacteristics,
    ) -> Self {
        Self {
            kind,
            capacity,
            characteristics,
            stats: ModuleStats {
                request: SourceStats {
                    reads: 0,
                    writes: 0,
                    energy: Nanojoules::ZERO,
                    busy_time: Nanoseconds::ZERO,
                },
                page_fault: SourceStats {
                    reads: 0,
                    writes: 0,
                    energy: Nanojoules::ZERO,
                    busy_time: Nanoseconds::ZERO,
                },
                migration: SourceStats {
                    reads: 0,
                    writes: 0,
                    energy: Nanojoules::ZERO,
                    busy_time: Nanoseconds::ZERO,
                },
            },
        }
    }

    /// Which module this is.
    #[must_use]
    pub const fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Capacity in pages.
    #[must_use]
    pub const fn capacity(&self) -> PageCount {
        self.capacity
    }

    /// The technology characteristics of this module.
    #[must_use]
    pub const fn characteristics(&self) -> &MemoryCharacteristics {
        &self.characteristics
    }

    /// Accumulated statistics.
    #[must_use]
    pub const fn stats(&self) -> &ModuleStats {
        &self.stats
    }

    /// Static power of the whole module in nanojoules per second.
    ///
    /// Static power is drawn by every provisioned page regardless of
    /// traffic — this is the term hybrid memories attack, since PCM static
    /// power is 10× lower than DRAM (Table IV).
    #[must_use]
    pub fn static_power_nj_s(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let pages = self.capacity.value() as f64;
        pages * self.characteristics.static_power_per_page_nj_s()
    }

    /// Records one access of `kind` attributed to `source`, returning its
    /// cost and accumulating it into [`MemoryModule::stats`].
    pub fn record_access(&mut self, kind: AccessKind, source: AccessSource) -> AccessCost {
        self.record_accesses(kind, source, 1)
    }

    /// Records `count` identical accesses at once (used for page moves,
    /// which are `PageFactor` back-to-back accesses), returning the *total*
    /// cost of the batch.
    pub fn record_accesses(
        &mut self,
        kind: AccessKind,
        source: AccessSource,
        count: u64,
    ) -> AccessCost {
        #[allow(clippy::cast_precision_loss)]
        let n = count as f64;
        let cost = AccessCost::new(
            self.characteristics.latency(kind) * n,
            self.characteristics.energy(kind) * n,
        );
        let bucket = self.stats.source_mut(source);
        match kind {
            AccessKind::Read => bucket.reads += count,
            AccessKind::Write => bucket.writes += count,
        }
        bucket.energy += cost.energy;
        bucket.busy_time += cost.latency;
        cost
    }

    /// Resets all counters while keeping capacity and characteristics.
    pub fn reset_stats(&mut self) {
        self.stats = ModuleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvm() -> MemoryModule {
        MemoryModule::new(
            MemoryKind::Nvm,
            PageCount::new(100),
            MemoryCharacteristics::pcm_date2016(),
        )
    }

    #[test]
    fn record_access_prices_by_kind() {
        let mut m = nvm();
        let r = m.record_access(AccessKind::Read, AccessSource::Request);
        assert_eq!(r.latency.value(), 100.0);
        assert_eq!(r.energy.value(), 6.4);
        let w = m.record_access(AccessKind::Write, AccessSource::Request);
        assert_eq!(w.latency.value(), 350.0);
        assert_eq!(w.energy.value(), 32.0);
    }

    #[test]
    fn batched_accesses_scale_linearly() {
        let mut m = nvm();
        let c = m.record_accesses(AccessKind::Write, AccessSource::Migration, 512);
        assert_eq!(c.latency.value(), 512.0 * 350.0);
        assert_eq!(c.energy.value(), 512.0 * 32.0);
        assert_eq!(m.stats().migration.writes, 512);
        assert_eq!(m.stats().migration.reads, 0);
    }

    #[test]
    fn sources_are_attributed_separately() {
        let mut m = nvm();
        m.record_access(AccessKind::Read, AccessSource::Request);
        m.record_accesses(AccessKind::Write, AccessSource::PageFault, 512);
        m.record_accesses(AccessKind::Read, AccessSource::Migration, 512);
        assert_eq!(m.stats().request.accesses(), 1);
        assert_eq!(m.stats().page_fault.writes, 512);
        assert_eq!(m.stats().migration.reads, 512);
        assert_eq!(m.stats().total_accesses(), 1025);
        assert_eq!(m.stats().total_writes(), 512);
        assert_eq!(m.stats().total_reads(), 513);
    }

    #[test]
    fn total_energy_and_busy_time_sum_sources() {
        let mut m = nvm();
        m.record_access(AccessKind::Read, AccessSource::Request);
        m.record_access(AccessKind::Write, AccessSource::Migration);
        let total = m.stats().total_energy();
        assert!((total.value() - (6.4 + 32.0)).abs() < 1e-9);
        assert!((m.stats().total_busy_time().value() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn static_power_scales_with_capacity() {
        let small = MemoryModule::new(
            MemoryKind::Dram,
            PageCount::new(10),
            MemoryCharacteristics::dram_date2016(),
        );
        let large = MemoryModule::new(
            MemoryKind::Dram,
            PageCount::new(1000),
            MemoryCharacteristics::dram_date2016(),
        );
        assert!((large.static_power_nj_s() / small.static_power_nj_s() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_counters_only() {
        let mut m = nvm();
        m.record_access(AccessKind::Write, AccessSource::Request);
        m.reset_stats();
        assert_eq!(m.stats().total_accesses(), 0);
        assert_eq!(m.capacity(), PageCount::new(100));
        assert_eq!(m.kind(), MemoryKind::Nvm);
    }

    #[test]
    fn access_source_all_is_exhaustive_and_ordered() {
        assert_eq!(
            AccessSource::all(),
            [
                AccessSource::Request,
                AccessSource::PageFault,
                AccessSource::Migration
            ]
        );
    }
}
