//! Per-technology latency, energy, and static-power characteristics.

use hybridmem_types::{AccessKind, Error, Nanojoules, Nanoseconds, Result, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// Bytes per gibibyte, used to convert Table IV's J/(GB·s) static power into
/// a per-page figure.
const BYTES_PER_GIB: f64 = (1u64 << 30) as f64;

/// Latency, dynamic energy, and static power of one memory technology.
///
/// The defaults mirror Table IV of the paper, which itself takes them from
/// the CLOCK-DWF study "in order to have a fair comparison":
///
/// | Memory | Latency r/w (ns) | Energy r/w (nJ) | Static power (J/GB·s) |
/// |--------|------------------|-----------------|-----------------------|
/// | DRAM   | 50 / 50          | 3.2 / 3.2       | 1.0                   |
/// | NVM (PCM) | 100 / 350     | 6.4 / 32        | 0.1                   |
///
/// # Examples
///
/// ```
/// use hybridmem_device::MemoryCharacteristics;
/// use hybridmem_types::AccessKind;
///
/// let pcm = MemoryCharacteristics::pcm_date2016();
/// assert_eq!(pcm.latency(AccessKind::Read).value(), 100.0);
/// assert_eq!(pcm.energy(AccessKind::Write).value(), 32.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryCharacteristics {
    /// Latency of a read access.
    pub read_latency: Nanoseconds,
    /// Latency of a write access.
    pub write_latency: Nanoseconds,
    /// Dynamic energy of a read access.
    pub read_energy: Nanojoules,
    /// Dynamic energy of a write access.
    pub write_energy: Nanojoules,
    /// Static (leakage/refresh) power in joules per gigabyte per second.
    pub static_power_j_per_gib_s: f64,
}

impl MemoryCharacteristics {
    /// Creates a characteristics record, validating that all values are
    /// finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any latency or energy is
    /// negative, or the static power is negative or non-finite.
    pub fn new(
        read_latency: Nanoseconds,
        write_latency: Nanoseconds,
        read_energy: Nanojoules,
        write_energy: Nanojoules,
        static_power_j_per_gib_s: f64,
    ) -> Result<Self> {
        for (name, v) in [
            ("read_latency", read_latency.value()),
            ("write_latency", write_latency.value()),
            ("read_energy", read_energy.value()),
            ("write_energy", write_energy.value()),
            ("static_power_j_per_gib_s", static_power_j_per_gib_s),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(Error::invalid_config(format!(
                    "{name} must be finite and non-negative, got {v}"
                )));
            }
        }
        Ok(Self {
            read_latency,
            write_latency,
            read_energy,
            write_energy,
            static_power_j_per_gib_s,
        })
    }

    /// The DRAM row of Table IV: 50 ns / 3.2 nJ symmetric, 1 J/(GB·s) static.
    #[must_use]
    pub fn dram_date2016() -> Self {
        Self {
            read_latency: Nanoseconds::new(50.0),
            write_latency: Nanoseconds::new(50.0),
            read_energy: Nanojoules::new(3.2),
            write_energy: Nanojoules::new(3.2),
            static_power_j_per_gib_s: 1.0,
        }
    }

    /// The NVM (PCM) row of Table IV: 100/350 ns, 6.4/32 nJ, 0.1 J/(GB·s).
    #[must_use]
    pub fn pcm_date2016() -> Self {
        Self {
            read_latency: Nanoseconds::new(100.0),
            write_latency: Nanoseconds::new(350.0),
            read_energy: Nanojoules::new(6.4),
            write_energy: Nanojoules::new(32.0),
            static_power_j_per_gib_s: 0.1,
        }
    }

    /// Returns the latency of an access of the given kind.
    #[must_use]
    pub const fn latency(&self, kind: AccessKind) -> Nanoseconds {
        match kind {
            AccessKind::Read => self.read_latency,
            AccessKind::Write => self.write_latency,
        }
    }

    /// Returns the dynamic energy of an access of the given kind.
    #[must_use]
    pub const fn energy(&self, kind: AccessKind) -> Nanojoules {
        match kind {
            AccessKind::Read => self.read_energy,
            AccessKind::Write => self.write_energy,
        }
    }

    /// Static power of a single 4 KB page in nanojoules per second —
    /// `StperPage` of Table I / Eq. 3.
    ///
    /// # Examples
    ///
    /// ```
    /// use hybridmem_device::MemoryCharacteristics;
    ///
    /// // 1 J/(GB·s) over a 4 KB page = 4096/2^30 J/s ≈ 3814.7 nJ/s.
    /// let per_page = MemoryCharacteristics::dram_date2016().static_power_per_page_nj_s();
    /// assert!((per_page - 3814.697265625).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn static_power_per_page_nj_s(&self) -> f64 {
        self.static_power_j_per_gib_s * (PAGE_SIZE as f64 / BYTES_PER_GIB) * 1e9
    }
}

impl Default for MemoryCharacteristics {
    /// Defaults to the DRAM row of Table IV.
    fn default() -> Self {
        Self::dram_date2016()
    }
}

/// Latency of the secondary storage servicing page faults.
///
/// The paper models the disk as a constant 5 ms response HDD (Table II) and
/// charges only this latency per miss: "Since transferring a data page from
/// a disk to the memory will be done with DMA ... OS only sees the disk
/// delay" (Section II-A).
///
/// # Examples
///
/// ```
/// use hybridmem_device::DiskCharacteristics;
///
/// let hdd = DiskCharacteristics::hdd_date2016();
/// assert_eq!(hdd.access_latency.value(), 5_000_000.0); // 5 ms in ns
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskCharacteristics {
    /// End-to-end latency of one page fault serviced from disk.
    pub access_latency: Nanoseconds,
}

impl DiskCharacteristics {
    /// Creates a disk model with the given access latency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the latency is negative.
    pub fn new(access_latency: Nanoseconds) -> Result<Self> {
        if access_latency.value() < 0.0 {
            return Err(Error::invalid_config(format!(
                "disk access latency must be non-negative, got {access_latency}"
            )));
        }
        Ok(Self { access_latency })
    }

    /// The Table II HDD: 5 milliseconds response time.
    #[must_use]
    pub fn hdd_date2016() -> Self {
        Self {
            access_latency: Nanoseconds::new(5_000_000.0),
        }
    }
}

impl Default for DiskCharacteristics {
    /// Defaults to the Table II HDD.
    fn default() -> Self {
        Self::hdd_date2016()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_dram_constants() {
        let d = MemoryCharacteristics::dram_date2016();
        assert_eq!(d.latency(AccessKind::Read).value(), 50.0);
        assert_eq!(d.latency(AccessKind::Write).value(), 50.0);
        assert_eq!(d.energy(AccessKind::Read).value(), 3.2);
        assert_eq!(d.energy(AccessKind::Write).value(), 3.2);
        assert_eq!(d.static_power_j_per_gib_s, 1.0);
    }

    #[test]
    fn table_iv_pcm_constants() {
        let p = MemoryCharacteristics::pcm_date2016();
        assert_eq!(p.latency(AccessKind::Read).value(), 100.0);
        assert_eq!(p.latency(AccessKind::Write).value(), 350.0);
        assert_eq!(p.energy(AccessKind::Read).value(), 6.4);
        assert_eq!(p.energy(AccessKind::Write).value(), 32.0);
        assert_eq!(p.static_power_j_per_gib_s, 0.1);
    }

    #[test]
    fn pcm_is_write_asymmetric() {
        let p = MemoryCharacteristics::pcm_date2016();
        assert!(p.write_latency > p.read_latency);
        assert!(p.write_energy > p.read_energy);
    }

    #[test]
    fn static_power_scales_with_technology() {
        let dram = MemoryCharacteristics::dram_date2016().static_power_per_page_nj_s();
        let pcm = MemoryCharacteristics::pcm_date2016().static_power_per_page_nj_s();
        assert!((dram / pcm - 10.0).abs() < 1e-9, "DRAM static is 10x PCM");
    }

    #[test]
    fn new_rejects_negative_values() {
        let err = MemoryCharacteristics::new(
            Nanoseconds::new(-1.0),
            Nanoseconds::new(1.0),
            Nanojoules::new(1.0),
            Nanojoules::new(1.0),
            0.5,
        )
        .unwrap_err();
        assert!(err.to_string().contains("read_latency"));

        assert!(MemoryCharacteristics::new(
            Nanoseconds::new(1.0),
            Nanoseconds::new(1.0),
            Nanojoules::new(1.0),
            Nanojoules::new(1.0),
            f64::INFINITY,
        )
        .is_err());
    }

    #[test]
    fn disk_default_is_5ms() {
        assert_eq!(DiskCharacteristics::default().access_latency.value(), 5e6);
        assert!(DiskCharacteristics::new(Nanoseconds::new(-5.0)).is_err());
        assert!(DiskCharacteristics::new(Nanoseconds::new(0.0)).is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let p = MemoryCharacteristics::pcm_date2016();
        let json = serde_json::to_string(&p).unwrap();
        let back: MemoryCharacteristics = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
