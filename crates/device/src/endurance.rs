//! NVM endurance tracking: per-page write wear and lifetime estimation.
//!
//! NVM cells sustain a limited number of writes ("NVMs have very limited
//! write cycles compared to DRAM"). The paper's endurance analysis
//! (Section III-C, Fig. 2c, Fig. 4b) counts the physical writes reaching the
//! NVM module and attributes them to their sources; this module adds the
//! per-page view needed to estimate device lifetime, since lifetime is
//! bounded by the *most*-written page absent wear leveling.

use std::collections::BTreeMap;

use hybridmem_types::PageId;
use serde::{Deserialize, Serialize};

/// Conventional PCM cell endurance used for lifetime estimates:
/// 10⁸ writes per cell (mid-range of published PCM figures).
pub const DEFAULT_PCM_CELL_ENDURANCE: u64 = 100_000_000;

/// Tracks per-page write counts on the NVM module.
///
/// # Examples
///
/// ```
/// use hybridmem_device::WearTracker;
/// use hybridmem_types::PageId;
///
/// let mut wear = WearTracker::new();
/// wear.record_page_write(PageId::new(1), 512);
/// wear.record_page_write(PageId::new(1), 512);
/// wear.record_page_write(PageId::new(2), 1);
/// assert_eq!(wear.total_writes(), 1025);
/// assert_eq!(wear.max_wear(), 1024);
/// assert_eq!(wear.pages_touched(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearTracker {
    /// A `BTreeMap` so a serialized tracker lists pages in sorted order
    /// (the struct derives `Serialize`; hash-map order would make the
    /// serialized form depend on insertion history).
    writes: BTreeMap<PageId, u64>,
    total: u64,
}

impl WearTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` physical writes to `page`.
    pub fn record_page_write(&mut self, page: PageId, count: u64) {
        *self.writes.entry(page).or_insert(0) += count;
        self.total += count;
    }

    /// Total physical writes recorded across all pages.
    #[must_use]
    pub const fn total_writes(&self) -> u64 {
        self.total
    }

    /// The wear of the most-written page (0 when nothing was written).
    #[must_use]
    pub fn max_wear(&self) -> u64 {
        self.writes.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct pages that received at least one write.
    #[must_use]
    pub fn pages_touched(&self) -> usize {
        self.writes.len()
    }

    /// The wear recorded for one page.
    #[must_use]
    pub fn wear_of(&self, page: PageId) -> u64 {
        self.writes.get(&page).copied().unwrap_or(0)
    }

    /// Mean writes per touched page (0.0 when nothing was written).
    #[must_use]
    pub fn mean_wear(&self) -> f64 {
        if self.writes.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.total as f64 / self.writes.len() as f64
        }
    }

    /// Wear imbalance: max wear / mean wear. 1.0 means perfectly even wear;
    /// large values indicate hot pages that would benefit from wear
    /// leveling. Returns 0.0 when nothing was written.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_wear();
        if mean == 0.0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.max_wear() as f64 / mean
        }
    }

    /// Builds a histogram of page wear with `buckets` equal-width bins
    /// spanning `[0, max_wear]`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    #[must_use]
    pub fn histogram(&self, buckets: usize) -> WearHistogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        let max = self.max_wear();
        let mut counts = vec![0u64; buckets];
        for &wear in self.writes.values() {
            // Bucket index in [0, buckets-1]; the max value lands in the
            // last bucket. (`max` is non-zero here: `writes` has entries.)
            let idx = (wear.saturating_sub(1) * buckets as u64)
                .checked_div(max)
                .unwrap_or(0) as usize;
            counts[idx.min(buckets - 1)] += 1;
        }
        WearHistogram {
            max_wear: max,
            counts,
        }
    }

    /// Estimates device lifetime given a per-cell endurance budget and the
    /// observed write rate.
    ///
    /// `writes_per_second` is the rate at which the observed workload issues
    /// physical NVM writes. The device fails when its hottest page exhausts
    /// `cell_endurance`, so estimated lifetime (seconds) is
    /// `cell_endurance / (max_wear_rate)` where the hottest page's share of
    /// traffic is assumed stationary.
    ///
    /// Returns `None` when no writes were recorded or the rate is not
    /// positive (the device never wears out under this workload).
    #[must_use]
    pub fn lifetime(
        &self,
        cell_endurance: u64,
        writes_per_second: f64,
    ) -> Option<LifetimeEstimate> {
        let max = self.max_wear();
        if max == 0 || writes_per_second <= 0.0 || writes_per_second.is_nan() {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        let hottest_share = max as f64 / self.total as f64;
        let hottest_rate = writes_per_second * hottest_share;
        #[allow(clippy::cast_precision_loss)]
        let seconds = cell_endurance as f64 / hottest_rate;
        Some(LifetimeEstimate {
            seconds,
            limiting_page_wear: max,
            hottest_share,
        })
    }
}

/// Histogram of per-page wear.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WearHistogram {
    /// Wear of the most-written page (upper edge of the last bucket).
    pub max_wear: u64,
    /// Page counts per equal-width bucket over `[0, max_wear]`.
    pub counts: Vec<u64>,
}

impl WearHistogram {
    /// Total pages represented by the histogram.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Result of [`WearTracker::lifetime`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeEstimate {
    /// Estimated seconds until the hottest page exhausts its endurance.
    pub seconds: f64,
    /// Observed wear of the limiting (hottest) page.
    pub limiting_page_wear: u64,
    /// The hottest page's share of total write traffic, in `(0, 1]`.
    pub hottest_share: f64,
}

impl LifetimeEstimate {
    /// Lifetime expressed in years.
    #[must_use]
    pub fn years(&self) -> f64 {
        self.seconds / (365.25 * 24.0 * 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_zeroes() {
        let wear = WearTracker::new();
        assert_eq!(wear.total_writes(), 0);
        assert_eq!(wear.max_wear(), 0);
        assert_eq!(wear.pages_touched(), 0);
        assert_eq!(wear.mean_wear(), 0.0);
        assert_eq!(wear.imbalance(), 0.0);
        assert!(wear.lifetime(DEFAULT_PCM_CELL_ENDURANCE, 1e6).is_none());
    }

    #[test]
    fn wear_accumulates_per_page() {
        let mut wear = WearTracker::new();
        wear.record_page_write(PageId::new(7), 10);
        wear.record_page_write(PageId::new(7), 5);
        wear.record_page_write(PageId::new(8), 1);
        assert_eq!(wear.wear_of(PageId::new(7)), 15);
        assert_eq!(wear.wear_of(PageId::new(8)), 1);
        assert_eq!(wear.wear_of(PageId::new(9)), 0);
        assert_eq!(wear.total_writes(), 16);
        assert_eq!(wear.mean_wear(), 8.0);
        assert!((wear.imbalance() - 15.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_partitions_pages() {
        let mut wear = WearTracker::new();
        for i in 1..=100u64 {
            wear.record_page_write(PageId::new(i), i);
        }
        let h = wear.histogram(10);
        assert_eq!(h.total_pages(), 100);
        assert_eq!(h.max_wear, 100);
        // Equal-width buckets over 1..=100 hold 10 pages each.
        assert!(h.counts.iter().all(|&c| c == 10), "{:?}", h.counts);
    }

    #[test]
    fn histogram_single_value() {
        let mut wear = WearTracker::new();
        wear.record_page_write(PageId::new(1), 512);
        let h = wear.histogram(4);
        assert_eq!(h.counts, vec![0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let _ = WearTracker::new().histogram(0);
    }

    #[test]
    fn lifetime_is_inverse_to_write_rate() {
        let mut wear = WearTracker::new();
        wear.record_page_write(PageId::new(1), 100);
        wear.record_page_write(PageId::new(2), 100);
        let slow = wear.lifetime(1_000_000, 1000.0).unwrap();
        let fast = wear.lifetime(1_000_000, 2000.0).unwrap();
        assert!((slow.seconds / fast.seconds - 2.0).abs() < 1e-9);
        assert_eq!(slow.limiting_page_wear, 100);
        assert!((slow.hottest_share - 0.5).abs() < 1e-12);
        // endurance 1e6 cells / (1000 w/s * 0.5 share) = 2000 s.
        assert!((slow.seconds - 2000.0).abs() < 1e-9);
        assert!(slow.years() > 0.0);
    }

    #[test]
    fn uneven_wear_shortens_lifetime() {
        let mut even = WearTracker::new();
        even.record_page_write(PageId::new(1), 50);
        even.record_page_write(PageId::new(2), 50);
        let mut skewed = WearTracker::new();
        skewed.record_page_write(PageId::new(1), 99);
        skewed.record_page_write(PageId::new(2), 1);
        let l_even = even.lifetime(1_000_000, 1000.0).unwrap();
        let l_skewed = skewed.lifetime(1_000_000, 1000.0).unwrap();
        assert!(l_skewed.seconds < l_even.seconds);
    }
}
