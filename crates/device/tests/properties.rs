//! Property-based tests for the device models: accounting linearity,
//! attribution exhaustiveness, and wear bookkeeping.

use proptest::prelude::*;

use hybridmem_device::{
    AccessSource, MemoryCharacteristics, MemoryModule, MigrationEngine, WearTracker,
};
use hybridmem_types::{AccessKind, MemoryKind, Nanojoules, Nanoseconds, PageCount, PageId};

fn op_strategy() -> impl Strategy<Value = (bool, u8, u16)> {
    // (is_write, source index, count)
    (prop::bool::ANY, 0u8..3, 1u16..600)
}

proptest! {
    /// Module accounting is linear: the stats equal the sum of every cost
    /// the module returned, and attribution buckets partition the totals.
    #[test]
    fn module_accounting_is_linear(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut module = MemoryModule::new(
            MemoryKind::Nvm,
            PageCount::new(64),
            MemoryCharacteristics::pcm_date2016(),
        );
        let mut energy = Nanojoules::ZERO;
        let mut busy = Nanoseconds::ZERO;
        let mut reads = 0u64;
        let mut writes = 0u64;
        for (is_write, source_index, count) in ops {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let source = AccessSource::all()[source_index as usize];
            let cost = module.record_accesses(kind, source, u64::from(count));
            energy += cost.energy;
            busy += cost.latency;
            if is_write { writes += u64::from(count) } else { reads += u64::from(count) }
        }
        let stats = module.stats();
        prop_assert_eq!(stats.total_reads(), reads);
        prop_assert_eq!(stats.total_writes(), writes);
        prop_assert!((stats.total_energy().value() - energy.value()).abs() < 1e-6);
        prop_assert!((stats.total_busy_time().value() - busy.value()).abs() < 1e-6);
        // Buckets partition the totals.
        let bucket_sum: u64 = AccessSource::all()
            .iter()
            .map(|&s| stats.source(s).accesses())
            .sum();
        prop_assert_eq!(bucket_sum, reads + writes);
    }

    /// Migration costs are symmetric sums of per-direction access costs and
    /// scale exactly with the page factor.
    #[test]
    fn migration_costs_scale_with_page_factor(page_factor in 1u64..2_048) {
        let mut dram = MemoryModule::new(
            MemoryKind::Dram, PageCount::new(4), MemoryCharacteristics::dram_date2016());
        let mut nvm = MemoryModule::new(
            MemoryKind::Nvm, PageCount::new(4), MemoryCharacteristics::pcm_date2016());
        let engine = MigrationEngine::with_page_factor(page_factor);
        let cost = engine.migrate_page(&mut nvm, &mut dram);
        let pf = page_factor as f64;
        prop_assert!((cost.latency.value() - pf * 150.0).abs() < 1e-6);
        prop_assert!((cost.energy.value() - pf * 9.6).abs() < 1e-6);
        prop_assert_eq!(cost.source_accesses, page_factor);
        prop_assert_eq!(cost.destination_accesses, page_factor);

        let fill = engine.fill_from_disk(&mut nvm);
        prop_assert!(fill.latency.is_zero(), "fill latency is disk-overlapped");
        prop_assert!((fill.energy.value() - pf * 32.0).abs() < 1e-6);
    }

    /// Wear bookkeeping: the total equals the sum over pages, the maximum
    /// bounds the mean, and the histogram partitions the touched pages.
    #[test]
    fn wear_tracker_is_consistent(
        writes in prop::collection::vec((0u64..64, 1u64..1_000), 1..150),
        buckets in 1usize..16,
    ) {
        let mut wear = WearTracker::new();
        let mut expected_total = 0u64;
        for &(page, count) in &writes {
            wear.record_page_write(PageId::new(page), count);
            expected_total += count;
        }
        prop_assert_eq!(wear.total_writes(), expected_total);
        prop_assert!(wear.max_wear() as f64 >= wear.mean_wear());
        prop_assert!(wear.imbalance() >= 1.0);
        let histogram = wear.histogram(buckets);
        prop_assert_eq!(histogram.total_pages(), wear.pages_touched() as u64);
        prop_assert_eq!(histogram.counts.len(), buckets);

        let lifetime = wear.lifetime(100_000_000, 1e6).expect("writes recorded");
        prop_assert!(lifetime.seconds > 0.0);
        prop_assert!(lifetime.hottest_share > 0.0 && lifetime.hottest_share <= 1.0);
    }
}
