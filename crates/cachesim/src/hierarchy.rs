//! The multi-core cache hierarchy: private L1 data caches over a shared
//! LLC, with write-invalidate coherence between the L1s.
//!
//! This is the substrate that plays COTSon's role (see `DESIGN.md`): it
//! filters CPU-level accesses into the main-memory accesses that the
//! OS-level migration policies actually see — demand fills on LLC misses
//! and write-backs of dirty LLC victims.
//!
//! Coherence is modelled at the level that matters for trace filtering
//! (a MESI/MOESI substitute): a write by one core invalidates the line in
//! every other core's L1; an invalidated dirty line is folded into the LLC
//! so its eventual write-back is not lost.

use hybridmem_types::{Access, AccessKind, Address, PageAccess};
use serde::{Deserialize, Serialize};

use crate::{CacheStats, CotsonConfig, SetAssociativeCache};

/// One main-memory transaction produced by the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryEvent {
    /// Demand fill of a line after an LLC miss.
    Fill(Address),
    /// Write-back of a dirty LLC victim.
    WriteBack(Address),
}

impl MemoryEvent {
    /// The byte address of the transaction.
    #[must_use]
    pub const fn address(self) -> Address {
        match self {
            Self::Fill(a) | Self::WriteBack(a) => a,
        }
    }

    /// Converts the transaction into the page-granular access the memory
    /// manager sees (fills are reads of memory; write-backs are writes).
    #[must_use]
    pub fn to_page_access(self) -> PageAccess {
        match self {
            Self::Fill(a) => PageAccess::read(hybridmem_types::page_of(a)),
            Self::WriteBack(a) => PageAccess::write(hybridmem_types::page_of(a)),
        }
    }
}

/// Aggregate statistics of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Summed private-L1 statistics.
    pub l1: CacheStats,
    /// Shared-LLC statistics.
    pub llc: CacheStats,
    /// Demand fills sent to main memory.
    pub memory_fills: u64,
    /// Write-backs sent to main memory.
    pub memory_writebacks: u64,
}

impl HierarchyStats {
    /// Total main-memory transactions.
    #[must_use]
    pub const fn memory_accesses(&self) -> u64 {
        self.memory_fills + self.memory_writebacks
    }
}

/// Private-L1s + shared-LLC hierarchy.
///
/// # Examples
///
/// ```
/// use hybridmem_cachesim::{CacheHierarchy, CotsonConfig};
/// use hybridmem_types::{Access, Address, CoreId};
///
/// let mut hierarchy = CacheHierarchy::new(CotsonConfig::date2016())?;
/// let events = hierarchy.access(Access::read(Address::new(0x1000), CoreId::new(0)));
/// assert_eq!(events.len(), 1, "cold miss reaches memory");
/// let events = hierarchy.access(Access::read(Address::new(0x1000), CoreId::new(0)));
/// assert!(events.is_empty(), "L1 hit is invisible to memory");
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: CotsonConfig,
    l1d: Vec<SetAssociativeCache>,
    llc: SetAssociativeCache,
    fills: u64,
    writebacks: u64,
}

impl CacheHierarchy {
    /// Creates the hierarchy for a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`hybridmem_types::Error::InvalidConfig`] when the
    /// configuration fails [`CotsonConfig::validate`].
    pub fn new(config: CotsonConfig) -> hybridmem_types::Result<Self> {
        config.validate()?;
        Ok(Self {
            l1d: (0..config.cores)
                .map(|_| SetAssociativeCache::new(config.l1d))
                .collect(),
            llc: SetAssociativeCache::new(config.llc),
            config,
            fills: 0,
            writebacks: 0,
        })
    }

    /// The active configuration.
    #[must_use]
    pub const fn config(&self) -> &CotsonConfig {
        &self.config
    }

    /// Runs one CPU access through the hierarchy, returning the
    /// main-memory transactions it caused (possibly none), in order.
    ///
    /// Cores outside the configured range are clamped onto the available
    /// L1s (`core % cores`), so traces generated for a different core count
    /// remain usable.
    pub fn access(&mut self, access: Access) -> Vec<MemoryEvent> {
        let mut events = Vec::new();
        let core = usize::from(access.core.index()) % self.l1d.len();

        // Coherence: a write invalidates every other core's copy; a dirty
        // remote copy is folded into the LLC (dirty) so it is not lost.
        if access.kind.is_write() {
            let mut dirty_remote = false;
            for (i, l1) in self.l1d.iter_mut().enumerate() {
                if i != core {
                    if let Some(dirty) = l1.invalidate(access.address) {
                        dirty_remote |= dirty;
                    }
                }
            }
            if dirty_remote {
                self.merge_dirty_into_llc(access.address, &mut events);
            }
        }

        let l1_result = self.l1d[core].access(access.address, access.kind);
        if let Some(evicted) = l1_result.evicted {
            if evicted.dirty {
                // Write-back into the LLC (write-allocate there).
                self.merge_dirty_into_llc(evicted.address, &mut events);
            }
        }
        if !l1_result.hit {
            // Fetch the line through the LLC.
            let llc_result = self.llc.access(access.address, AccessKind::Read);
            if let Some(evicted) = llc_result.evicted {
                if evicted.dirty {
                    self.writebacks += 1;
                    events.push(MemoryEvent::WriteBack(evicted.address));
                }
            }
            if !llc_result.hit {
                self.fills += 1;
                // Memory transactions are line-granular: report the base
                // address of the line being fetched.
                let line = u64::from(self.config.llc.line_size);
                let base = access.address.value() / line * line;
                events.push(MemoryEvent::Fill(Address::new(base)));
            }
        }
        events
    }

    /// Installs/dirties `address` in the LLC, forwarding any dirty victim
    /// to memory.
    fn merge_dirty_into_llc(&mut self, address: Address, events: &mut Vec<MemoryEvent>) {
        let result = self.llc.access(address, AccessKind::Write);
        if let Some(evicted) = result.evicted {
            if evicted.dirty {
                self.writebacks += 1;
                events.push(MemoryEvent::WriteBack(evicted.address));
            }
        }
        // An LLC miss here means the write-back allocated its line in the
        // LLC; no memory fill is needed because the L1 held the only valid
        // copy of the data.
    }

    /// Flushes the whole hierarchy: every dirty L1 line folds into the
    /// LLC, then every dirty LLC line is written back to memory. Returns
    /// the resulting memory transactions; the caches are left empty.
    ///
    /// Call at end of trace so the memory-side trace contains the write
    /// traffic still buffered in the caches — otherwise a write-heavy
    /// workload's final stores silently vanish.
    pub fn flush(&mut self) -> Vec<MemoryEvent> {
        let mut events = Vec::new();
        let drained: Vec<_> = self
            .l1d
            .iter_mut()
            .flat_map(SetAssociativeCache::drain)
            .collect();
        for line in drained {
            if line.dirty {
                self.merge_dirty_into_llc(line.address, &mut events);
            }
        }
        for line in self.llc.drain() {
            if line.dirty {
                self.writebacks += 1;
                events.push(MemoryEvent::WriteBack(line.address));
            }
        }
        events
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        let mut l1 = CacheStats::default();
        for cache in &self.l1d {
            let s = cache.stats();
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.writebacks += s.writebacks;
            l1.invalidations += s.invalidations;
        }
        HierarchyStats {
            l1,
            llc: *self.llc.stats(),
            memory_fills: self.fills,
            memory_writebacks: self.writebacks,
        }
    }
}

/// Filters a CPU-level access stream into the page-granular main-memory
/// trace the migration policies consume.
///
/// # Examples
///
/// ```
/// use hybridmem_cachesim::{filter_to_memory_trace, CotsonConfig};
/// use hybridmem_trace::{parsec, TraceGenerator};
///
/// let spec = parsec::spec("bodytrack")?.capped(20_000);
/// let cpu_trace = TraceGenerator::new(spec, 1);
/// let (memory_trace, stats) =
///     filter_to_memory_trace(cpu_trace, CotsonConfig::date2016())?;
/// assert_eq!(memory_trace.len() as u64, stats.memory_accesses());
/// assert!(memory_trace.len() < 20_000, "caches absorb most accesses");
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
///
/// # Errors
///
/// Returns [`hybridmem_types::Error::InvalidConfig`] when the configuration
/// is invalid.
pub fn filter_to_memory_trace<I>(
    accesses: I,
    config: CotsonConfig,
) -> hybridmem_types::Result<(Vec<PageAccess>, HierarchyStats)>
where
    I: IntoIterator<Item = Access>,
{
    let mut hierarchy = CacheHierarchy::new(config)?;
    let mut trace = Vec::new();
    for access in accesses {
        for event in hierarchy.access(access) {
            trace.push(event.to_page_access());
        }
    }
    // Final flush: dirty lines still cached must reach memory or the
    // write-back traffic of the trace's tail is lost.
    for event in hierarchy.flush() {
        trace.push(event.to_page_access());
    }
    Ok((trace, hierarchy.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheGeometry;
    use hybridmem_types::CoreId;

    /// A tiny hierarchy: 2 cores, 128 B L1 (2 sets × 1 way), 256 B LLC.
    fn tiny() -> CacheHierarchy {
        let l1 = CacheGeometry::new(128, 1, 64).unwrap();
        let llc = CacheGeometry::new(256, 2, 64).unwrap();
        CacheHierarchy::new(CotsonConfig {
            cores: 2,
            l1d: l1,
            l1i: l1,
            llc,
        })
        .unwrap()
    }

    fn read(addr: u64, core: u16) -> Access {
        Access::read(Address::new(addr), CoreId::new(core))
    }

    fn write(addr: u64, core: u16) -> Access {
        Access::write(Address::new(addr), CoreId::new(core))
    }

    #[test]
    fn cold_miss_fills_from_memory() {
        let mut h = tiny();
        let events = h.access(read(0, 0));
        assert_eq!(events, vec![MemoryEvent::Fill(Address::new(0))]);
        assert!(h.access(read(32, 0)).is_empty(), "L1 hit");
        assert_eq!(h.stats().memory_fills, 1);
    }

    #[test]
    fn llc_absorbs_l1_misses() {
        let mut h = tiny();
        h.access(read(0, 0)); // fill via LLC
                              // Evict line 0 from core 0's L1 (same L1 set: line numbers ≡ 0 mod 2).
        h.access(read(128, 0));
        // Line 0 is gone from L1 but still in the LLC → no memory event.
        let events = h.access(read(0, 0));
        assert!(events.is_empty(), "LLC hit: {events:?}");
    }

    #[test]
    fn dirty_llc_eviction_writes_back_to_memory() {
        let mut h = tiny();
        h.access(write(0, 0));
        // Push the dirty line out of L1 (write-back into LLC)...
        h.access(read(128, 0));
        // ...then out of the LLC: lines 0,128 in LLC set 0; add 256 and 384
        // (set 0) to force eviction of line 0.
        let mut wrote_back = false;
        for addr in [256u64, 384, 512] {
            for e in h.access(read(addr, 0)) {
                if e == MemoryEvent::WriteBack(Address::new(0)) {
                    wrote_back = true;
                }
            }
        }
        assert!(wrote_back, "dirty line 0 must eventually reach memory");
        assert!(h.stats().memory_writebacks >= 1);
    }

    #[test]
    fn write_invalidates_other_cores() {
        let mut h = tiny();
        h.access(read(0, 0));
        h.access(read(0, 1));
        assert_eq!(h.stats().l1.misses, 2);
        h.access(write(0, 1));
        // Core 0's copy is gone: its next read misses L1 (but hits LLC).
        let events = h.access(read(0, 0));
        assert!(events.is_empty(), "LLC still holds the line");
        let stats = h.stats();
        assert_eq!(stats.l1.invalidations, 1);
        assert_eq!(stats.l1.misses, 3);
    }

    #[test]
    fn remote_dirty_copy_survives_invalidation() {
        let mut h = tiny();
        h.access(write(0, 0)); // core 0 holds line 0 dirty
        h.access(write(0, 1)); // invalidates core 0's dirty copy → merged into LLC
                               // Evict line 0 from the LLC and check the data reaches memory.
        let mut wrote_back = false;
        for addr in [256u64, 384, 512, 640] {
            for e in h.access(read(addr, 0)) {
                if matches!(e, MemoryEvent::WriteBack(a) if a == Address::new(0)) {
                    wrote_back = true;
                }
            }
        }
        // Core 1 still holds its own dirty copy in L1; flush it too.
        h.access(read(128, 1));
        assert!(
            wrote_back || h.stats().memory_writebacks > 0,
            "dirty data must not be lost"
        );
    }

    #[test]
    fn events_map_to_page_accesses() {
        assert_eq!(
            MemoryEvent::Fill(Address::new(4096)).to_page_access(),
            PageAccess::read(hybridmem_types::PageId::new(1))
        );
        assert_eq!(
            MemoryEvent::WriteBack(Address::new(8192)).to_page_access(),
            PageAccess::write(hybridmem_types::PageId::new(2))
        );
        assert_eq!(
            MemoryEvent::Fill(Address::new(7)).address(),
            Address::new(7)
        );
    }

    #[test]
    fn core_ids_clamp_onto_available_l1s() {
        let mut h = tiny();
        // Core 5 on a 2-core hierarchy lands on L1 #1.
        h.access(read(0, 5));
        let events = h.access(read(0, 1));
        assert!(events.is_empty(), "same L1, so this is a hit");
    }

    #[test]
    fn flush_emits_buffered_write_backs() {
        let mut h = tiny();
        h.access(write(0, 0));
        h.access(write(64, 1));
        h.access(read(128, 0));
        let before = h.stats().memory_writebacks;
        let events = h.flush();
        assert!(events
            .iter()
            .all(|e| matches!(e, MemoryEvent::WriteBack(_))));
        let dirty_flushed = events.len() as u64;
        assert!(
            dirty_flushed >= 2,
            "both written lines must flush: {events:?}"
        );
        assert_eq!(h.stats().memory_writebacks, before + dirty_flushed);
        // The hierarchy is empty afterwards: everything misses again.
        let refetch = h.access(read(0, 0));
        assert_eq!(refetch, vec![MemoryEvent::Fill(Address::new(0))]);
    }

    #[test]
    fn flush_of_clean_hierarchy_is_empty() {
        let mut h = tiny();
        h.access(read(0, 0));
        h.access(read(64, 1));
        assert!(h.flush().is_empty());
    }

    #[test]
    fn memory_trace_counts_match_stats() {
        let mut h = tiny();
        let mut events = 0u64;
        for i in 0..500u64 {
            let access = if i % 7 == 0 {
                write(i * 64 % 2048, (i % 2) as u16)
            } else {
                read(i * 64 % 2048, (i % 2) as u16)
            };
            events += h.access(access).len() as u64;
        }
        assert_eq!(events, h.stats().memory_accesses());
    }
}
