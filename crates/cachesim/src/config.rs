//! Cache hierarchy configuration, defaulting to Table II of the paper.

use hybridmem_types::{Error, Result};
use serde::{Deserialize, Serialize};

/// Geometry of one set-associative cache.
///
/// # Examples
///
/// ```
/// use hybridmem_cachesim::CacheGeometry;
///
/// let l1 = CacheGeometry::new(32 * 1024, 4, 64)?;
/// assert_eq!(l1.sets(), 128);
/// assert_eq!(l1.lines(), 512);
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Line size in bytes (a power of two).
    pub line_size: u32,
}

impl CacheGeometry {
    /// Creates and validates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any field is zero, the line
    /// size is not a power of two, or the capacity is not an exact multiple
    /// of `associativity × line_size`.
    pub fn new(size_bytes: u64, associativity: u32, line_size: u32) -> Result<Self> {
        if size_bytes == 0 || associativity == 0 || line_size == 0 {
            return Err(Error::invalid_config(
                "cache size, associativity, and line size must be non-zero",
            ));
        }
        if !line_size.is_power_of_two() {
            return Err(Error::invalid_config(format!(
                "line size must be a power of two, got {line_size}"
            )));
        }
        let way_bytes = u64::from(associativity) * u64::from(line_size);
        if !size_bytes.is_multiple_of(way_bytes) {
            return Err(Error::invalid_config(format!(
                "cache size {size_bytes} is not a multiple of associativity×line ({way_bytes})"
            )));
        }
        Ok(Self {
            size_bytes,
            associativity,
            line_size,
        })
    }

    /// Number of sets.
    #[must_use]
    pub const fn sets(&self) -> u64 {
        self.size_bytes / (self.associativity as u64 * self.line_size as u64)
    }

    /// Total number of lines.
    #[must_use]
    pub const fn lines(&self) -> u64 {
        self.size_bytes / self.line_size as u64
    }
}

/// The simulated-platform configuration (Table II of the paper).
///
/// COTSon simulated a quad-core with split 32 KB 4-way L1 caches, a shared
/// 2 MB 16-way LLC, 64 B lines everywhere, and a 5 ms HDD. The L1
/// instruction cache is carried for fidelity but unused: synthetic traces
/// contain data accesses only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CotsonConfig {
    /// Number of CPU cores (each with private L1s).
    pub cores: u16,
    /// Per-core L1 data cache.
    pub l1d: CacheGeometry,
    /// Per-core L1 instruction cache (configured, unused by data traces).
    pub l1i: CacheGeometry,
    /// Shared last-level cache.
    pub llc: CacheGeometry,
}

impl CotsonConfig {
    /// The exact Table II configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// let c = hybridmem_cachesim::CotsonConfig::date2016();
    /// assert_eq!(c.cores, 4);
    /// assert_eq!(c.llc.size_bytes, 2 * 1024 * 1024);
    /// assert_eq!(c.llc.associativity, 16);
    /// ```
    #[must_use]
    pub fn date2016() -> Self {
        let l1 = CacheGeometry::new(32 * 1024, 4, 64).expect("Table II L1 geometry is valid");
        let llc =
            CacheGeometry::new(2 * 1024 * 1024, 16, 64).expect("Table II LLC geometry is valid");
        Self {
            cores: 4,
            l1d: l1,
            l1i: l1,
            llc,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when there are no cores or the L1
    /// and LLC line sizes differ (the hierarchy moves whole lines between
    /// levels).
    pub fn validate(&self) -> Result<()> {
        if self.cores == 0 {
            return Err(Error::invalid_config("at least one core is required"));
        }
        if self.l1d.line_size != self.llc.line_size {
            return Err(Error::invalid_config(format!(
                "L1 and LLC line sizes must match ({} vs {})",
                self.l1d.line_size, self.llc.line_size
            )));
        }
        Ok(())
    }
}

impl Default for CotsonConfig {
    /// Defaults to [`CotsonConfig::date2016`].
    fn default() -> Self {
        Self::date2016()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_geometry() {
        let c = CotsonConfig::date2016();
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.associativity, 4);
        assert_eq!(c.l1d.line_size, 64);
        assert_eq!(c.l1d.sets(), 128);
        assert_eq!(c.llc.sets(), 2048);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheGeometry::new(0, 4, 64).is_err());
        assert!(CacheGeometry::new(1024, 0, 64).is_err());
        assert!(CacheGeometry::new(1024, 4, 0).is_err());
        assert!(CacheGeometry::new(1024, 4, 48).is_err(), "non power of two");
        assert!(CacheGeometry::new(1000, 4, 64).is_err(), "not a multiple");
    }

    #[test]
    fn config_validation() {
        let mut c = CotsonConfig::date2016();
        c.cores = 0;
        assert!(c.validate().is_err());
        let mut c = CotsonConfig::date2016();
        c.llc = CacheGeometry::new(2 * 1024 * 1024, 16, 128).unwrap();
        assert!(c.validate().is_err(), "mismatched line sizes");
    }
}
