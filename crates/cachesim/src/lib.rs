//! Trace-driven multi-core cache hierarchy simulator — the COTSon
//! substitute of this reproduction.
//!
//! The paper obtains its main-memory traces by running PARSEC inside the
//! COTSon full-system simulator "since the multi-level caches in CPU affect
//! the distribution of accesses dispatched to the main memory". This crate
//! plays exactly that role for synthetic CPU traces:
//!
//! * [`CacheGeometry`] / [`CotsonConfig`] — cache configuration, with the
//!   Table II quad-core setup as [`CotsonConfig::date2016`];
//! * [`SetAssociativeCache`] — one write-back/write-allocate LRU cache;
//! * [`CacheHierarchy`] — per-core L1 data caches over a shared LLC with
//!   write-invalidate coherence;
//! * [`filter_to_memory_trace`] — the one-call pipeline from a CPU access
//!   stream to the page-granular main-memory trace consumed by
//!   `hybridmem-policy` / `hybridmem-core`.
//!
//! # Examples
//!
//! ```
//! use hybridmem_cachesim::{filter_to_memory_trace, CotsonConfig};
//! use hybridmem_trace::{parsec, TraceGenerator};
//!
//! let spec = parsec::spec("ferret")?.capped(5_000);
//! let (memory_trace, stats) = filter_to_memory_trace(
//!     TraceGenerator::new(spec, 7),
//!     CotsonConfig::date2016(),
//! )?;
//! assert!(stats.l1.hit_ratio() > 0.0);
//! assert!(memory_trace.len() < 5_000);
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod hierarchy;

pub use cache::{CacheAccessResult, CacheStats, EvictedLine, SetAssociativeCache};
pub use config::{CacheGeometry, CotsonConfig};
pub use hierarchy::{filter_to_memory_trace, CacheHierarchy, HierarchyStats, MemoryEvent};
