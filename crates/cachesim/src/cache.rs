//! A single set-associative, write-back/write-allocate cache with LRU sets.

use hybridmem_types::{AccessKind, Address};
use serde::{Deserialize, Serialize};

use crate::CacheGeometry;

/// A line resident in a set: its tag, dirty bit, and recency stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Value of the cache's access tick when this line was last touched.
    /// Ticks are unique per access, so the resident line with the smallest
    /// stamp is exactly the LRU way — no positional ordering needed.
    last_used: u64,
}

/// What happened on one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheAccessResult {
    /// True when the line was already resident.
    pub hit: bool,
    /// Line address evicted to make room, with its dirty state, when the
    /// access caused an eviction.
    pub evicted: Option<EvictedLine>,
}

/// An evicted cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Base address of the evicted line.
    pub address: Address,
    /// True when the line held modified data that must be written back to
    /// the next level.
    pub dirty: bool,
}

/// Hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty evictions (write-backs produced).
    pub writebacks: u64,
    /// Lines invalidated by coherence.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub const fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when no accesses were made.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A set-associative cache with per-set LRU replacement, write-back and
/// write-allocate semantics.
///
/// # Examples
///
/// ```
/// use hybridmem_cachesim::{CacheGeometry, SetAssociativeCache};
/// use hybridmem_types::{AccessKind, Address};
///
/// let mut cache = SetAssociativeCache::new(CacheGeometry::new(256, 2, 64)?);
/// let miss = cache.access(Address::new(0), AccessKind::Read);
/// assert!(!miss.hit);
/// let hit = cache.access(Address::new(32), AccessKind::Read); // same line
/// assert!(hit.hit);
/// # Ok::<(), hybridmem_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    geometry: CacheGeometry,
    /// `sets[s]` holds resident lines in arbitrary slot order; recency
    /// lives in each line's `last_used` stamp, so a hit updates one line
    /// in place instead of rotating the whole set (`Vec::remove` +
    /// `insert(0)` was O(associativity) data movement per hit).
    sets: Vec<Vec<Line>>,
    /// Monotonic access counter stamped into `Line::last_used`.
    tick: u64,
    stats: CacheStats,
}

impl SetAssociativeCache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        let sets = geometry.sets() as usize;
        Self {
            geometry,
            sets: vec![Vec::with_capacity(geometry.associativity as usize); sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub const fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub const fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn line_number(&self, address: Address) -> u64 {
        address.value() / u64::from(self.geometry.line_size)
    }

    fn set_and_tag(&self, address: Address) -> (usize, u64) {
        let line = self.line_number(address);
        let sets = self.geometry.sets();
        #[allow(clippy::cast_possible_truncation)]
        ((line % sets) as usize, line / sets)
    }

    #[cfg(test)]
    fn line_address(&self, set: usize, tag: u64) -> Address {
        let line = tag * self.geometry.sets() + set as u64;
        Address::new(line * u64::from(self.geometry.line_size))
    }

    /// Performs one access. Writes mark the line dirty; misses allocate the
    /// line (the caller fetches it from the next level) and may evict.
    pub fn access(&mut self, address: Address, kind: AccessKind) -> CacheAccessResult {
        let (set_idx, tag) = self.set_and_tag(address);
        let sets = self.geometry.sets();
        let line_size = u64::from(self.geometry.line_size);
        let associativity = self.geometry.associativity as usize;
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.dirty |= kind.is_write();
            line.last_used = tick;
            self.stats.hits += 1;
            return CacheAccessResult {
                hit: true,
                evicted: None,
            };
        }
        self.stats.misses += 1;
        let incoming = Line {
            tag,
            dirty: kind.is_write(),
            last_used: tick,
        };
        if set.len() < associativity {
            set.push(incoming);
            return CacheAccessResult {
                hit: false,
                evicted: None,
            };
        }
        let victim_pos = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.last_used)
            .map(|(pos, _)| pos)
            .expect("full set has a victim");
        let victim = std::mem::replace(&mut set[victim_pos], incoming);
        if victim.dirty {
            self.stats.writebacks += 1;
        }
        let line = victim.tag * sets + set_idx as u64;
        CacheAccessResult {
            hit: false,
            evicted: Some(EvictedLine {
                address: Address::new(line * line_size),
                dirty: victim.dirty,
            }),
        }
    }

    /// True when the line containing `address` is resident.
    #[must_use]
    pub fn contains(&self, address: Address) -> bool {
        let (set_idx, tag) = self.set_and_tag(address);
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }

    /// Invalidates the line containing `address` (coherence), returning the
    /// line's dirty state if it was resident.
    pub fn invalidate(&mut self, address: Address) -> Option<bool> {
        let (set_idx, tag) = self.set_and_tag(address);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|l| l.tag == tag)?;
        // Slot order carries no meaning, so the O(1) removal is safe.
        let line = set.swap_remove(pos);
        self.stats.invalidations += 1;
        Some(line.dirty)
    }

    /// Number of resident lines (diagnostics).
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Empties the cache, returning every line's base address and dirty
    /// state (used to flush outstanding write-backs at end of trace).
    pub fn drain(&mut self) -> Vec<EvictedLine> {
        let sets_count = self.geometry.sets();
        let line_size = u64::from(self.geometry.line_size);
        let mut drained = Vec::with_capacity(self.resident_lines());
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            // Emit each set MRU-first, matching the positional ordering
            // this cache historically kept, so flush-time write-back
            // streams are unchanged.
            set.sort_unstable_by(|a, b| b.last_used.cmp(&a.last_used));
            for line in set.drain(..) {
                let number = line.tag * sets_count + set_idx as u64;
                drained.push(EvictedLine {
                    address: Address::new(number * line_size),
                    dirty: line.dirty,
                });
            }
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssociativeCache {
        // 2 sets × 2 ways × 64 B lines = 256 B.
        SetAssociativeCache::new(CacheGeometry::new(256, 2, 64).unwrap())
    }

    #[test]
    fn same_line_hits() {
        let mut c = tiny();
        assert!(!c.access(Address::new(0), AccessKind::Read).hit);
        assert!(c.access(Address::new(63), AccessKind::Read).hit);
        assert!(
            !c.access(Address::new(64), AccessKind::Read).hit,
            "next line"
        );
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_within_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (line % 2 == 0).
        c.access(Address::new(0), AccessKind::Read);
        c.access(Address::new(128), AccessKind::Read);
        c.access(Address::new(0), AccessKind::Read); // line 0 MRU
        let res = c.access(Address::new(256), AccessKind::Read);
        let evicted = res.evicted.expect("set was full");
        assert_eq!(evicted.address, Address::new(128), "LRU way evicted");
        assert!(!evicted.dirty);
        assert!(c.contains(Address::new(0)));
        assert!(!c.contains(Address::new(128)));
    }

    #[test]
    fn write_back_on_dirty_eviction() {
        let mut c = tiny();
        c.access(Address::new(0), AccessKind::Write);
        c.access(Address::new(128), AccessKind::Read);
        let res = c.access(Address::new(256), AccessKind::Read);
        let evicted = res.evicted.expect("eviction");
        assert_eq!(evicted.address, Address::new(0));
        assert!(evicted.dirty, "written line must be written back");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_dirties_line() {
        let mut c = tiny();
        c.access(Address::new(0), AccessKind::Read);
        c.access(Address::new(8), AccessKind::Write); // hit, dirties
        c.access(Address::new(128), AccessKind::Read);
        let res = c.access(Address::new(256), AccessKind::Read);
        assert!(res.evicted.expect("eviction").dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(Address::new(0), AccessKind::Write);
        assert_eq!(
            c.invalidate(Address::new(32)),
            Some(true),
            "same line, dirty"
        );
        assert_eq!(c.invalidate(Address::new(0)), None, "already gone");
        assert!(!c.contains(Address::new(0)));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn hit_ratio_math() {
        let mut c = tiny();
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.access(Address::new(0), AccessKind::Read);
        c.access(Address::new(0), AccessKind::Read);
        c.access(Address::new(0), AccessKind::Read);
        c.access(Address::new(64), AccessKind::Read);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resident_lines_bounded_by_capacity() {
        let mut c = tiny();
        for i in 0..100u64 {
            c.access(Address::new(i * 64), AccessKind::Read);
            assert!(c.resident_lines() <= 4);
        }
    }

    #[test]
    fn drain_is_mru_first_per_set() {
        let mut c = tiny();
        c.access(Address::new(128), AccessKind::Write); // set 0, older
        c.access(Address::new(0), AccessKind::Read); // set 0, newer
        c.access(Address::new(0), AccessKind::Read);
        let drained = c.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].address, Address::new(0), "MRU drains first");
        assert_eq!(drained[1].address, Address::new(128));
        assert!(drained[1].dirty);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn matches_reference_lru_order() {
        // Deterministic pseudo-random stream (LCG) cross-checked against a
        // positional MRU-first reference model: the timestamp scheme must
        // hit, miss, and evict identically.
        let mut c = tiny();
        let mut reference: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        let mut state = 0x2545_F491_4F6C_DD1D_u64;
        for _ in 0..2_000 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let line = (state >> 33) % 16;
            let kind = if state & 1 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let res = c.access(Address::new(line * 64), kind);
            #[allow(clippy::cast_possible_truncation)]
            let (set, tag) = ((line % 2) as usize, line / 2);
            let model = &mut reference[set];
            if let Some(pos) = model.iter().position(|&t| t == tag) {
                let t = model.remove(pos);
                model.insert(0, t);
                assert!(res.hit);
                assert!(res.evicted.is_none());
            } else {
                assert!(!res.hit);
                if model.len() == 2 {
                    let victim = model.pop().expect("full model set");
                    let evicted = res.evicted.expect("full set evicts");
                    assert_eq!(evicted.address.value(), (victim * 2 + set as u64) * 64);
                } else {
                    assert!(res.evicted.is_none());
                }
                model.insert(0, tag);
            }
        }
    }

    #[test]
    fn set_tag_roundtrip() {
        let c = tiny();
        for addr in [0u64, 64, 128, 4096, 65536 + 192] {
            let (set, tag) = c.set_and_tag(Address::new(addr));
            let base = c.line_address(set, tag);
            assert_eq!(base.value(), addr / 64 * 64);
        }
    }
}
