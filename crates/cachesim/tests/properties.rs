//! Property-based tests for the cache simulator: capacity bounds, hit
//! semantics, coherence, and conservation of memory traffic.

use proptest::prelude::*;

use hybridmem_cachesim::{
    CacheGeometry, CacheHierarchy, CotsonConfig, MemoryEvent, SetAssociativeCache,
};
use hybridmem_types::{Access, AccessKind, Address, CoreId};

fn geometry_strategy() -> impl Strategy<Value = CacheGeometry> {
    (
        1u32..=8,
        prop::sample::select(vec![32u32, 64, 128]),
        1u64..=16,
    )
        .prop_map(|(ways, line, sets)| {
            CacheGeometry::new(u64::from(ways) * u64::from(line) * sets, ways, line)
                .expect("constructed geometry is valid")
        })
}

fn access_strategy(address_space: u64) -> impl Strategy<Value = (u64, bool, u16)> {
    (0..address_space, prop::bool::ANY, 0u16..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A single cache never exceeds its line capacity, and an access to a
    /// just-accessed line always hits.
    #[test]
    fn cache_capacity_and_rehit(
        geometry in geometry_strategy(),
        accesses in prop::collection::vec(access_strategy(1 << 16), 1..300),
    ) {
        let mut cache = SetAssociativeCache::new(geometry);
        for (addr, is_write, _) in accesses {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            cache.access(Address::new(addr), kind);
            prop_assert!(cache.resident_lines() as u64 <= geometry.lines());
            prop_assert!(cache.contains(Address::new(addr)));
            let again = cache.access(Address::new(addr), AccessKind::Read);
            prop_assert!(again.hit, "immediate re-access must hit");
        }
        let stats = cache.stats();
        prop_assert!(stats.writebacks <= stats.misses, "write-backs only happen on miss evictions");
    }

    /// Hierarchy invariants: emitted memory events match the counters; a
    /// line is never filled twice in a row without eviction pressure; the
    /// memory only ever sees line-aligned addresses.
    #[test]
    fn hierarchy_conserves_traffic(
        accesses in prop::collection::vec(access_strategy(1 << 18), 1..400),
    ) {
        let mut hierarchy = CacheHierarchy::new(CotsonConfig::date2016()).unwrap();
        let mut events = 0u64;
        for (addr, is_write, core) in accesses {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            for event in hierarchy.access(Access::new(Address::new(addr), kind, CoreId::new(core))) {
                events += 1;
                prop_assert_eq!(event.address().value() % 64, 0, "line-aligned traffic");
                if let MemoryEvent::Fill(a) = event {
                    // A fill is always for the line being accessed.
                    prop_assert_eq!(a.value(), addr / 64 * 64);
                }
            }
        }
        let stats = hierarchy.stats();
        prop_assert_eq!(events, stats.memory_accesses());
        prop_assert!(stats.llc.accesses() <= stats.l1.misses + stats.l1.writebacks + stats.l1.invalidations,
            "LLC traffic comes from L1 misses, write-backs, and coherence folds");
    }

    /// Coherence: after a write by one core, no other core's L1 hits that
    /// line without refetching (we can only observe this indirectly — the
    /// write count of invalidations grows monotonically).
    #[test]
    fn writes_invalidate_sharers(
        addr in (0u64..1 << 12).prop_map(|a| a * 64),
        readers in 1u16..4,
    ) {
        let mut hierarchy = CacheHierarchy::new(CotsonConfig::date2016()).unwrap();
        for core in 0..=readers {
            hierarchy.access(Access::read(Address::new(addr), CoreId::new(core)));
        }
        let before = hierarchy.stats().l1.invalidations;
        hierarchy.access(Access::write(Address::new(addr), CoreId::new(0)));
        let after = hierarchy.stats().l1.invalidations;
        prop_assert_eq!(after - before, u64::from(readers), "every sharer is invalidated");
    }
}
