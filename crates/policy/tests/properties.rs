//! Property-based tests for the policy crate's data structures and
//! policies, checking the invariants called out in `DESIGN.md`.

use std::collections::HashSet;

use proptest::prelude::*;

use hybridmem_policy::{
    AdaptiveConfig, AdaptiveTwoLruPolicy, ClockDwfPolicy, ClockProPolicy, ClockRing,
    DramCachePolicy, HybridPolicy, RankedLru, SingleTierPolicy, TwoLruConfig, TwoLruPolicy,
};
use hybridmem_types::{AccessKind, MemoryKind, PageAccess, PageCount, PageId, Residency};

/// Operations applied to both `RankedLru` and a naive Vec-backed model.
#[derive(Debug, Clone)]
enum LruOp {
    Touch(u64),
    Insert(u64),
    EvictLru,
    Remove(u64),
}

fn lru_op_strategy(page_universe: u64) -> impl Strategy<Value = LruOp> {
    prop_oneof![
        (0..page_universe).prop_map(LruOp::Touch),
        (0..page_universe).prop_map(LruOp::Insert),
        Just(LruOp::EvictLru),
        (0..page_universe).prop_map(LruOp::Remove),
    ]
}

/// Naive LRU model: Vec with MRU at the back.
#[derive(Default)]
struct NaiveLru(Vec<u64>);

impl NaiveLru {
    fn touch(&mut self, p: u64) -> bool {
        if let Some(pos) = self.0.iter().position(|&x| x == p) {
            self.0.remove(pos);
            self.0.push(p);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, p: u64) {
        self.0.push(p);
    }

    fn evict(&mut self) -> Option<u64> {
        if self.0.is_empty() {
            None
        } else {
            Some(self.0.remove(0))
        }
    }

    fn remove(&mut self, p: u64) -> bool {
        if let Some(pos) = self.0.iter().position(|&x| x == p) {
            self.0.remove(pos);
            true
        } else {
            false
        }
    }

    fn rank(&self, p: u64) -> Option<usize> {
        self.0.iter().rev().position(|&x| x == p)
    }

    fn by_recency(&self) -> Vec<u64> {
        self.0.iter().rev().copied().collect()
    }
}

proptest! {
    /// `RankedLru` is observationally identical to the naive model under
    /// arbitrary operation sequences, including rank queries.
    #[test]
    fn ranked_lru_matches_naive_model(
        ops in prop::collection::vec(lru_op_strategy(16), 1..300),
    ) {
        let mut lru = RankedLru::new();
        let mut model = NaiveLru::default();
        for op in ops {
            match op {
                LruOp::Touch(p) => {
                    prop_assert_eq!(lru.touch(PageId::new(p)), model.touch(p));
                }
                LruOp::Insert(p) => {
                    if !model.0.contains(&p) {
                        lru.insert(PageId::new(p));
                        model.insert(p);
                    }
                }
                LruOp::EvictLru => {
                    prop_assert_eq!(
                        lru.evict_lru().map(|p| p.value()),
                        model.evict()
                    );
                }
                LruOp::Remove(p) => {
                    prop_assert_eq!(lru.remove(PageId::new(p)), model.remove(p));
                }
            }
            prop_assert_eq!(lru.len(), model.0.len());
            for &p in &model.0 {
                prop_assert_eq!(lru.rank(PageId::new(p)), model.rank(p));
            }
            let got: Vec<u64> = lru.pages_by_recency().iter().map(|p| p.value()).collect();
            prop_assert_eq!(got, model.by_recency());
        }
    }

    /// `SingleTierPolicy` produces exactly the hit/miss/eviction sequence of
    /// a plain LRU of the same capacity.
    #[test]
    fn single_tier_is_plain_lru(
        capacity in 1u64..12,
        pages in prop::collection::vec(0u64..24, 1..250),
    ) {
        let mut policy = SingleTierPolicy::dram_only(PageCount::new(capacity)).unwrap();
        let mut model = NaiveLru::default();
        for p in pages {
            let out = policy.on_access(PageAccess::read(PageId::new(p)));
            let model_hit = model.touch(p);
            prop_assert_eq!(!out.fault, model_hit);
            if !model_hit {
                if model.0.len() as u64 >= capacity {
                    model.evict();
                }
                model.insert(p);
            }
            prop_assert_eq!(policy.occupancy(MemoryKind::Dram), model.0.len() as u64);
        }
    }

    /// Hybrid-policy safety invariants hold for the proposed scheme under
    /// arbitrary access streams:
    /// occupancies never exceed capacities; the accessed page is resident
    /// afterwards; an access faults iff the page was not resident before;
    /// NVM only ever holds pages once DRAM is full.
    #[test]
    fn two_lru_invariants(
        dram_cap in 1u64..6,
        nvm_cap in 1u64..12,
        accesses in prop::collection::vec((0u64..32, prop::bool::ANY), 1..400),
    ) {
        let config = TwoLruConfig::new(
            PageCount::new(dram_cap),
            PageCount::new(nvm_cap),
        ).unwrap();
        let mut policy = TwoLruPolicy::new(config);
        let mut resident: HashSet<u64> = HashSet::new();
        for (p, is_write) in accesses {
            let page = PageId::new(p);
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let was_resident = resident.contains(&p);
            let out = policy.on_access(PageAccess::new(page, kind));

            prop_assert_eq!(out.fault, !was_resident);
            prop_assert!(policy.residency(page).is_resident());
            prop_assert!(policy.occupancy(MemoryKind::Dram) <= dram_cap);
            prop_assert!(policy.occupancy(MemoryKind::Nvm) <= nvm_cap);
            if policy.occupancy(MemoryKind::Nvm) > 0 {
                prop_assert_eq!(
                    policy.occupancy(MemoryKind::Dram), dram_cap,
                    "NVM population implies a full DRAM"
                );
            }

            // Maintain the external residency model from the outcome.
            resident.insert(p);
            for action in &out.actions {
                if let hybridmem_policy::PolicyAction::EvictToDisk { page, .. } = action {
                    resident.remove(&page.value());
                }
            }
            prop_assert_eq!(resident.len() as u64,
                policy.occupancy(MemoryKind::Dram) + policy.occupancy(MemoryKind::Nvm));
        }
    }

    /// The same safety invariants for CLOCK-DWF, plus its defining property:
    /// no demand write is ever serviced by NVM.
    #[test]
    fn clock_dwf_invariants(
        dram_cap in 1u64..6,
        nvm_cap in 1u64..12,
        accesses in prop::collection::vec((0u64..32, prop::bool::ANY), 1..400),
    ) {
        let mut policy = ClockDwfPolicy::new(
            PageCount::new(dram_cap),
            PageCount::new(nvm_cap),
        ).unwrap();
        let mut resident: HashSet<u64> = HashSet::new();
        for (p, is_write) in accesses {
            let page = PageId::new(p);
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let was_resident = resident.contains(&p);
            let out = policy.on_access(PageAccess::new(page, kind));

            prop_assert_eq!(out.fault, !was_resident);
            if kind.is_write() {
                prop_assert_ne!(out.served_from, Some(MemoryKind::Nvm));
                // After a write the page always sits in DRAM.
                prop_assert_eq!(policy.residency(page), Residency::InMemory(MemoryKind::Dram));
            }
            prop_assert!(policy.occupancy(MemoryKind::Dram) <= dram_cap);
            prop_assert!(policy.occupancy(MemoryKind::Nvm) <= nvm_cap);

            resident.insert(p);
            for action in &out.actions {
                if let hybridmem_policy::PolicyAction::EvictToDisk { page, .. } = action {
                    resident.remove(&page.value());
                }
            }
            prop_assert_eq!(resident.len() as u64,
                policy.occupancy(MemoryKind::Dram) + policy.occupancy(MemoryKind::Nvm));
        }
    }

    /// The clock ring never exceeds capacity, evicts only resident pages,
    /// and forgets evicted pages.
    #[test]
    fn clock_ring_invariants(
        capacity in 1usize..8,
        ops in prop::collection::vec((0u64..16, prop::bool::ANY), 1..200),
    ) {
        let mut ring: ClockRing<u32> = ClockRing::new(capacity);
        for (p, evict_first) in ops {
            let page = PageId::new(p);
            if ring.contains(page) {
                ring.touch(page);
                continue;
            }
            if ring.is_full() || (evict_first && !ring.is_empty()) {
                let (victim, _) = ring.evict_with(|m| {
                    if *m > 0 { *m -= 1; true } else { false }
                });
                prop_assert!(!ring.contains(victim));
            }
            if !ring.is_full() {
                ring.insert(page, 2);
            }
            prop_assert!(ring.len() <= ring.capacity());
            prop_assert!(ring.hand() < ring.capacity());
        }
    }

    /// The proposed scheme only stores promotion counters for NVM-resident
    /// pages (the "housekeeping information" of Fig. 3 lives in the NVM
    /// queue alone).
    #[test]
    fn counters_only_exist_for_nvm_pages(
        accesses in prop::collection::vec((0u64..16, prop::bool::ANY), 1..300),
    ) {
        let config = TwoLruConfig::new(PageCount::new(2), PageCount::new(6)).unwrap();
        let mut policy = TwoLruPolicy::new(config);
        for (p, is_write) in accesses {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            policy.on_access(PageAccess::new(PageId::new(p), kind));
            for q in 0..16u64 {
                let page = PageId::new(q);
                if policy.counters_of(page).is_some() {
                    prop_assert_eq!(
                        policy.residency(page),
                        Residency::InMemory(MemoryKind::Nvm),
                        "page {} has counters but is not NVM-resident", q
                    );
                }
            }
        }
    }
}

/// Shared safety invariants every hybrid policy must uphold: bounded
/// occupancy, fault-iff-not-resident, and the accessed page resident
/// afterwards.
fn check_policy_invariants(
    policy: &mut dyn HybridPolicy,
    dram_cap: u64,
    nvm_cap: u64,
    accesses: &[(u64, bool)],
) -> Result<(), TestCaseError> {
    let mut resident: HashSet<u64> = HashSet::new();
    for &(p, is_write) in accesses {
        let page = PageId::new(p);
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let was_resident = resident.contains(&p);
        let out = policy.on_access(PageAccess::new(page, kind));
        prop_assert_eq!(out.fault, !was_resident, "page {}", p);
        prop_assert!(policy.residency(page).is_resident());
        prop_assert!(policy.occupancy(MemoryKind::Dram) <= dram_cap);
        prop_assert!(policy.occupancy(MemoryKind::Nvm) <= nvm_cap);
        resident.insert(p);
        for action in &out.actions {
            if let hybridmem_policy::PolicyAction::EvictToDisk { page, .. } = action {
                resident.remove(&page.value());
            }
        }
    }
    Ok(())
}

proptest! {
    /// CLOCK-Pro-lite upholds the shared safety invariants.
    #[test]
    fn clock_pro_invariants(
        dram_cap in 1u64..6,
        nvm_cap in 1u64..12,
        accesses in prop::collection::vec((0u64..32, prop::bool::ANY), 1..400),
    ) {
        let mut policy = ClockProPolicy::new(
            PageCount::new(dram_cap), PageCount::new(nvm_cap)).unwrap();
        check_policy_invariants(&mut policy, dram_cap, nvm_cap, &accesses)?;
    }

    /// The DRAM-cache architecture upholds the shared safety invariants;
    /// note its DRAM holds *copies*, so the resident set is tracked by the
    /// NVM backing store alone.
    #[test]
    fn dram_cache_invariants(
        dram_cap in 1u64..6,
        nvm_cap in 1u64..12,
        accesses in prop::collection::vec((0u64..32, prop::bool::ANY), 1..400),
    ) {
        let mut policy = DramCachePolicy::new(
            PageCount::new(dram_cap), PageCount::new(nvm_cap)).unwrap();
        check_policy_invariants(&mut policy, dram_cap, nvm_cap, &accesses)?;
    }

    /// The adaptive extension upholds the shared safety invariants and its
    /// thresholds stay within the configured cap.
    #[test]
    fn adaptive_two_lru_invariants(
        dram_cap in 1u64..6,
        nvm_cap in 1u64..12,
        accesses in prop::collection::vec((0u64..32, prop::bool::ANY), 1..400),
    ) {
        let config = TwoLruConfig::new(
            PageCount::new(dram_cap), PageCount::new(nvm_cap)).unwrap();
        let adaptive = AdaptiveConfig { adjust_interval: 4, ..AdaptiveConfig::default() };
        let mut policy = AdaptiveTwoLruPolicy::new(config, adaptive);
        check_policy_invariants(&mut policy, dram_cap, nvm_cap, &accesses)?;
        let (read, write) = policy.thresholds();
        prop_assert!(read >= 1 && read <= adaptive.max_threshold);
        prop_assert!(write >= 1 && write <= adaptive.max_threshold);
        let stats = policy.stats();
        prop_assert!(stats.raises + stats.lowers
            <= stats.beneficial_promotions + stats.wasted_promotions);
    }
}
