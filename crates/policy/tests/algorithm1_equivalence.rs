//! Differential test of the window-reset equivalence claim.
//!
//! `TwoLruPolicy` resets promotion counters *lazily* (at a page's next hit,
//! by rank comparison) and documents that this is observationally identical
//! to Algorithm 1's *eager* resets (counters cleared the moment a page
//! slides past the `readperc`/`writeperc` boundary). This test implements
//! Algorithm 1 literally — O(n) Vec-based LRU queues with eager boundary
//! zeroing after every queue movement — and checks both policies produce
//! byte-identical [`AccessOutcome`]s on arbitrary access streams.

use std::collections::HashMap;

use proptest::prelude::*;

use hybridmem_policy::{AccessOutcome, HybridPolicy, PolicyAction, TwoLruConfig, TwoLruPolicy};
use hybridmem_types::{AccessKind, MemoryKind, PageAccess, PageCount, PageId};

/// Literal, eager-reset implementation of Algorithm 1. MRU at the front.
struct NaiveTwoLru {
    config: TwoLruConfig,
    dram: Vec<PageId>,
    nvm: Vec<PageId>,
    counters: HashMap<PageId, (u32, u32)>,
}

impl NaiveTwoLru {
    fn new(config: TwoLruConfig) -> Self {
        Self {
            config,
            dram: Vec::new(),
            nvm: Vec::new(),
            counters: HashMap::new(),
        }
    }

    /// Eager boundary zeroing: clear the read counter of every NVM page at
    /// or past the read window, and likewise for writes (lines 8–9 of
    /// Algorithm 1, applied exhaustively).
    fn eager_reset(&mut self) {
        let read_window = self.config.read_window_pages();
        let write_window = self.config.write_window_pages();
        for (position, page) in self.nvm.iter().enumerate() {
            let entry = self.counters.entry(*page).or_insert((0, 0));
            if position >= read_window {
                entry.0 = 0;
            }
            if position >= write_window {
                entry.1 = 0;
            }
        }
    }

    fn on_access(&mut self, access: PageAccess) -> AccessOutcome {
        let page = access.page;
        if let Some(pos) = self.dram.iter().position(|&p| p == page) {
            self.dram.remove(pos);
            self.dram.insert(0, page);
            return AccessOutcome::hit(MemoryKind::Dram);
        }
        if let Some(pos) = self.nvm.iter().position(|&p| p == page) {
            self.nvm.remove(pos);
            self.nvm.insert(0, page);
            self.eager_reset();
            let entry = self.counters.entry(page).or_insert((0, 0));
            let hot = match access.kind {
                AccessKind::Read => {
                    entry.0 += 1;
                    entry.0 > self.config.read_threshold
                }
                AccessKind::Write => {
                    entry.1 += 1;
                    entry.1 > self.config.write_threshold
                }
            };
            if !hot {
                return AccessOutcome::hit(MemoryKind::Nvm);
            }
            // Promote; swap with the DRAM LRU victim when DRAM is full.
            let mut actions = Vec::new();
            self.nvm.retain(|&p| p != page);
            self.counters.remove(&page);
            if self.dram.len() as u64 >= self.config.dram_capacity.value() {
                let victim = self.dram.pop().expect("full DRAM has a victim");
                self.nvm.insert(0, victim);
                actions.push(PolicyAction::Migrate {
                    page: victim,
                    from: MemoryKind::Dram,
                    to: MemoryKind::Nvm,
                });
            }
            self.dram.insert(0, page);
            actions.push(PolicyAction::Migrate {
                page,
                from: MemoryKind::Nvm,
                to: MemoryKind::Dram,
            });
            self.eager_reset();
            return AccessOutcome::hit_with(MemoryKind::Nvm, actions);
        }

        // Page fault: fill DRAM, demote the DRAM victim, evict NVM's LRU.
        let mut actions = Vec::new();
        if self.dram.len() as u64 >= self.config.dram_capacity.value() {
            if self.nvm.len() as u64 >= self.config.nvm_capacity.value() {
                let out = self.nvm.pop().expect("full NVM has a victim");
                self.counters.remove(&out);
                actions.push(PolicyAction::EvictToDisk {
                    page: out,
                    from: MemoryKind::Nvm,
                });
            }
            let victim = self.dram.pop().expect("full DRAM has a victim");
            self.nvm.insert(0, victim);
            actions.push(PolicyAction::Migrate {
                page: victim,
                from: MemoryKind::Dram,
                to: MemoryKind::Nvm,
            });
        }
        self.dram.insert(0, page);
        actions.push(PolicyAction::FillFromDisk {
            page,
            into: MemoryKind::Dram,
        });
        self.eager_reset();
        AccessOutcome::fault_with(actions)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The optimized lazy-reset policy and the literal eager-reset
    /// Algorithm 1 produce identical outcomes on arbitrary streams,
    /// capacities, thresholds, and windows.
    #[test]
    fn lazy_and_eager_resets_are_observationally_identical(
        dram_cap in 1u64..6,
        nvm_cap in 1u64..16,
        read_threshold in 1u32..5,
        write_extra in 0u32..5,
        read_window in 0.05f64..0.9,
        window_extra in 0.05f64..0.5,
        accesses in prop::collection::vec((0u64..24, prop::bool::ANY), 1..500),
    ) {
        let write_threshold = read_threshold + write_extra;
        let write_window = (read_window + window_extra).min(1.0);
        let config = TwoLruConfig::with_thresholds(
            PageCount::new(dram_cap),
            PageCount::new(nvm_cap),
            read_threshold,
            write_threshold,
            read_window,
            write_window,
        ).expect("valid config");

        let mut optimized = TwoLruPolicy::new(config);
        let mut reference = NaiveTwoLru::new(config);

        for (i, (page, is_write)) in accesses.iter().enumerate() {
            let kind = if *is_write { AccessKind::Write } else { AccessKind::Read };
            let access = PageAccess::new(PageId::new(*page), kind);
            let fast = optimized.on_access(access);
            let slow = reference.on_access(access);
            prop_assert_eq!(
                &fast, &slow,
                "divergence at access #{} ({:?})", i, access
            );
        }

        // Final states agree too: same residency for every page.
        for page in 0..24u64 {
            let page = PageId::new(page);
            let in_dram = reference.dram.contains(&page);
            let in_nvm = reference.nvm.contains(&page);
            let residency = optimized.residency(page);
            prop_assert_eq!(residency.memory() == Some(MemoryKind::Dram), in_dram);
            prop_assert_eq!(residency.memory() == Some(MemoryKind::Nvm), in_nvm);
        }
    }
}
