//! A single-technology memory managed by the classic CLOCK algorithm —
//! the second-chance approximation of LRU that CLOCK-DWF builds on.
//!
//! Useful as (a) a baseline isolating CLOCK's hit-ratio gap from LRU (the
//! paper's argument that modified replacement algorithms "will result in
//! lower hit ratio"), and (b) a building-block demonstration of
//! [`ClockRing`] outside the hybrid policies.
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::{HybridPolicy, SingleTierClockPolicy};
//! use hybridmem_types::{MemoryKind, PageAccess, PageCount, PageId};
//!
//! let mut policy = SingleTierClockPolicy::new(MemoryKind::Dram, PageCount::new(64))?;
//! let out = policy.on_access(PageAccess::read(PageId::new(1)));
//! assert!(out.fault);
//! assert!(!policy.on_access(PageAccess::read(PageId::new(1))).fault);
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use hybridmem_types::{Error, MemoryKind, PageAccess, PageCount, PageId, Residency, Result};

use crate::{AccessOutcome, ActionList, ClockRing, HybridPolicy, PolicyAction};

/// CLOCK-managed single-tier main memory.
#[derive(Debug, Clone)]
pub struct SingleTierClockPolicy {
    kind: MemoryKind,
    capacity: PageCount,
    ring: ClockRing<()>,
}

impl SingleTierClockPolicy {
    /// Creates a CLOCK memory of `kind` with the given capacity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the capacity is zero.
    pub fn new(kind: MemoryKind, capacity: PageCount) -> Result<Self> {
        if capacity.is_zero() {
            return Err(Error::invalid_config(
                "single-tier capacity must be at least one page",
            ));
        }
        #[allow(clippy::cast_possible_truncation)]
        Ok(Self {
            kind,
            capacity,
            ring: ClockRing::new(capacity.value() as usize),
        })
    }

    /// The single technology this memory is built from.
    #[must_use]
    pub const fn kind(&self) -> MemoryKind {
        self.kind
    }
}

impl HybridPolicy for SingleTierClockPolicy {
    fn on_access(&mut self, access: PageAccess) -> AccessOutcome {
        if self.ring.touch(access.page).is_some() {
            return AccessOutcome::hit(self.kind);
        }
        let mut actions = ActionList::new();
        if self.ring.is_full() {
            let (victim, ()) = self.ring.evict_with(|()| false);
            actions.push(PolicyAction::EvictToDisk {
                page: victim,
                from: self.kind,
            });
        }
        self.ring.insert(access.page, ());
        actions.push(PolicyAction::FillFromDisk {
            page: access.page,
            into: self.kind,
        });
        AccessOutcome::fault_with(actions)
    }

    fn residency(&self, page: PageId) -> Residency {
        if self.ring.contains(page) {
            Residency::InMemory(self.kind)
        } else {
            Residency::OnDisk
        }
    }

    fn occupancy(&self, kind: MemoryKind) -> u64 {
        if kind == self.kind {
            self.ring.len() as u64
        } else {
            0
        }
    }

    fn capacity(&self, kind: MemoryKind) -> PageCount {
        if kind == self.kind {
            self.capacity
        } else {
            PageCount::new(0)
        }
    }

    fn name(&self) -> &'static str {
        match self.kind {
            MemoryKind::Dram => "dram-only-clock",
            MemoryKind::Nvm => "nvm-only-clock",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SingleTierPolicy;
    use hybridmem_types::AccessKind;

    fn page(n: u64) -> PageId {
        PageId::new(n)
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(SingleTierClockPolicy::new(MemoryKind::Dram, PageCount::new(0)).is_err());
    }

    #[test]
    fn hits_after_fill_and_occupancy_bound() {
        let mut p = SingleTierClockPolicy::new(MemoryKind::Nvm, PageCount::new(3)).unwrap();
        for i in 0..30u64 {
            p.on_access(PageAccess::read(page(i % 5)));
            assert!(p.occupancy(MemoryKind::Nvm) <= 3);
            assert_eq!(p.occupancy(MemoryKind::Dram), 0);
        }
        assert!(!p.on_access(PageAccess::read(page((30 - 1) % 5))).fault);
    }

    #[test]
    fn second_chance_protects_referenced_pages() {
        let mut p = SingleTierClockPolicy::new(MemoryKind::Dram, PageCount::new(2)).unwrap();
        p.on_access(PageAccess::read(page(1)));
        p.on_access(PageAccess::read(page(2)));
        // Re-reference page 1; the next fault should evict page 2 after the
        // scan clears both bits and finds 2 first unreferenced... CLOCK
        // semantics: both referenced → both cleared → 1 evicted. Touch 1
        // again post-clear to verify protection instead.
        let out = p.on_access(PageAccess::read(page(3)));
        assert!(out.fault);
        assert_eq!(p.occupancy(MemoryKind::Dram), 2);
    }

    #[test]
    fn clock_hit_ratio_is_close_to_lru_on_skewed_streams() {
        // The classic result: CLOCK approximates LRU. Compare hit counts on
        // a skewed stream.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut clock = SingleTierClockPolicy::new(MemoryKind::Dram, PageCount::new(32)).unwrap();
        let mut lru = SingleTierPolicy::dram_only(PageCount::new(32)).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let (mut clock_hits, mut lru_hits) = (0u64, 0u64);
        let total = 20_000;
        for _ in 0..total {
            let id = if rng.gen::<f64>() < 0.8 {
                rng.gen_range(0..24u64)
            } else {
                rng.gen_range(0..200u64)
            };
            let access = PageAccess::new(page(id), AccessKind::Read);
            clock_hits += u64::from(!clock.on_access(access).fault);
            lru_hits += u64::from(!lru.on_access(access).fault);
        }
        let clock_ratio = clock_hits as f64 / f64::from(total);
        let lru_ratio = lru_hits as f64 / f64::from(total);
        assert!(
            (clock_ratio - lru_ratio).abs() < 0.06,
            "clock {clock_ratio:.3} vs lru {lru_ratio:.3}"
        );
        // ...and the gap goes the way the paper says: modified/approximate
        // replacement trails true LRU.
        assert!(
            clock_ratio <= lru_ratio + 0.005,
            "clock {clock_ratio:.3} should not beat lru {lru_ratio:.3} here"
        );
    }

    #[test]
    fn names_differ_by_kind() {
        assert_eq!(
            SingleTierClockPolicy::new(MemoryKind::Dram, PageCount::new(1))
                .unwrap()
                .name(),
            "dram-only-clock"
        );
        assert_eq!(
            SingleTierClockPolicy::new(MemoryKind::Nvm, PageCount::new(1))
                .unwrap()
                .name(),
            "nvm-only-clock"
        );
        let p = SingleTierClockPolicy::new(MemoryKind::Nvm, PageCount::new(4)).unwrap();
        assert_eq!(p.kind(), MemoryKind::Nvm);
        assert_eq!(p.capacity(MemoryKind::Nvm), PageCount::new(4));
        assert_eq!(p.capacity(MemoryKind::Dram), PageCount::new(0));
    }
}
