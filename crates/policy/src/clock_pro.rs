//! CLOCK-Pro-lite — a hybrid-memory adaptation of CLOCK-Pro (Jiang, Chen &
//! Zhang, USENIX ATC 2005), the strongest pre-CLOCK-DWF baseline the paper
//! cites ("[CLOCK-DWF] outperforms previous work such as CLOCK-PRO and
//! CAR").
//!
//! CLOCK-Pro distinguishes *hot* and *cold* pages and promotes a cold page
//! that proves its reuse during a *test period*. The natural hybrid-memory
//! mapping — used here — is:
//!
//! * hot pages live in **DRAM** (one clock over the DRAM frames),
//! * cold pages live in **NVM** (one clock, with per-frame test state),
//! * a bounded ghost list remembers recently evicted pages, so a quick
//!   re-fault is recognized as reuse and admitted directly as hot.
//!
//! Promotions and demotions between the rings are physical page migrations,
//! costed exactly like every other policy's. This is deliberately a *lite*
//! variant: the adaptive hot/cold target sizing and the third (test) hand
//! of full CLOCK-Pro are folded into the two-ring structure — cold-page
//! test periods end when the cold clock's scan passes the frame.
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::{ClockProPolicy, HybridPolicy};
//! use hybridmem_types::{MemoryKind, PageAccess, PageCount, PageId, Residency};
//!
//! let mut policy = ClockProPolicy::new(PageCount::new(2), PageCount::new(8))?;
//! policy.on_access(PageAccess::read(PageId::new(1)));
//! assert_eq!(policy.residency(PageId::new(1)), Residency::InMemory(MemoryKind::Nvm));
//! // The next hit starts the page's test period; the one after that
//! // proves reuse and promotes the page to DRAM.
//! policy.on_access(PageAccess::read(PageId::new(1)));
//! policy.on_access(PageAccess::read(PageId::new(1)));
//! assert_eq!(policy.residency(PageId::new(1)), Residency::InMemory(MemoryKind::Dram));
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use std::collections::VecDeque;

use hybridmem_types::{
    Error, FxHashSet, MemoryKind, PageAccess, PageCount, PageId, Residency, Result,
};

use crate::{AccessOutcome, ActionList, ClockRing, HybridPolicy, PolicyAction};

/// Per-frame state of a cold (NVM-resident) page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ColdMeta {
    /// True once the page has been re-referenced and is in its test period;
    /// the next reference promotes it to hot.
    in_test: bool,
}

/// The CLOCK-Pro-lite hybrid policy. See the module docs (in the source).
#[derive(Debug, Clone)]
pub struct ClockProPolicy {
    hot: ClockRing<()>,
    cold: ClockRing<ColdMeta>,
    /// Recently evicted pages ("non-resident cold pages" in CLOCK-Pro);
    /// bounded FIFO + membership set.
    ghost_queue: VecDeque<PageId>,
    ghost_set: FxHashSet<PageId>,
    ghost_capacity: usize,
    dram_capacity: PageCount,
    nvm_capacity: PageCount,
}

impl ClockProPolicy {
    /// Creates the policy with the given module capacities. The ghost list
    /// is sized to the NVM capacity, as in CLOCK-Pro (non-resident pages
    /// tracked up to the memory size).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when either capacity is zero.
    pub fn new(dram_capacity: PageCount, nvm_capacity: PageCount) -> Result<Self> {
        if dram_capacity.is_zero() || nvm_capacity.is_zero() {
            return Err(Error::invalid_config(
                "DRAM and NVM capacities must both be at least one page",
            ));
        }
        #[allow(clippy::cast_possible_truncation)]
        Ok(Self {
            hot: ClockRing::new(dram_capacity.value() as usize),
            cold: ClockRing::new(nvm_capacity.value() as usize),
            ghost_queue: VecDeque::new(),
            ghost_set: FxHashSet::default(),
            ghost_capacity: nvm_capacity.value() as usize,
            dram_capacity,
            nvm_capacity,
        })
    }

    fn remember_ghost(&mut self, page: PageId) {
        if self.ghost_set.insert(page) {
            self.ghost_queue.push_back(page);
            while self.ghost_queue.len() > self.ghost_capacity {
                if let Some(old) = self.ghost_queue.pop_front() {
                    self.ghost_set.remove(&old);
                }
            }
        }
    }

    fn forget_ghost(&mut self, page: PageId) -> bool {
        if self.ghost_set.remove(&page) {
            self.ghost_queue.retain(|&p| p != page);
            true
        } else {
            false
        }
    }

    /// Evicts one cold page to disk; its test period ends unrewarded, so it
    /// becomes a ghost (CLOCK-Pro's non-resident cold page).
    fn evict_cold(&mut self, actions: &mut ActionList) {
        let (victim, _meta) = self.cold.evict_with(|meta| {
            // The scan ends test periods instead of granting extra chances.
            meta.in_test = false;
            false
        });
        self.remember_ghost(victim);
        actions.push(PolicyAction::EvictToDisk {
            page: victim,
            from: MemoryKind::Nvm,
        });
    }

    /// Makes room in the hot ring by demoting its scan victim to cold
    /// (a DRAM→NVM migration), evicting a cold page first when needed.
    fn demote_hot_victim(&mut self, actions: &mut ActionList) {
        debug_assert!(self.hot.is_full());
        if self.cold.is_full() {
            self.evict_cold(actions);
        }
        let (victim, ()) = self.hot.evict_with(|()| false);
        self.cold.insert(victim, ColdMeta::default());
        actions.push(PolicyAction::Migrate {
            page: victim,
            from: MemoryKind::Dram,
            to: MemoryKind::Nvm,
        });
    }

    /// Promotes `page` from the cold to the hot ring (NVM→DRAM migration).
    fn promote(&mut self, page: PageId, actions: &mut ActionList) {
        self.cold.remove(page);
        if self.hot.is_full() {
            // The promotion freed a cold slot, so the demotion fits.
            let (victim, ()) = self.hot.evict_with(|()| false);
            self.cold.insert(victim, ColdMeta::default());
            actions.push(PolicyAction::Migrate {
                page: victim,
                from: MemoryKind::Dram,
                to: MemoryKind::Nvm,
            });
        }
        self.hot.insert(page, ());
        actions.push(PolicyAction::Migrate {
            page,
            from: MemoryKind::Nvm,
            to: MemoryKind::Dram,
        });
    }
}

impl HybridPolicy for ClockProPolicy {
    fn on_access(&mut self, access: PageAccess) -> AccessOutcome {
        let page = access.page;
        if self.hot.contains(page) {
            self.hot.touch(page);
            return AccessOutcome::hit(MemoryKind::Dram);
        }
        if self.cold.contains(page) {
            let meta = self
                .cold
                .touch(page)
                .expect("page is in the cold ring by precondition");
            if meta.in_test {
                // Re-reference within the test period: the page is hot.
                let mut actions = ActionList::new();
                self.promote(page, &mut actions);
                return AccessOutcome::hit_with(MemoryKind::Nvm, actions);
            }
            meta.in_test = true;
            return AccessOutcome::hit(MemoryKind::Nvm);
        }

        // Page fault. A ghost hit proves reuse across eviction: admit hot.
        let mut actions = ActionList::new();
        if self.forget_ghost(page) {
            if self.hot.is_full() {
                self.demote_hot_victim(&mut actions);
            }
            self.hot.insert(page, ());
            actions.push(PolicyAction::FillFromDisk {
                page,
                into: MemoryKind::Dram,
            });
        } else {
            if self.cold.is_full() {
                self.evict_cold(&mut actions);
            }
            self.cold.insert(page, ColdMeta::default());
            actions.push(PolicyAction::FillFromDisk {
                page,
                into: MemoryKind::Nvm,
            });
        }
        AccessOutcome::fault_with(actions)
    }

    fn residency(&self, page: PageId) -> Residency {
        if self.hot.contains(page) {
            Residency::InMemory(MemoryKind::Dram)
        } else if self.cold.contains(page) {
            Residency::InMemory(MemoryKind::Nvm)
        } else {
            Residency::OnDisk
        }
    }

    fn occupancy(&self, kind: MemoryKind) -> u64 {
        match kind {
            MemoryKind::Dram => self.hot.len() as u64,
            MemoryKind::Nvm => self.cold.len() as u64,
        }
    }

    fn capacity(&self, kind: MemoryKind) -> PageCount {
        match kind {
            MemoryKind::Dram => self.dram_capacity,
            MemoryKind::Nvm => self.nvm_capacity,
        }
    }

    fn name(&self) -> &'static str {
        "clock-pro"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId::new(n)
    }

    fn policy(dram: u64, nvm: u64) -> ClockProPolicy {
        ClockProPolicy::new(PageCount::new(dram), PageCount::new(nvm)).unwrap()
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(ClockProPolicy::new(PageCount::new(0), PageCount::new(1)).is_err());
        assert!(ClockProPolicy::new(PageCount::new(1), PageCount::new(0)).is_err());
    }

    #[test]
    fn first_fault_fills_cold_nvm() {
        let mut p = policy(2, 4);
        let out = p.on_access(PageAccess::read(page(1)));
        assert!(out.fault);
        assert_eq!(
            out.actions,
            vec![PolicyAction::FillFromDisk {
                page: page(1),
                into: MemoryKind::Nvm
            }]
        );
    }

    #[test]
    fn second_and_third_references_promote() {
        let mut p = policy(2, 4);
        p.on_access(PageAccess::read(page(1))); // fault → cold
        let second = p.on_access(PageAccess::read(page(1))); // starts test
        assert_eq!(second, AccessOutcome::hit(MemoryKind::Nvm));
        let third = p.on_access(PageAccess::read(page(1))); // promotes
        assert_eq!(third.migrations(), 1);
        assert_eq!(p.residency(page(1)), Residency::InMemory(MemoryKind::Dram));
    }

    #[test]
    fn promotion_with_full_dram_swaps() {
        let mut p = policy(1, 4);
        for n in [1u64, 2] {
            p.on_access(PageAccess::read(page(n)));
            p.on_access(PageAccess::read(page(n)));
            p.on_access(PageAccess::read(page(n)));
        }
        // Page 1 was promoted first; promoting page 2 demotes page 1.
        assert_eq!(p.residency(page(2)), Residency::InMemory(MemoryKind::Dram));
        assert_eq!(p.residency(page(1)), Residency::InMemory(MemoryKind::Nvm));
        assert_eq!(p.occupancy(MemoryKind::Dram), 1);
    }

    #[test]
    fn ghost_refault_is_admitted_hot() {
        let mut p = policy(2, 2);
        p.on_access(PageAccess::read(page(1))); // cold
        p.on_access(PageAccess::read(page(2))); // cold (full)
        p.on_access(PageAccess::read(page(3))); // evicts a cold page → ghost
                                                // One of pages 1/2 is now a ghost; find it and re-fault it.
        let ghost = if p.residency(page(1)) == Residency::OnDisk {
            page(1)
        } else {
            page(2)
        };
        let out = p.on_access(PageAccess::read(ghost));
        assert!(out.fault);
        assert!(
            out.actions.contains(&PolicyAction::FillFromDisk {
                page: ghost,
                into: MemoryKind::Dram
            }),
            "ghost hits are admitted directly into DRAM: {:?}",
            out.actions
        );
    }

    #[test]
    fn ghost_list_is_bounded() {
        let mut p = policy(1, 2);
        for n in 0..100u64 {
            p.on_access(PageAccess::read(page(n)));
        }
        assert!(p.ghost_queue.len() <= 2);
        assert_eq!(p.ghost_queue.len(), p.ghost_set.len());
    }

    #[test]
    fn occupancy_respects_capacities() {
        let mut p = policy(2, 3);
        for i in 0..200u64 {
            let access = if i % 4 == 0 {
                PageAccess::write(page(i % 9))
            } else {
                PageAccess::read(page(i % 9))
            };
            p.on_access(access);
            assert!(p.occupancy(MemoryKind::Dram) <= 2);
            assert!(p.occupancy(MemoryKind::Nvm) <= 3);
        }
    }

    #[test]
    fn name_and_capacity() {
        let p = policy(2, 4);
        assert_eq!(p.name(), "clock-pro");
        assert_eq!(p.capacity(MemoryKind::Dram), PageCount::new(2));
        assert_eq!(p.capacity(MemoryKind::Nvm), PageCount::new(4));
    }
}
