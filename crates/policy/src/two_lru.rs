//! The paper's proposed data-migration scheme: two unmodified LRU queues
//! plus threshold-gated NVM→DRAM promotion (Algorithm 1).
//!
//! # Scheme summary
//!
//! * One LRU queue per module; both run *unmodified* LRU so the hit ratio
//!   matches a conventional memory.
//! * Page faults always fill into **DRAM** ("the proposed scheme moves all
//!   pages from disk to DRAM"); the DRAM victim is demoted to NVM
//!   (a DRAM→NVM migration), and NVM's victim — when NVM is full — is
//!   evicted to disk.
//! * Per-page read/write counters are kept **only** while a page sits in the
//!   top `readperc` / `writeperc` fraction of the NVM queue; a page that
//!   slides past the window boundary has the corresponding counter reset.
//! * A hit that pushes a counter past `read_threshold` / `write_threshold`
//!   promotes the page to DRAM. When DRAM is full the promotion is a *swap*:
//!   DRAM's LRU victim is demoted into the NVM slot freed by the promotion.
//!
//! # Window-reset equivalence
//!
//! Algorithm 1 resets counters *eagerly* when a page crosses the window
//! boundary (lines 8–9). This implementation resets *lazily*, at the page's
//! next hit: between two consecutive hits of a page, its recency rank only
//! increases (other pages' touches can only push it towards the LRU end),
//! so "crossed the boundary since the last hit" is exactly "current rank ≥
//! window size". Both counters are checked against their own windows at
//! every hit, which makes the lazy scheme observationally identical to the
//! eager one while avoiding any boundary scans.
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::{HybridPolicy, TwoLruConfig, TwoLruPolicy};
//! use hybridmem_types::{MemoryKind, PageAccess, PageCount, PageId};
//!
//! let config = TwoLruConfig::new(PageCount::new(2), PageCount::new(8))?;
//! let mut policy = TwoLruPolicy::new(config);
//!
//! // First touch faults into DRAM.
//! let out = policy.on_access(PageAccess::read(PageId::new(7)));
//! assert!(out.fault);
//! assert_eq!(policy.occupancy(MemoryKind::Dram), 1);
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use hybridmem_metrics::MetricsRegistry;
use hybridmem_types::{
    AccessKind, Error, FxHashMap, MemoryKind, PageAccess, PageCount, PageId, Residency, Result,
};
use serde::{Deserialize, Serialize};

use crate::{
    AccessOutcome, ActionList, BatchOutcomes, CounterKind, HybridPolicy, LinkedLru,
    NvmCounterProbe, PolicyAction, RankedLru,
};

/// Configuration of the proposed two-LRU migration scheme.
///
/// The paper prescribes `writeperc > readperc` and
/// `write_threshold > read_threshold` (Section IV): write-dominant pages
/// are tracked over a wider window because they cost more to leave in NVM,
/// but each write counts toward a higher bar because a wrong promotion is
/// also more expensive. The defaults below are this crate's calibration of
/// values the paper leaves unspecified.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoLruConfig {
    /// DRAM queue capacity in pages (≥ 1).
    pub dram_capacity: PageCount,
    /// NVM queue capacity in pages (≥ 1).
    pub nvm_capacity: PageCount,
    /// Reads (within the read window) needed before promotion; ≥ 1.
    pub read_threshold: u32,
    /// Writes (within the write window) needed before promotion; ≥ 1.
    pub write_threshold: u32,
    /// `readperc`: fraction of the NVM queue (from the MRU end) in which
    /// read counters are maintained; in `(0, 1]`.
    pub read_window: f64,
    /// `writeperc`: fraction of the NVM queue in which write counters are
    /// maintained; in `(0, 1]`.
    pub write_window: f64,
}

impl TwoLruConfig {
    /// Default thresholds used throughout the evaluation (see `DESIGN.md`):
    /// `read_threshold = 6`, `write_threshold = 12`, `readperc = 0.05`,
    /// `writeperc = 0.15`. The paper leaves the values unspecified beyond
    /// `writeperc > readperc` and `write_threshold > read_threshold`; these
    /// are calibrated so promotion is sticky enough to suppress the
    /// promote/demote thrash the thresholds exist to prevent.
    pub const DEFAULT_READ_THRESHOLD: u32 = 6;
    /// See [`TwoLruConfig::DEFAULT_READ_THRESHOLD`].
    pub const DEFAULT_WRITE_THRESHOLD: u32 = 12;
    /// See [`TwoLruConfig::DEFAULT_READ_THRESHOLD`].
    pub const DEFAULT_READ_WINDOW: f64 = 0.05;
    /// See [`TwoLruConfig::DEFAULT_READ_THRESHOLD`].
    pub const DEFAULT_WRITE_WINDOW: f64 = 0.15;

    /// Creates a configuration with the paper-calibrated default thresholds
    /// and windows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when either capacity is zero.
    pub fn new(dram_capacity: PageCount, nvm_capacity: PageCount) -> Result<Self> {
        Self::with_thresholds(
            dram_capacity,
            nvm_capacity,
            Self::DEFAULT_READ_THRESHOLD,
            Self::DEFAULT_WRITE_THRESHOLD,
            Self::DEFAULT_READ_WINDOW,
            Self::DEFAULT_WRITE_WINDOW,
        )
    }

    /// Creates a fully explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when a capacity is zero, a threshold
    /// is zero, or a window fraction is outside `(0, 1]`.
    pub fn with_thresholds(
        dram_capacity: PageCount,
        nvm_capacity: PageCount,
        read_threshold: u32,
        write_threshold: u32,
        read_window: f64,
        write_window: f64,
    ) -> Result<Self> {
        if dram_capacity.is_zero() || nvm_capacity.is_zero() {
            return Err(Error::invalid_config(
                "DRAM and NVM capacities must both be at least one page",
            ));
        }
        if read_threshold == 0 || write_threshold == 0 {
            return Err(Error::invalid_config(
                "read and write thresholds must be at least 1",
            ));
        }
        for (name, w) in [("read_window", read_window), ("write_window", write_window)] {
            if !(w > 0.0 && w <= 1.0) {
                return Err(Error::invalid_config(format!(
                    "{name} must be in (0, 1], got {w}"
                )));
            }
        }
        Ok(Self {
            dram_capacity,
            nvm_capacity,
            read_threshold,
            write_threshold,
            read_window,
            write_window,
        })
    }

    /// Read-counter window size in pages (at least 1).
    #[must_use]
    pub fn read_window_pages(&self) -> usize {
        Self::window_pages(self.nvm_capacity, self.read_window)
    }

    /// Write-counter window size in pages (at least 1).
    #[must_use]
    pub fn write_window_pages(&self) -> usize {
        Self::window_pages(self.nvm_capacity, self.write_window)
    }

    fn window_pages(capacity: PageCount, fraction: f64) -> usize {
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let pages = (capacity.value() as f64 * fraction).ceil() as usize;
        pages.max(1)
    }
}

/// Per-page read/write counters ("Additional Information" in Fig. 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PageCounters {
    reads: u32,
    writes: u32,
}

/// Counter-window statistics of the two-LRU scheme, for observability.
///
/// Window *resets* count only resets that discarded progress: a lazy
/// boundary reset that zeroes an already-zero counter is invisible to the
/// algorithm and is not counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoLruStats {
    /// Read counters zeroed (from a nonzero value) because the page slid
    /// past the read-window boundary.
    pub read_window_resets: u64,
    /// Write counters zeroed (from a nonzero value) because the page slid
    /// past the write-window boundary.
    pub write_window_resets: u64,
    /// NVM→DRAM promotions triggered by a read crossing `read_threshold`.
    pub read_promotions: u64,
    /// NVM→DRAM promotions triggered by a write crossing `write_threshold`.
    pub write_promotions: u64,
}

/// The proposed two-LRU migration policy (Algorithm 1).
///
/// See the module documentation (in the source) for the scheme and the lazy-reset
/// equivalence argument.
#[derive(Debug, Clone)]
pub struct TwoLruPolicy {
    config: TwoLruConfig,
    // DRAM hits need no recency rank, only a move-to-front, so the DRAM
    // queue is the O(1) [`LinkedLru`]; NVM stays on the Fenwick-backed
    // [`RankedLru`] because the counter windows are rank queries.
    dram: LinkedLru,
    nvm: RankedLru,
    counters: FxHashMap<PageId, PageCounters>,
    stats: TwoLruStats,
}

impl TwoLruPolicy {
    /// Creates the policy for the given configuration.
    #[must_use]
    pub fn new(config: TwoLruConfig) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        Self {
            config,
            dram: LinkedLru::with_capacity(config.dram_capacity.value() as usize),
            nvm: RankedLru::with_capacity(config.nvm_capacity.value() as usize),
            counters: FxHashMap::default(),
            stats: TwoLruStats::default(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub const fn config(&self) -> &TwoLruConfig {
        &self.config
    }

    /// Replaces the promotion thresholds at runtime.
    ///
    /// Used by the adaptive-threshold extension
    /// ([`AdaptiveTwoLruPolicy`](crate::AdaptiveTwoLruPolicy)); counters
    /// already accumulated are kept and compared against the new values.
    ///
    /// # Panics
    ///
    /// Panics if either threshold is zero.
    pub fn set_thresholds(&mut self, read_threshold: u32, write_threshold: u32) {
        assert!(
            read_threshold > 0 && write_threshold > 0,
            "thresholds must be at least 1"
        );
        self.config.read_threshold = read_threshold;
        self.config.write_threshold = write_threshold;
    }

    /// The read/write counters currently stored for an NVM-resident page
    /// (`(reads, writes)`), or `None` when the page has none.
    ///
    /// Exposed for inspection and tests; the simulator does not need it.
    #[must_use]
    pub fn counters_of(&self, page: PageId) -> Option<(u32, u32)> {
        self.counters.get(&page).map(|c| (c.reads, c.writes))
    }

    /// Counter-window statistics accumulated so far.
    #[must_use]
    pub const fn stats(&self) -> &TwoLruStats {
        &self.stats
    }

    /// Pages currently inside the read-counter window (bounded by the NVM
    /// queue's occupancy while it is still filling).
    #[must_use]
    pub fn read_window_occupancy(&self) -> usize {
        self.config.read_window_pages().min(self.nvm.len())
    }

    /// Pages currently inside the write-counter window.
    #[must_use]
    pub fn write_window_occupancy(&self) -> usize {
        self.config.write_window_pages().min(self.nvm.len())
    }

    /// NVM-resident pages that currently carry read/write counters.
    #[must_use]
    pub fn tracked_pages(&self) -> usize {
        self.counters.len()
    }

    /// Exports the counter-window statistics into `registry` under the
    /// `two_lru.*` namespace: counters `read_window_resets`,
    /// `write_window_resets`, `read_promotions`, `write_promotions`; gauges
    /// `read_window_occupancy`, `write_window_occupancy`, `tracked_pages`.
    #[allow(clippy::cast_precision_loss)]
    pub fn export_metrics(&self, registry: &mut MetricsRegistry) {
        registry.add("two_lru.read_window_resets", self.stats.read_window_resets);
        registry.add(
            "two_lru.write_window_resets",
            self.stats.write_window_resets,
        );
        registry.add("two_lru.read_promotions", self.stats.read_promotions);
        registry.add("two_lru.write_promotions", self.stats.write_promotions);
        registry.set_gauge(
            "two_lru.read_window_occupancy",
            self.read_window_occupancy() as f64,
        );
        registry.set_gauge(
            "two_lru.write_window_occupancy",
            self.write_window_occupancy() as f64,
        );
        registry.set_gauge("two_lru.tracked_pages", self.tracked_pages() as f64);
    }

    /// Handles a hit in the NVM queue (Algorithm 1, lines 6–25).
    fn on_nvm_hit(&mut self, page: PageId, kind: AccessKind) -> AccessOutcome {
        let rank = self
            .nvm
            .touch_ranked(page)
            .expect("page is in the NVM queue by precondition");

        let counters = self.counters.entry(page).or_default();
        // Lazy boundary reset (see module docs): a rank at or past a window
        // means the page crossed that window's boundary since its last hit.
        // Only resets that discard accumulated progress count as resets.
        let mut read_lost = 0;
        let mut write_lost = 0;
        if rank >= self.config.read_window_pages() {
            if counters.reads != 0 {
                self.stats.read_window_resets += 1;
                read_lost = counters.reads;
            }
            counters.reads = 0;
        }
        if rank >= self.config.write_window_pages() {
            if counters.writes != 0 {
                self.stats.write_window_resets += 1;
                write_lost = counters.writes;
            }
            counters.writes = 0;
        }
        let hot = match kind {
            AccessKind::Read => {
                counters.reads += 1;
                counters.reads > self.config.read_threshold
            }
            AccessKind::Write => {
                counters.writes += 1;
                counters.writes > self.config.write_threshold
            }
        };
        let probe = NvmCounterProbe {
            rank: rank as u64,
            reads: counters.reads,
            writes: counters.writes,
            read_lost,
            write_lost,
            read_threshold: self.config.read_threshold,
            write_threshold: self.config.write_threshold,
            fired: hot.then_some(match kind {
                AccessKind::Read => CounterKind::Read,
                AccessKind::Write => CounterKind::Write,
            }),
        };

        if !hot {
            return AccessOutcome::hit(MemoryKind::Nvm).with_counter_probe(probe);
        }
        match kind {
            AccessKind::Read => self.stats.read_promotions += 1,
            AccessKind::Write => self.stats.write_promotions += 1,
        }

        // Promote to DRAM; when DRAM is full this is a swap with DRAM's LRU
        // victim, which lands in the NVM slot the promotion frees.
        let mut actions = ActionList::new();
        self.nvm.remove(page);
        self.counters.remove(&page);
        if self.dram.len() as u64 >= self.config.dram_capacity.value() {
            let victim = self
                .dram
                .evict_lru()
                .expect("a full DRAM queue has a victim");
            self.nvm.insert(victim);
            actions.push(PolicyAction::Migrate {
                page: victim,
                from: MemoryKind::Dram,
                to: MemoryKind::Nvm,
            });
        }
        self.dram.insert(page);
        actions.push(PolicyAction::Migrate {
            page,
            from: MemoryKind::Nvm,
            to: MemoryKind::Dram,
        });
        AccessOutcome::hit_with(MemoryKind::Nvm, actions).with_counter_probe(probe)
    }

    /// Handles a page fault (Algorithm 1, lines 27–28): fill into DRAM,
    /// demoting DRAM's victim to NVM and evicting NVM's victim to disk as
    /// needed.
    fn on_fault(&mut self, page: PageId) -> AccessOutcome {
        let mut actions = ActionList::new();
        if self.dram.len() as u64 >= self.config.dram_capacity.value() {
            if self.nvm.len() as u64 >= self.config.nvm_capacity.value() {
                let out = self.nvm.evict_lru().expect("a full NVM queue has a victim");
                self.counters.remove(&out);
                actions.push(PolicyAction::EvictToDisk {
                    page: out,
                    from: MemoryKind::Nvm,
                });
            }
            let victim = self
                .dram
                .evict_lru()
                .expect("a full DRAM queue has a victim");
            self.nvm.insert(victim);
            actions.push(PolicyAction::Migrate {
                page: victim,
                from: MemoryKind::Dram,
                to: MemoryKind::Nvm,
            });
        }
        self.dram.insert(page);
        actions.push(PolicyAction::FillFromDisk {
            page,
            into: MemoryKind::Dram,
        });
        AccessOutcome::fault_with(actions)
    }
}

impl HybridPolicy for TwoLruPolicy {
    fn on_access(&mut self, access: PageAccess) -> AccessOutcome {
        // Algorithm 1: search DRAM first ("DRAM contains the most hot data
        // pages"), then NVM, else fault. `touch` doubles as the membership
        // probe so a DRAM hit costs a single hash lookup.
        if self.dram.touch(access.page) {
            AccessOutcome::hit(MemoryKind::Dram)
        } else if self.nvm.contains(access.page) {
            self.on_nvm_hit(access.page, access.kind)
        } else {
            self.on_fault(access.page)
        }
    }

    fn on_access_batch(&mut self, batch: &[PageAccess], out: &mut BatchOutcomes) {
        // Same decision tree as `on_access`, amortising the virtual dispatch
        // over the batch. DRAM hits — the overwhelmingly common case once
        // the queues are warm — compress to a one-byte step.
        for access in batch {
            if self.dram.touch(access.page) {
                out.push_dram_hit();
            } else if self.nvm.contains(access.page) {
                let outcome = self.on_nvm_hit(access.page, access.kind);
                out.push_outcome(outcome);
            } else {
                let outcome = self.on_fault(access.page);
                out.push_detailed(outcome);
            }
        }
    }

    fn residency(&self, page: PageId) -> Residency {
        if self.dram.contains(page) {
            Residency::InMemory(MemoryKind::Dram)
        } else if self.nvm.contains(page) {
            Residency::InMemory(MemoryKind::Nvm)
        } else {
            Residency::OnDisk
        }
    }

    fn occupancy(&self, kind: MemoryKind) -> u64 {
        match kind {
            MemoryKind::Dram => self.dram.len() as u64,
            MemoryKind::Nvm => self.nvm.len() as u64,
        }
    }

    fn capacity(&self, kind: MemoryKind) -> PageCount {
        match kind {
            MemoryKind::Dram => self.config.dram_capacity,
            MemoryKind::Nvm => self.config.nvm_capacity,
        }
    }

    fn name(&self) -> &'static str {
        "two-lru"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId::new(n)
    }

    /// Test policy with explicit (legacy) thresholds: read 2 / write 4,
    /// windows 0.10 / 0.30 — the unit tests below are written against
    /// these, independent of the crate defaults.
    fn policy(dram: u64, nvm: u64) -> TwoLruPolicy {
        TwoLruPolicy::new(
            TwoLruConfig::with_thresholds(
                PageCount::new(dram),
                PageCount::new(nvm),
                2,
                4,
                0.10,
                0.30,
            )
            .unwrap(),
        )
    }

    /// Faults `n` distinct pages (ids `base..base+n`).
    fn fill(policy: &mut TwoLruPolicy, base: u64, n: u64) {
        for i in base..base + n {
            policy.on_access(PageAccess::read(page(i)));
        }
    }

    #[test]
    fn config_validation() {
        assert!(TwoLruConfig::new(PageCount::new(0), PageCount::new(1)).is_err());
        assert!(TwoLruConfig::new(PageCount::new(1), PageCount::new(0)).is_err());
        assert!(TwoLruConfig::with_thresholds(
            PageCount::new(1),
            PageCount::new(1),
            0,
            1,
            0.5,
            0.5
        )
        .is_err());
        assert!(TwoLruConfig::with_thresholds(
            PageCount::new(1),
            PageCount::new(1),
            1,
            1,
            0.0,
            0.5
        )
        .is_err());
        assert!(TwoLruConfig::with_thresholds(
            PageCount::new(1),
            PageCount::new(1),
            1,
            1,
            0.5,
            1.5
        )
        .is_err());
    }

    #[test]
    fn window_pages_round_up_with_floor_of_one() {
        let c = TwoLruConfig::new(PageCount::new(1), PageCount::new(30)).unwrap();
        assert_eq!(c.read_window_pages(), 2); // ceil(30 * 0.05)
        assert_eq!(c.write_window_pages(), 5); // ceil(30 * 0.15)
        let tiny =
            TwoLruConfig::with_thresholds(PageCount::new(1), PageCount::new(2), 1, 1, 0.01, 0.01)
                .unwrap();
        assert_eq!(tiny.read_window_pages(), 1);
    }

    #[test]
    fn faults_fill_dram_first() {
        let mut p = policy(2, 4);
        let out = p.on_access(PageAccess::read(page(1)));
        assert!(out.fault);
        assert_eq!(
            out.actions,
            vec![PolicyAction::FillFromDisk {
                page: page(1),
                into: MemoryKind::Dram
            }]
        );
        assert_eq!(p.residency(page(1)), Residency::InMemory(MemoryKind::Dram));
    }

    #[test]
    fn fault_with_full_dram_demotes_victim_to_nvm() {
        let mut p = policy(2, 4);
        fill(&mut p, 0, 2);
        let out = p.on_access(PageAccess::read(page(2)));
        assert!(out.fault);
        assert_eq!(
            out.actions,
            vec![
                PolicyAction::Migrate {
                    page: page(0),
                    from: MemoryKind::Dram,
                    to: MemoryKind::Nvm
                },
                PolicyAction::FillFromDisk {
                    page: page(2),
                    into: MemoryKind::Dram
                },
            ]
        );
        assert_eq!(p.residency(page(0)), Residency::InMemory(MemoryKind::Nvm));
        assert_eq!(p.occupancy(MemoryKind::Dram), 2);
    }

    #[test]
    fn fault_with_both_full_evicts_nvm_victim_to_disk() {
        let mut p = policy(1, 1);
        fill(&mut p, 0, 2); // page 0 demoted to NVM, page 1 in DRAM
        let out = p.on_access(PageAccess::read(page(2)));
        assert_eq!(
            out.actions,
            vec![
                PolicyAction::EvictToDisk {
                    page: page(0),
                    from: MemoryKind::Nvm
                },
                PolicyAction::Migrate {
                    page: page(1),
                    from: MemoryKind::Dram,
                    to: MemoryKind::Nvm
                },
                PolicyAction::FillFromDisk {
                    page: page(2),
                    into: MemoryKind::Dram
                },
            ]
        );
        assert_eq!(p.residency(page(0)), Residency::OnDisk);
    }

    #[test]
    fn dram_hit_is_plain_lru() {
        let mut p = policy(2, 4);
        fill(&mut p, 0, 2);
        let out = p.on_access(PageAccess::write(page(0)));
        assert_eq!(out, AccessOutcome::hit(MemoryKind::Dram));
    }

    #[test]
    fn nvm_write_hits_promote_after_threshold() {
        // DRAM=1, NVM=10; write_threshold=4, write window = ceil(10*0.3)=3.
        let mut p = policy(1, 10);
        fill(&mut p, 0, 11); // pages 0..=9 demoted to NVM over time, page 10 in DRAM
        let victim = page(0); // oldest — actually demoted in order; pick a resident NVM page
        assert_eq!(p.residency(victim), Residency::InMemory(MemoryKind::Nvm));

        // Repeated writes to the same NVM page keep it at the window head.
        let mut outcomes = Vec::new();
        for _ in 0..5 {
            outcomes.push(p.on_access(PageAccess::write(victim)));
        }
        // Writes 1..=4 stay below/at the threshold, the 5th exceeds it.
        assert!(outcomes[..4].iter().all(|o| o.migrations() == 0));
        assert_eq!(
            outcomes[4].migrations(),
            2,
            "promotion swaps with DRAM victim"
        );
        assert_eq!(p.residency(victim), Residency::InMemory(MemoryKind::Dram));
    }

    #[test]
    fn nvm_read_hits_promote_after_read_threshold() {
        let mut p = policy(1, 10);
        fill(&mut p, 0, 11);
        let target = page(5);
        assert_eq!(p.residency(target), Residency::InMemory(MemoryKind::Nvm));
        let o1 = p.on_access(PageAccess::read(target));
        let o2 = p.on_access(PageAccess::read(target));
        let o3 = p.on_access(PageAccess::read(target));
        assert_eq!(o1.migrations() + o2.migrations(), 0);
        assert_eq!(
            o3.migrations(),
            2,
            "third read in window exceeds threshold 2"
        );
    }

    #[test]
    fn counter_resets_when_page_crosses_window() {
        // NVM capacity 10 → read window 1 page, write window 3 pages.
        let mut p = policy(1, 10);
        fill(&mut p, 0, 11);
        let target = page(5);
        // Two reads: counter reaches 2 (= threshold, not above).
        p.on_access(PageAccess::read(target));
        p.on_access(PageAccess::read(target));
        assert_eq!(p.counters_of(target), Some((2, 0)));
        // Push `target` out of the 1-page read window with other NVM hits.
        p.on_access(PageAccess::read(page(6)));
        p.on_access(PageAccess::read(page(7)));
        // Next read of target: rank ≥ window ⇒ counter restarts at 1.
        let out = p.on_access(PageAccess::read(target));
        assert_eq!(out.migrations(), 0);
        assert_eq!(p.counters_of(target), Some((1, 0)));
    }

    #[test]
    fn write_window_is_wider_than_read_window() {
        // NVM=10: read window 1, write window 3. A page at rank 1..2 keeps
        // its write counter but loses its read counter.
        let mut p = policy(1, 10);
        fill(&mut p, 0, 11);
        let target = page(5);
        p.on_access(PageAccess::write(target));
        p.on_access(PageAccess::read(target));
        assert_eq!(p.counters_of(target), Some((1, 1)));
        // One other page hit: target slides to rank 1 (inside write window,
        // outside read window).
        p.on_access(PageAccess::read(page(6)));
        p.on_access(PageAccess::write(target));
        assert_eq!(
            p.counters_of(target),
            Some((0, 2)),
            "rank 1 ≥ read window ⇒ read counter reset; write counter grew"
        );
        p.on_access(PageAccess::read(page(6)));
        let out = p.on_access(PageAccess::read(target));
        assert_eq!(out.migrations(), 0);
        assert_eq!(
            p.counters_of(target),
            Some((1, 2)),
            "rank 2 < write window ⇒ write counter survives the excursion"
        );
    }

    #[test]
    fn promotion_swaps_when_dram_full() {
        let mut p = policy(4, 10);
        // Fill DRAM partially, then force pages into NVM via capacity:
        fill(&mut p, 0, 4);
        // Manually promote by writing an NVM page enough times. First get a
        // page into NVM: fault a 5th page, demoting page 0.
        p.on_access(PageAccess::read(page(4)));
        assert_eq!(p.residency(page(0)), Residency::InMemory(MemoryKind::Nvm));
        // DRAM is full (pages 1,2,3,4) — promotion must swap.
        for _ in 0..5 {
            p.on_access(PageAccess::write(page(0)));
        }
        assert_eq!(p.residency(page(0)), Residency::InMemory(MemoryKind::Dram));
        assert_eq!(p.occupancy(MemoryKind::Dram), 4);
        assert_eq!(p.occupancy(MemoryKind::Nvm), 1);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut p = policy(2, 3);
        for i in 0..50u64 {
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            p.on_access(PageAccess::new(page(i % 8), kind));
            assert!(p.occupancy(MemoryKind::Dram) <= 2);
            assert!(p.occupancy(MemoryKind::Nvm) <= 3);
        }
    }

    #[test]
    fn set_thresholds_updates_config() {
        let mut p = policy(1, 10);
        p.set_thresholds(7, 9);
        assert_eq!(p.config().read_threshold, 7);
        assert_eq!(p.config().write_threshold, 9);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn set_thresholds_rejects_zero() {
        policy(1, 1).set_thresholds(0, 1);
    }

    #[test]
    fn name_and_capacity() {
        let p = policy(2, 4);
        assert_eq!(p.name(), "two-lru");
        assert_eq!(p.capacity(MemoryKind::Dram), PageCount::new(2));
        assert_eq!(p.capacity(MemoryKind::Nvm), PageCount::new(4));
    }

    #[test]
    fn stats_count_promotions_by_triggering_kind() {
        let mut p = policy(1, 10);
        fill(&mut p, 0, 11);
        // Three reads of one NVM page promote it (threshold 2).
        for _ in 0..3 {
            p.on_access(PageAccess::read(page(5)));
        }
        assert_eq!(p.stats().read_promotions, 1);
        assert_eq!(p.stats().write_promotions, 0);
        // Five writes of another NVM page promote it (threshold 4).
        for _ in 0..5 {
            p.on_access(PageAccess::write(page(6)));
        }
        assert_eq!(p.stats().write_promotions, 1);
    }

    #[test]
    fn stats_count_only_lossy_window_resets() {
        // NVM capacity 10 → read window 1 page.
        let mut p = policy(1, 10);
        fill(&mut p, 0, 11);
        let target = page(5);
        p.on_access(PageAccess::read(target));
        let after_first = p.stats().read_window_resets;
        p.on_access(PageAccess::read(target));
        // Push target out of the read window, then hit it again: the reset
        // discards two accumulated reads, so it counts.
        p.on_access(PageAccess::read(page(6)));
        p.on_access(PageAccess::read(target));
        assert_eq!(p.stats().read_window_resets, after_first + 1);
    }

    #[test]
    fn window_occupancy_is_bounded_by_nvm_occupancy() {
        let mut p = policy(1, 10); // write window = 3 pages
        assert_eq!(p.write_window_occupancy(), 0, "empty NVM queue");
        fill(&mut p, 0, 3); // 1 DRAM page + 2 NVM pages
        assert_eq!(p.write_window_occupancy(), 2);
        fill(&mut p, 3, 8);
        assert_eq!(p.write_window_occupancy(), 3);
        assert_eq!(p.read_window_occupancy(), 1);
        assert!(p.tracked_pages() <= p.occupancy(MemoryKind::Nvm) as usize);
    }

    #[test]
    fn export_metrics_uses_two_lru_namespace() {
        let mut p = policy(1, 10);
        fill(&mut p, 0, 11);
        for _ in 0..3 {
            p.on_access(PageAccess::read(page(5)));
        }
        let mut registry = MetricsRegistry::new();
        p.export_metrics(&mut registry);
        assert_eq!(registry.counter("two_lru.read_promotions"), 1);
        assert_eq!(registry.counter("two_lru.write_promotions"), 0);
        assert!(registry.gauge("two_lru.tracked_pages") >= 0.0);
        assert!(registry.gauge("two_lru.read_window_occupancy") >= 1.0);
    }

    #[test]
    fn as_any_downcasts_to_concrete_policy() {
        let p = policy(2, 4);
        let dynamic: &dyn HybridPolicy = &p;
        let any = dynamic.as_any().expect("two-LRU exposes itself");
        assert!(any.downcast_ref::<TwoLruPolicy>().is_some());
    }
}
