//! Page-placement and migration policies for hybrid DRAM–NVM main memory.
//!
//! This crate implements every policy evaluated in *"An Operating System
//! Level Data Migration Scheme in Hybrid DRAM-NVM Memory Architecture"*
//! (Salkhordeh & Asadi, DATE 2016):
//!
//! * [`TwoLruPolicy`] — **the paper's contribution**: two unmodified LRU
//!   queues with threshold-gated, windowed promotion counters (Algorithm 1);
//! * [`ClockDwfPolicy`] — the CLOCK-DWF state-of-the-art baseline;
//! * [`ClockProPolicy`] — a hybrid adaptation of CLOCK-Pro, the prior
//!   baseline CLOCK-DWF was shown to beat;
//! * [`DramCachePolicy`] — the DRAM-as-a-cache organization of the other
//!   branch of related work the paper surveys;
//! * [`SingleTierPolicy`] — DRAM-only and NVM-only LRU baselines used for
//!   normalization ([`SingleTierClockPolicy`] is the CLOCK-managed
//!   equivalent);
//! * [`AdaptiveTwoLruPolicy`] — the adaptive-threshold extension the paper
//!   lists as future work;
//!
//! plus the data structures they are built on:
//!
//! * [`RankedLru`] — an LRU queue with O(log n) recency-rank queries;
//! * [`LinkedLru`] — an O(1) intrusive-list LRU queue for rank-free tiers;
//! * [`ClockRing`] — a CLOCK (second-chance) ring with per-frame metadata.
//!
//! Policies are pure bookkeeping: they decide *what happens* to pages and
//! report it as [`PolicyAction`]s; charging latency, energy, and wear
//! against device models is `hybridmem-core`'s job. All policies implement
//! the object-safe [`HybridPolicy`] trait.
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::{HybridPolicy, TwoLruConfig, TwoLruPolicy};
//! use hybridmem_types::{PageAccess, PageCount, PageId};
//!
//! let config = TwoLruConfig::new(PageCount::new(10), PageCount::new(90))?;
//! let mut policy = TwoLruPolicy::new(config);
//! let outcome = policy.on_access(PageAccess::write(PageId::new(42)));
//! assert!(outcome.fault, "first touch faults in from disk");
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod adaptive;
mod clock;
mod clock_dwf;
mod clock_pro;
mod dram_cache;
mod lru;
mod single;
mod single_clock;
mod traits;
mod two_lru;

pub use adaptive::{AdaptiveConfig, AdaptiveStats, AdaptiveTwoLruPolicy};
pub use clock::ClockRing;
pub use clock_dwf::ClockDwfPolicy;
pub use clock_pro::ClockProPolicy;
pub use dram_cache::DramCachePolicy;
pub use lru::{LinkedLru, RankedLru};
pub use single::SingleTierPolicy;
pub use single_clock::SingleTierClockPolicy;
pub use traits::{
    AccessOutcome, ActionList, BatchOutcomes, BatchStep, CounterKind, HybridPolicy,
    NvmCounterProbe, PolicyAction, MAX_ACTIONS_PER_ACCESS,
};
pub use two_lru::{TwoLruConfig, TwoLruPolicy, TwoLruStats};
