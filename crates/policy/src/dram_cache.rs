//! DRAM-as-a-cache architecture — the *other* hybrid organization the
//! paper's related work surveys ("A group of previous studies tried to use
//! DRAM as a caching layer for NVM memory" — Section III, citing Qureshi's
//! ISCA'09 design among others).
//!
//! All resident pages live in NVM; the DRAM module holds *copies* of the
//! hottest pages (inclusive cache, LRU, allocate-on-access, write-back).
//! The paper's criticism — "if the locality of the requests drops below a
//! threshold, the performance of the cache will be decreased" — falls out
//! directly: every NVM hit triggers a page copy into DRAM, so low-locality
//! traffic pays CLOCK-DWF-like migration volume without CLOCK-DWF's
//! write-filtering benefit.
//!
//! Cost mapping: copying a page into the cache reads NVM and writes DRAM —
//! identical to an NVM→DRAM migration, so it is reported as
//! [`PolicyAction::Migrate`]; evicting a *dirty* copy writes the page back
//! (a DRAM→NVM migration), while clean copies are dropped for free.
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::{DramCachePolicy, HybridPolicy};
//! use hybridmem_types::{MemoryKind, PageAccess, PageCount, PageId, Residency};
//!
//! let mut policy = DramCachePolicy::new(PageCount::new(2), PageCount::new(8))?;
//! policy.on_access(PageAccess::read(PageId::new(1)));  // fault → NVM + cached
//! assert_eq!(policy.residency(PageId::new(1)), Residency::InMemory(MemoryKind::Dram));
//! assert!(!policy.on_access(PageAccess::read(PageId::new(1))).fault);
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use hybridmem_types::{
    Error, FxHashMap, MemoryKind, PageAccess, PageCount, PageId, Residency, Result,
};

use crate::{AccessOutcome, ActionList, HybridPolicy, PolicyAction, RankedLru};

/// DRAM-cache-over-NVM policy. See the module documentation (in the
/// source) for the architecture and cost mapping.
#[derive(Debug, Clone)]
pub struct DramCachePolicy {
    /// All resident pages (backing store), LRU-managed.
    nvm: RankedLru,
    /// Cached subset; invariant: `cache ⊆ nvm`.
    cache: RankedLru,
    /// Dirty bits of cached copies.
    dirty: FxHashMap<PageId, bool>,
    dram_capacity: PageCount,
    nvm_capacity: PageCount,
}

impl DramCachePolicy {
    /// Creates the policy: a DRAM cache of `dram_capacity` pages over an
    /// NVM backing store of `nvm_capacity` pages.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when either capacity is zero.
    pub fn new(dram_capacity: PageCount, nvm_capacity: PageCount) -> Result<Self> {
        if dram_capacity.is_zero() || nvm_capacity.is_zero() {
            return Err(Error::invalid_config(
                "DRAM and NVM capacities must both be at least one page",
            ));
        }
        #[allow(clippy::cast_possible_truncation)]
        Ok(Self {
            nvm: RankedLru::with_capacity(nvm_capacity.value() as usize),
            cache: RankedLru::with_capacity(dram_capacity.value() as usize),
            dirty: FxHashMap::default(),
            dram_capacity,
            nvm_capacity,
        })
    }

    /// Drops the cache's LRU copy, writing it back first when dirty.
    fn evict_cache_copy(&mut self, actions: &mut ActionList) {
        let victim = self.cache.evict_lru().expect("a full cache has a victim");
        if self.dirty.remove(&victim) == Some(true) {
            actions.push(PolicyAction::Migrate {
                page: victim,
                from: MemoryKind::Dram,
                to: MemoryKind::Nvm,
            });
        }
        // Clean copies vanish for free: the NVM master copy is current.
    }

    /// Admits `page` (already NVM-resident) into the DRAM cache.
    fn admit(&mut self, page: PageId, dirty: bool, actions: &mut ActionList) {
        if self.cache.len() as u64 >= self.dram_capacity.value() {
            self.evict_cache_copy(actions);
        }
        self.cache.insert(page);
        self.dirty.insert(page, dirty);
        actions.push(PolicyAction::Migrate {
            page,
            from: MemoryKind::Nvm,
            to: MemoryKind::Dram,
        });
    }
}

impl HybridPolicy for DramCachePolicy {
    fn on_access(&mut self, access: PageAccess) -> AccessOutcome {
        let page = access.page;
        if self.cache.contains(page) {
            self.cache.touch(page);
            self.nvm.touch(page);
            if access.kind.is_write() {
                self.dirty.insert(page, true);
            }
            return AccessOutcome::hit(MemoryKind::Dram);
        }
        if self.nvm.contains(page) {
            self.nvm.touch(page);
            // Allocate-on-access: the miss in the cache costs a page copy.
            let mut actions = ActionList::new();
            self.admit(page, access.kind.is_write(), &mut actions);
            return AccessOutcome::hit_with(MemoryKind::Nvm, actions);
        }

        // Page fault: fill the NVM backing store, then cache the page.
        let mut actions = ActionList::new();
        if self.nvm.len() as u64 >= self.nvm_capacity.value() {
            let out = self.nvm.evict_lru().expect("a full NVM has a victim");
            // The evicted page's cache copy (if any) dies with it; any
            // dirty data goes to disk with the page, which the model does
            // not charge (DMA overlapped, as for all disk evictions).
            self.cache.remove(out);
            self.dirty.remove(&out);
            actions.push(PolicyAction::EvictToDisk {
                page: out,
                from: MemoryKind::Nvm,
            });
        }
        self.nvm.insert(page);
        actions.push(PolicyAction::FillFromDisk {
            page,
            into: MemoryKind::Nvm,
        });
        self.admit(page, access.kind.is_write(), &mut actions);
        AccessOutcome::fault_with(actions)
    }

    fn residency(&self, page: PageId) -> Residency {
        if self.cache.contains(page) {
            Residency::InMemory(MemoryKind::Dram)
        } else if self.nvm.contains(page) {
            Residency::InMemory(MemoryKind::Nvm)
        } else {
            Residency::OnDisk
        }
    }

    fn occupancy(&self, kind: MemoryKind) -> u64 {
        match kind {
            MemoryKind::Dram => self.cache.len() as u64,
            MemoryKind::Nvm => self.nvm.len() as u64,
        }
    }

    fn capacity(&self, kind: MemoryKind) -> PageCount {
        match kind {
            MemoryKind::Dram => self.dram_capacity,
            MemoryKind::Nvm => self.nvm_capacity,
        }
    }

    fn name(&self) -> &'static str {
        "dram-cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId::new(n)
    }

    fn policy(dram: u64, nvm: u64) -> DramCachePolicy {
        DramCachePolicy::new(PageCount::new(dram), PageCount::new(nvm)).unwrap()
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(DramCachePolicy::new(PageCount::new(0), PageCount::new(1)).is_err());
        assert!(DramCachePolicy::new(PageCount::new(1), PageCount::new(0)).is_err());
    }

    #[test]
    fn fault_fills_nvm_and_caches() {
        let mut p = policy(2, 4);
        let out = p.on_access(PageAccess::read(page(1)));
        assert!(out.fault);
        assert_eq!(
            out.actions,
            vec![
                PolicyAction::FillFromDisk {
                    page: page(1),
                    into: MemoryKind::Nvm
                },
                PolicyAction::Migrate {
                    page: page(1),
                    from: MemoryKind::Nvm,
                    to: MemoryKind::Dram
                },
            ]
        );
        assert_eq!(p.occupancy(MemoryKind::Dram), 1);
        assert_eq!(p.occupancy(MemoryKind::Nvm), 1, "NVM keeps the master copy");
    }

    #[test]
    fn cached_hits_are_free_dram_hits() {
        let mut p = policy(2, 4);
        p.on_access(PageAccess::read(page(1)));
        let out = p.on_access(PageAccess::write(page(1)));
        assert_eq!(out, AccessOutcome::hit(MemoryKind::Dram));
    }

    #[test]
    fn nvm_hit_admits_with_a_copy() {
        let mut p = policy(1, 4);
        p.on_access(PageAccess::read(page(1))); // cached
        p.on_access(PageAccess::read(page(2))); // evicts clean copy of 1
                                                // Page 1 is now NVM-only; touching it re-admits (copy cost).
        let out = p.on_access(PageAccess::read(page(1)));
        assert!(!out.fault);
        assert_eq!(out.served_from, Some(MemoryKind::Nvm));
        assert_eq!(out.migrations(), 1);
    }

    #[test]
    fn dirty_copies_write_back_on_eviction() {
        let mut p = policy(1, 4);
        p.on_access(PageAccess::write(page(1))); // cached dirty
        let out = p.on_access(PageAccess::read(page(2)));
        assert!(
            out.actions.contains(&PolicyAction::Migrate {
                page: page(1),
                from: MemoryKind::Dram,
                to: MemoryKind::Nvm
            }),
            "dirty eviction writes back: {:?}",
            out.actions
        );
        // Page 1 is still resident (in NVM).
        assert_eq!(p.residency(page(1)), Residency::InMemory(MemoryKind::Nvm));
    }

    #[test]
    fn clean_copies_drop_for_free() {
        let mut p = policy(1, 4);
        p.on_access(PageAccess::read(page(1))); // cached clean
        let out = p.on_access(PageAccess::read(page(2)));
        let write_backs = out
            .actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    PolicyAction::Migrate {
                        from: MemoryKind::Dram,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(write_backs, 0, "{:?}", out.actions);
    }

    #[test]
    fn cache_subset_invariant_and_bounds() {
        let mut p = policy(2, 3);
        for i in 0..120u64 {
            let access = if i % 3 == 0 {
                PageAccess::write(page(i % 7))
            } else {
                PageAccess::read(page(i % 7))
            };
            p.on_access(access);
            assert!(p.occupancy(MemoryKind::Dram) <= 2);
            assert!(p.occupancy(MemoryKind::Nvm) <= 3);
            // Every cached page has a master copy in NVM.
            for q in 0..7u64 {
                if p.cache.contains(page(q)) {
                    assert!(p.nvm.contains(page(q)), "cache ⊆ nvm violated for {q}");
                }
            }
        }
    }

    #[test]
    fn backing_eviction_drops_the_cache_copy() {
        let mut p = policy(3, 2);
        p.on_access(PageAccess::write(page(1)));
        p.on_access(PageAccess::write(page(2)));
        let out = p.on_access(PageAccess::read(page(3)));
        // NVM (cap 2) evicted page 1; its dirty cache copy must be gone too.
        assert!(out.actions.contains(&PolicyAction::EvictToDisk {
            page: page(1),
            from: MemoryKind::Nvm
        }));
        assert_eq!(p.residency(page(1)), Residency::OnDisk);
        assert!(p.occupancy(MemoryKind::Dram) <= 3);
    }

    #[test]
    fn name_and_capacity() {
        let p = policy(2, 4);
        assert_eq!(p.name(), "dram-cache");
        assert_eq!(p.capacity(MemoryKind::Dram), PageCount::new(2));
        assert_eq!(p.capacity(MemoryKind::Nvm), PageCount::new(4));
    }
}
