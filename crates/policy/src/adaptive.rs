//! Adaptive threshold prediction — the paper's stated future work.
//!
//! "It is worthy to note that using adaptive threshold prediction can
//! further improve the efficiency of the proposed scheme. This is part of
//! our ongoing research." — Section V-B.
//!
//! This extension wraps [`TwoLruPolicy`] with a feedback controller:
//!
//! 1. Every NVM→DRAM promotion is remembered.
//! 2. When a promoted page later leaves DRAM (demotion or eviction), the
//!    number of DRAM hits it collected is compared against
//!    [`AdaptiveConfig::benefit_floor`] — the hit count at which a promotion
//!    pays for its `2 × PageFactor` migration accesses.
//! 3. Every [`AdaptiveConfig::adjust_interval`] completed promotions, the
//!    controller doubles both thresholds when most promotions were
//!    non-beneficial, and decays them toward the configured baseline when
//!    most promotions paid off.
//!
//! The controller observes only [`AccessOutcome`]s, so it composes with the
//! inner policy without reaching into its queues.
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::{AdaptiveConfig, AdaptiveTwoLruPolicy, HybridPolicy, TwoLruConfig};
//! use hybridmem_types::{PageAccess, PageCount, PageId};
//!
//! let inner = TwoLruConfig::new(PageCount::new(4), PageCount::new(32))?;
//! let mut policy = AdaptiveTwoLruPolicy::new(inner, AdaptiveConfig::default());
//! policy.on_access(PageAccess::read(PageId::new(1)));
//! assert_eq!(policy.name(), "two-lru-adaptive");
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use hybridmem_types::{FxHashMap, MemoryKind, PageAccess, PageCount, PageId, Residency};
use serde::{Deserialize, Serialize};

use crate::{AccessOutcome, HybridPolicy, PolicyAction, TwoLruConfig, TwoLruPolicy};

/// Tuning knobs of the adaptive-threshold controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// DRAM hits a promoted page must collect before leaving DRAM for the
    /// promotion to count as beneficial.
    pub benefit_floor: u64,
    /// Number of completed promotions between controller adjustments.
    pub adjust_interval: u32,
    /// Fraction of non-beneficial promotions above which thresholds double.
    pub raise_above: f64,
    /// Fraction of non-beneficial promotions below which thresholds decay
    /// toward the baseline.
    pub lower_below: f64,
    /// Upper bound on either threshold, bounding controller excursions.
    pub max_threshold: u32,
}

impl AdaptiveConfig {
    /// Defaults: `benefit_floor = 16`, `adjust_interval = 32`,
    /// `raise_above = 0.5`, `lower_below = 0.2`, `max_threshold = 64`.
    #[must_use]
    pub fn new() -> Self {
        Self {
            benefit_floor: 16,
            adjust_interval: 32,
            raise_above: 0.5,
            lower_below: 0.2,
            max_threshold: 64,
        }
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregate statistics of the adaptive controller, for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveStats {
    /// Promotions whose pages earned at least `benefit_floor` DRAM hits.
    pub beneficial_promotions: u64,
    /// Promotions whose pages left DRAM before earning their keep.
    pub wasted_promotions: u64,
    /// Times the controller raised the thresholds.
    pub raises: u64,
    /// Times the controller lowered the thresholds.
    pub lowers: u64,
}

/// [`TwoLruPolicy`] with run-time threshold adaptation.
///
/// See the module documentation (in the source) for the control loop.
#[derive(Debug, Clone)]
pub struct AdaptiveTwoLruPolicy {
    inner: TwoLruPolicy,
    adaptive: AdaptiveConfig,
    baseline_read: u32,
    baseline_write: u32,
    /// DRAM hit counts of pages promoted from NVM and still in DRAM.
    promoted: FxHashMap<PageId, u64>,
    /// Outcomes (beneficial?) of promotions completed since last adjustment.
    window_beneficial: u32,
    window_wasted: u32,
    stats: AdaptiveStats,
}

impl AdaptiveTwoLruPolicy {
    /// Creates the adaptive policy around a fresh [`TwoLruPolicy`].
    #[must_use]
    pub fn new(config: TwoLruConfig, adaptive: AdaptiveConfig) -> Self {
        Self {
            baseline_read: config.read_threshold,
            baseline_write: config.write_threshold,
            inner: TwoLruPolicy::new(config),
            adaptive,
            promoted: FxHashMap::default(),
            window_beneficial: 0,
            window_wasted: 0,
            stats: AdaptiveStats::default(),
        }
    }

    /// Controller statistics so far.
    #[must_use]
    pub const fn stats(&self) -> &AdaptiveStats {
        &self.stats
    }

    /// The wrapped [`TwoLruPolicy`], for reading its counter-window
    /// statistics ([`TwoLruPolicy::stats`], [`TwoLruPolicy::export_metrics`]).
    #[must_use]
    pub const fn two_lru(&self) -> &TwoLruPolicy {
        &self.inner
    }

    /// The currently active `(read_threshold, write_threshold)`.
    #[must_use]
    pub fn thresholds(&self) -> (u32, u32) {
        let c = self.inner.config();
        (c.read_threshold, c.write_threshold)
    }

    /// Processes the side effects of one outcome: promotion tracking and
    /// benefit scoring.
    fn observe(&mut self, access: PageAccess, outcome: &AccessOutcome) {
        // A DRAM hit on a tracked page earns it credit.
        if outcome.served_from == Some(MemoryKind::Dram) && !outcome.fault {
            if let Some(hits) = self.promoted.get_mut(&access.page) {
                *hits += 1;
            }
        }
        for action in &outcome.actions {
            match *action {
                PolicyAction::Migrate {
                    page,
                    from: MemoryKind::Nvm,
                    to: MemoryKind::Dram,
                } => {
                    self.promoted.insert(page, 0);
                }
                PolicyAction::Migrate {
                    page,
                    from: MemoryKind::Dram,
                    to: MemoryKind::Nvm,
                }
                | PolicyAction::EvictToDisk {
                    page,
                    from: MemoryKind::Dram,
                } => {
                    if let Some(hits) = self.promoted.remove(&page) {
                        self.score_promotion(hits);
                    }
                }
                // Fills and NVM-side evictions never concern a promoted
                // page (promotion moves it to DRAM); same-module
                // migrations are never emitted by any policy.
                PolicyAction::FillFromDisk { .. }
                | PolicyAction::EvictToDisk {
                    from: MemoryKind::Nvm,
                    ..
                }
                | PolicyAction::Migrate {
                    from: MemoryKind::Dram,
                    to: MemoryKind::Dram,
                    ..
                }
                | PolicyAction::Migrate {
                    from: MemoryKind::Nvm,
                    to: MemoryKind::Nvm,
                    ..
                } => {}
            }
        }
        let completed = self.window_beneficial + self.window_wasted;
        if completed >= self.adaptive.adjust_interval {
            self.adjust();
        }
    }

    fn score_promotion(&mut self, hits: u64) {
        if hits >= self.adaptive.benefit_floor {
            self.window_beneficial += 1;
            self.stats.beneficial_promotions += 1;
        } else {
            self.window_wasted += 1;
            self.stats.wasted_promotions += 1;
        }
    }

    fn adjust(&mut self) {
        let total = f64::from(self.window_beneficial + self.window_wasted);
        let wasted_frac = f64::from(self.window_wasted) / total;
        let (read, write) = self.thresholds();
        if wasted_frac > self.adaptive.raise_above {
            let read = (read * 2).min(self.adaptive.max_threshold);
            let write = (write * 2).min(self.adaptive.max_threshold);
            self.inner.set_thresholds(read, write);
            self.stats.raises += 1;
        } else if wasted_frac < self.adaptive.lower_below {
            // Decay halfway back toward the configured baseline.
            let read = self.baseline_read.max(read / 2).max(1);
            let write = self.baseline_write.max(write / 2).max(1);
            self.inner.set_thresholds(read, write);
            self.stats.lowers += 1;
        }
        self.window_beneficial = 0;
        self.window_wasted = 0;
    }
}

impl HybridPolicy for AdaptiveTwoLruPolicy {
    fn on_access(&mut self, access: PageAccess) -> AccessOutcome {
        let outcome = self.inner.on_access(access);
        self.observe(access, &outcome);
        outcome
    }

    fn residency(&self, page: PageId) -> Residency {
        self.inner.residency(page)
    }

    fn occupancy(&self, kind: MemoryKind) -> u64 {
        self.inner.occupancy(kind)
    }

    fn capacity(&self, kind: MemoryKind) -> PageCount {
        self.inner.capacity(kind)
    }

    fn name(&self) -> &'static str {
        "two-lru-adaptive"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_types::PageAccess;

    fn page(n: u64) -> PageId {
        PageId::new(n)
    }

    fn policy(dram: u64, nvm: u64, adaptive: AdaptiveConfig) -> AdaptiveTwoLruPolicy {
        AdaptiveTwoLruPolicy::new(
            TwoLruConfig::new(PageCount::new(dram), PageCount::new(nvm)).unwrap(),
            adaptive,
        )
    }

    /// Drives one page through promotion: enough NVM write hits to cross the
    /// default write threshold.
    fn promote(p: &mut AdaptiveTwoLruPolicy, target: PageId) {
        let (_, write_threshold) = p.thresholds();
        for _ in 0..=write_threshold {
            p.on_access(PageAccess::write(target));
        }
    }

    #[test]
    fn behaves_like_inner_policy_for_basic_flow() {
        let mut p = policy(2, 8, AdaptiveConfig::default());
        let out = p.on_access(PageAccess::read(page(1)));
        assert!(out.fault);
        assert_eq!(p.occupancy(MemoryKind::Dram), 1);
        assert_eq!(p.capacity(MemoryKind::Nvm), PageCount::new(8));
        assert_eq!(p.residency(page(1)), Residency::InMemory(MemoryKind::Dram));
    }

    #[test]
    fn wasted_promotions_raise_thresholds() {
        let adaptive = AdaptiveConfig {
            benefit_floor: 100, // nothing will ever look beneficial
            adjust_interval: 2,
            ..AdaptiveConfig::default()
        };
        let mut p = policy(1, 16, adaptive);
        let (read0, write0) = p.thresholds();

        // Fill memory: 1 DRAM page + several NVM pages.
        for i in 0..10 {
            p.on_access(PageAccess::read(page(i)));
        }
        // Promote NVM pages repeatedly; each promotion demotes the previous
        // DRAM occupant (completing its promotion with ~0 hits).
        for i in 0..8 {
            promote(&mut p, page(i));
        }
        let (read1, write1) = p.thresholds();
        assert!(p.stats().wasted_promotions > 0);
        assert!(p.stats().raises > 0);
        assert!(read1 > read0 && write1 > write0, "{read1} {write1}");
    }

    #[test]
    fn beneficial_promotions_lower_thresholds_back() {
        let adaptive = AdaptiveConfig {
            benefit_floor: 1, // everything beneficial
            adjust_interval: 1,
            ..AdaptiveConfig::default()
        };
        let mut p = policy(1, 16, adaptive);
        for i in 0..10 {
            p.on_access(PageAccess::read(page(i)));
        }
        promote(&mut p, page(0));
        // Earn the promoted page a DRAM hit so its eventual demotion scores
        // as beneficial.
        p.on_access(PageAccess::write(page(0)));
        promote(&mut p, page(1)); // demotes page 0, completing its score
        assert!(p.stats().beneficial_promotions > 0);
        assert!(p.stats().lowers > 0);
        let c = p.thresholds();
        assert!(c.0 >= 1 && c.1 >= 1);
    }

    #[test]
    fn thresholds_never_exceed_cap() {
        let adaptive = AdaptiveConfig {
            benefit_floor: u64::MAX,
            adjust_interval: 1,
            max_threshold: 8,
            ..AdaptiveConfig::default()
        };
        let mut p = policy(1, 16, adaptive);
        for i in 0..10 {
            p.on_access(PageAccess::read(page(i)));
        }
        for round in 0..6 {
            for i in 0..8 {
                promote(&mut p, page((round * 8 + i) % 10));
            }
        }
        let (read, write) = p.thresholds();
        assert!(read <= 8 && write <= 8);
    }

    #[test]
    fn stats_default_is_zeroed() {
        let p = policy(1, 4, AdaptiveConfig::default());
        assert_eq!(*p.stats(), AdaptiveStats::default());
        assert_eq!(p.name(), "two-lru-adaptive");
    }

    #[test]
    fn exposes_inner_two_lru_and_its_stats() {
        let mut p = policy(1, 16, AdaptiveConfig::default());
        for i in 0..10 {
            p.on_access(PageAccess::read(page(i)));
        }
        promote(&mut p, page(0));
        assert_eq!(p.two_lru().stats().write_promotions, 1);
        let dynamic: &dyn HybridPolicy = &p;
        let any = dynamic.as_any().expect("adaptive exposes itself");
        assert!(any.downcast_ref::<AdaptiveTwoLruPolicy>().is_some());
    }
}
