//! Single-technology baselines: DRAM-only and NVM-only main memory with LRU.
//!
//! The paper normalizes its power results to a "DRAM-only main memory with
//! LRU algorithm as the eviction policy" (Fig. 1, Fig. 2a, Fig. 4a) and its
//! endurance results to an NVM-only memory (Fig. 2c, Fig. 4b). Both are the
//! same policy over a different module, so one type covers them.
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::{HybridPolicy, SingleTierPolicy};
//! use hybridmem_types::{MemoryKind, PageAccess, PageCount, PageId};
//!
//! let mut dram_only = SingleTierPolicy::dram_only(PageCount::new(100))?;
//! let out = dram_only.on_access(PageAccess::read(PageId::new(1)));
//! assert!(out.fault);
//! assert_eq!(dram_only.occupancy(MemoryKind::Dram), 1);
//! assert_eq!(dram_only.capacity(MemoryKind::Nvm), PageCount::new(0));
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use hybridmem_types::{Error, MemoryKind, PageAccess, PageCount, PageId, Residency, Result};

use crate::{AccessOutcome, ActionList, BatchOutcomes, HybridPolicy, LinkedLru, PolicyAction};

/// An LRU-managed main memory made of a single technology.
#[derive(Debug, Clone)]
pub struct SingleTierPolicy {
    kind: MemoryKind,
    capacity: PageCount,
    // Plain LRU needs no rank queries, so the O(1) linked queue suffices.
    lru: LinkedLru,
}

impl SingleTierPolicy {
    /// Creates a single-tier memory of `kind` with the given capacity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the capacity is zero.
    pub fn new(kind: MemoryKind, capacity: PageCount) -> Result<Self> {
        if capacity.is_zero() {
            return Err(Error::invalid_config(
                "single-tier capacity must be at least one page",
            ));
        }
        #[allow(clippy::cast_possible_truncation)]
        Ok(Self {
            kind,
            capacity,
            lru: LinkedLru::with_capacity(capacity.value() as usize),
        })
    }

    /// Convenience constructor for the DRAM-only baseline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the capacity is zero.
    pub fn dram_only(capacity: PageCount) -> Result<Self> {
        Self::new(MemoryKind::Dram, capacity)
    }

    /// Convenience constructor for the NVM-only baseline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the capacity is zero.
    pub fn nvm_only(capacity: PageCount) -> Result<Self> {
        Self::new(MemoryKind::Nvm, capacity)
    }

    /// The single technology this memory is built from.
    #[must_use]
    pub const fn kind(&self) -> MemoryKind {
        self.kind
    }
}

impl HybridPolicy for SingleTierPolicy {
    fn on_access(&mut self, access: PageAccess) -> AccessOutcome {
        if self.lru.touch(access.page) {
            return AccessOutcome::hit(self.kind);
        }
        let mut actions = ActionList::new();
        if self.lru.len() as u64 >= self.capacity.value() {
            let victim = self.lru.evict_lru().expect("a full queue has a victim");
            actions.push(PolicyAction::EvictToDisk {
                page: victim,
                from: self.kind,
            });
        }
        self.lru.insert(access.page);
        actions.push(PolicyAction::FillFromDisk {
            page: access.page,
            into: self.kind,
        });
        AccessOutcome::fault_with(actions)
    }

    fn on_access_batch(&mut self, batch: &[PageAccess], out: &mut BatchOutcomes) {
        // Hits in a warm single-tier memory are the common case; compress
        // them to one-byte steps and fall back to `on_access` for faults.
        for access in batch {
            if self.lru.touch(access.page) {
                match self.kind {
                    MemoryKind::Dram => out.push_dram_hit(),
                    MemoryKind::Nvm => out.push_nvm_hit(),
                }
            } else {
                let outcome = self.on_access(*access);
                out.push_detailed(outcome);
            }
        }
    }

    fn residency(&self, page: PageId) -> Residency {
        if self.lru.contains(page) {
            Residency::InMemory(self.kind)
        } else {
            Residency::OnDisk
        }
    }

    fn occupancy(&self, kind: MemoryKind) -> u64 {
        if kind == self.kind {
            self.lru.len() as u64
        } else {
            0
        }
    }

    fn capacity(&self, kind: MemoryKind) -> PageCount {
        if kind == self.kind {
            self.capacity
        } else {
            PageCount::new(0)
        }
    }

    fn name(&self) -> &'static str {
        match self.kind {
            MemoryKind::Dram => "dram-only",
            MemoryKind::Nvm => "nvm-only",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId::new(n)
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(SingleTierPolicy::dram_only(PageCount::new(0)).is_err());
    }

    #[test]
    fn hits_after_fill() {
        let mut p = SingleTierPolicy::nvm_only(PageCount::new(2)).unwrap();
        assert!(p.on_access(PageAccess::read(page(1))).fault);
        let out = p.on_access(PageAccess::write(page(1)));
        assert_eq!(out, AccessOutcome::hit(MemoryKind::Nvm));
    }

    #[test]
    fn eviction_is_lru_order() {
        let mut p = SingleTierPolicy::dram_only(PageCount::new(2)).unwrap();
        p.on_access(PageAccess::read(page(1)));
        p.on_access(PageAccess::read(page(2)));
        p.on_access(PageAccess::read(page(1))); // 1 becomes MRU
        let out = p.on_access(PageAccess::read(page(3)));
        assert_eq!(
            out.actions[0],
            PolicyAction::EvictToDisk {
                page: page(2),
                from: MemoryKind::Dram
            }
        );
        assert_eq!(p.residency(page(2)), Residency::OnDisk);
        assert_eq!(p.residency(page(1)), Residency::InMemory(MemoryKind::Dram));
    }

    #[test]
    fn other_tier_reports_empty() {
        let p = SingleTierPolicy::dram_only(PageCount::new(4)).unwrap();
        assert_eq!(p.occupancy(MemoryKind::Nvm), 0);
        assert_eq!(p.capacity(MemoryKind::Nvm), PageCount::new(0));
        assert_eq!(p.kind(), MemoryKind::Dram);
    }

    #[test]
    fn names_differ_by_kind() {
        assert_eq!(
            SingleTierPolicy::dram_only(PageCount::new(1))
                .unwrap()
                .name(),
            "dram-only"
        );
        assert_eq!(
            SingleTierPolicy::nvm_only(PageCount::new(1))
                .unwrap()
                .name(),
            "nvm-only"
        );
    }

    #[test]
    fn never_migrates() {
        let mut p = SingleTierPolicy::nvm_only(PageCount::new(3)).unwrap();
        for i in 0..100u64 {
            let out = p.on_access(PageAccess::write(page(i % 7)));
            assert_eq!(out.migrations(), 0);
        }
    }
}
