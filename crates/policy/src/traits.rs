//! The policy interface: what a page-management policy tells the simulator.

use hybridmem_types::{MemoryKind, PageAccess, PageCount, PageId, Residency};
use serde::{Deserialize, Serialize};

/// One physical consequence of a policy decision, in the order it happens.
///
/// The simulator (`hybridmem-core`) replays these actions against the device
/// models to charge latency, energy, and NVM wear; the policies themselves
/// are pure bookkeeping and never touch the devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PolicyAction {
    /// `page` is evicted from `from` to disk (page-out). The paper charges
    /// no memory cost for this: the page leaves via DMA overlapped with the
    /// disk write.
    EvictToDisk {
        /// Page leaving main memory.
        page: PageId,
        /// Module the page leaves.
        from: MemoryKind,
    },
    /// `page` moves between the two memory modules: `PageFactor` reads of
    /// `from` plus `PageFactor` writes of `to` (Eqs. 1–2, migration terms).
    Migrate {
        /// Page being migrated.
        page: PageId,
        /// Source module.
        from: MemoryKind,
        /// Destination module.
        to: MemoryKind,
    },
    /// `page` is filled from disk into `into` after a page fault:
    /// the OS sees the disk latency; the memory side receives `PageFactor`
    /// writes (Eq. 2, page-fault terms).
    FillFromDisk {
        /// Page being brought in.
        page: PageId,
        /// Module receiving the page.
        into: MemoryKind,
    },
}

/// Everything a policy did in response to one page access.
///
/// # Examples
///
/// ```
/// use hybridmem_policy::AccessOutcome;
/// use hybridmem_types::MemoryKind;
///
/// let hit = AccessOutcome::hit(MemoryKind::Dram);
/// assert_eq!(hit.served_from, Some(MemoryKind::Dram));
/// assert!(!hit.fault);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Module that serviced the demand access, or `None` on a page fault
    /// (the fill itself satisfies the request; Eq. 1 charges only the disk
    /// latency for misses).
    pub served_from: Option<MemoryKind>,
    /// True when the access missed main memory entirely.
    pub fault: bool,
    /// Physical actions triggered by the access, in execution order.
    pub actions: Vec<PolicyAction>,
}

impl AccessOutcome {
    /// An outcome for a plain hit in `kind` with no side effects.
    #[must_use]
    pub fn hit(kind: MemoryKind) -> Self {
        Self {
            served_from: Some(kind),
            fault: false,
            actions: Vec::new(),
        }
    }

    /// An outcome for a hit in `kind` followed by `actions`
    /// (e.g. a threshold-triggered migration).
    #[must_use]
    pub fn hit_with(kind: MemoryKind, actions: Vec<PolicyAction>) -> Self {
        Self {
            served_from: Some(kind),
            fault: false,
            actions,
        }
    }

    /// An outcome for a page fault resolved by `actions`.
    #[must_use]
    pub fn fault_with(actions: Vec<PolicyAction>) -> Self {
        Self {
            served_from: None,
            fault: true,
            actions,
        }
    }

    /// Count of [`PolicyAction::Migrate`] actions in this outcome.
    #[must_use]
    pub fn migrations(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, PolicyAction::Migrate { .. }))
            .count()
    }
}

/// A page-placement/migration policy for a (possibly hybrid) main memory.
///
/// Implementations: the paper's proposed two-LRU migration scheme
/// ([`TwoLruPolicy`](crate::TwoLruPolicy)), the CLOCK-DWF baseline
/// ([`ClockDwfPolicy`](crate::ClockDwfPolicy)), single-tier LRU baselines
/// ([`SingleTierPolicy`](crate::SingleTierPolicy)), and the
/// adaptive-threshold extension
/// ([`AdaptiveTwoLruPolicy`](crate::AdaptiveTwoLruPolicy)).
///
/// The trait is object-safe: experiment runners hold policies as
/// `Box<dyn HybridPolicy>`.
pub trait HybridPolicy {
    /// Handles one page-granular access, returning what happened.
    fn on_access(&mut self, access: PageAccess) -> AccessOutcome;

    /// Where `page` currently lives.
    fn residency(&self, page: PageId) -> Residency;

    /// Number of pages currently resident in `kind`.
    fn occupancy(&self, kind: MemoryKind) -> u64;

    /// Configured capacity of `kind` (zero for a module the policy does not
    /// use, e.g. NVM under the DRAM-only baseline).
    fn capacity(&self, kind: MemoryKind) -> PageCount;

    /// Short, stable display name (used in reports and figure legends).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_constructors() {
        let h = AccessOutcome::hit(MemoryKind::Nvm);
        assert_eq!(h.served_from, Some(MemoryKind::Nvm));
        assert!(h.actions.is_empty());

        let m = AccessOutcome::hit_with(
            MemoryKind::Nvm,
            vec![PolicyAction::Migrate {
                page: PageId::new(1),
                from: MemoryKind::Nvm,
                to: MemoryKind::Dram,
            }],
        );
        assert_eq!(m.migrations(), 1);
        assert!(!m.fault);

        let f = AccessOutcome::fault_with(vec![PolicyAction::FillFromDisk {
            page: PageId::new(2),
            into: MemoryKind::Dram,
        }]);
        assert!(f.fault);
        assert_eq!(f.served_from, None);
        assert_eq!(f.migrations(), 0);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_boxed(_p: Box<dyn HybridPolicy>) {}
    }

    #[test]
    fn actions_serialize() {
        let a = PolicyAction::Migrate {
            page: PageId::new(1),
            from: MemoryKind::Nvm,
            to: MemoryKind::Dram,
        };
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.contains("migrate"));
        let back: PolicyAction = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
