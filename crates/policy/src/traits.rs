//! The policy interface: what a page-management policy tells the simulator.

use hybridmem_types::{MemoryKind, PageAccess, PageCount, PageId, Residency};
use serde::{Deserialize, Serialize};

/// One physical consequence of a policy decision, in the order it happens.
///
/// The simulator (`hybridmem-core`) replays these actions against the device
/// models to charge latency, energy, and NVM wear; the policies themselves
/// are pure bookkeeping and never touch the devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PolicyAction {
    /// `page` is evicted from `from` to disk (page-out). The paper charges
    /// no memory cost for this: the page leaves via DMA overlapped with the
    /// disk write.
    EvictToDisk {
        /// Page leaving main memory.
        page: PageId,
        /// Module the page leaves.
        from: MemoryKind,
    },
    /// `page` moves between the two memory modules: `PageFactor` reads of
    /// `from` plus `PageFactor` writes of `to` (Eqs. 1–2, migration terms).
    Migrate {
        /// Page being migrated.
        page: PageId,
        /// Source module.
        from: MemoryKind,
        /// Destination module.
        to: MemoryKind,
    },
    /// `page` is filled from disk into `into` after a page fault:
    /// the OS sees the disk latency; the memory side receives `PageFactor`
    /// writes (Eq. 2, page-fault terms).
    FillFromDisk {
        /// Page being brought in.
        page: PageId,
        /// Module receiving the page.
        into: MemoryKind,
    },
}

/// Maximum number of [`PolicyAction`]s one access can trigger.
///
/// The worst case across every policy in the repository is four — a
/// [`DramCachePolicy`](crate::DramCachePolicy) fault on full tiers evicts
/// the NVM victim, fills the page, writes back a dirty cache copy, and
/// admits the new page. Exceeding the bound panics rather than silently
/// truncating.
pub const MAX_ACTIONS_PER_ACCESS: usize = 4;

/// An inline, fixed-capacity list of [`PolicyAction`]s.
///
/// Policies produce an [`AccessOutcome`] for every one of millions of
/// trace accesses; a heap-allocated `Vec` on that path costs an
/// allocation/deallocation pair per access. `ActionList` stores up to
/// [`MAX_ACTIONS_PER_ACCESS`] actions inline (the type is `Copy`) and
/// dereferences to `&[PolicyAction]`, so consumers iterate it exactly like
/// the `Vec` it replaces.
///
/// # Panics
///
/// [`ActionList::push`] panics when the list is full — a policy emitting
/// more than [`MAX_ACTIONS_PER_ACCESS`] actions per access is a logic bug,
/// not a capacity-planning problem.
///
/// # Examples
///
/// ```
/// use hybridmem_policy::{ActionList, PolicyAction};
/// use hybridmem_types::{MemoryKind, PageId};
///
/// let mut actions = ActionList::new();
/// actions.push(PolicyAction::FillFromDisk {
///     page: PageId::new(1),
///     into: MemoryKind::Dram,
/// });
/// assert_eq!(actions.len(), 1);
/// assert!(matches!(actions[0], PolicyAction::FillFromDisk { .. }));
/// ```
#[derive(Clone, Copy)]
pub struct ActionList {
    slots: [PolicyAction; MAX_ACTIONS_PER_ACCESS],
    len: u8,
}

/// Placeholder occupying unused slots; never observable through the public
/// API (every accessor is bounded by `len`).
const UNUSED_SLOT: PolicyAction = PolicyAction::EvictToDisk {
    page: PageId::new(0),
    from: MemoryKind::Dram,
};

impl ActionList {
    /// An empty list.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            slots: [UNUSED_SLOT; MAX_ACTIONS_PER_ACCESS],
            len: 0,
        }
    }

    /// Appends an action, preserving insertion order.
    ///
    /// # Panics
    ///
    /// Panics when the list already holds [`MAX_ACTIONS_PER_ACCESS`]
    /// actions.
    #[inline]
    pub fn push(&mut self, action: PolicyAction) {
        assert!(
            (self.len as usize) < MAX_ACTIONS_PER_ACCESS,
            "ActionList overflow: a policy emitted more than \
             {MAX_ACTIONS_PER_ACCESS} actions for one access"
        );
        self.slots[self.len as usize] = action;
        self.len += 1;
    }

    /// The live actions as a slice, in insertion order.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[PolicyAction] {
        &self.slots[..self.len as usize]
    }
}

impl Default for ActionList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for ActionList {
    type Target = [PolicyAction];

    #[inline]
    fn deref(&self) -> &Self::Target {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a ActionList {
    type Item = &'a PolicyAction;
    type IntoIter = std::slice::Iter<'a, PolicyAction>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl std::fmt::Debug for ActionList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for ActionList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ActionList {}

impl PartialEq<[PolicyAction]> for ActionList {
    fn eq(&self, other: &[PolicyAction]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<PolicyAction>> for ActionList {
    fn eq(&self, other: &Vec<PolicyAction>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<ActionList> for Vec<PolicyAction> {
    fn eq(&self, other: &ActionList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[PolicyAction; N]> for ActionList {
    fn eq(&self, other: &[PolicyAction; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl FromIterator<PolicyAction> for ActionList {
    /// Collects actions in order.
    ///
    /// # Panics
    ///
    /// Panics when the iterator yields more than
    /// [`MAX_ACTIONS_PER_ACCESS`] actions.
    fn from_iter<I: IntoIterator<Item = PolicyAction>>(iter: I) -> Self {
        let mut list = Self::new();
        for action in iter {
            list.push(action);
        }
        list
    }
}

impl From<Vec<PolicyAction>> for ActionList {
    /// Converts from a `Vec` (convenience for tests and call sites built
    /// before the inline list existed).
    ///
    /// # Panics
    ///
    /// Panics when the vector holds more than [`MAX_ACTIONS_PER_ACCESS`]
    /// actions.
    fn from(actions: Vec<PolicyAction>) -> Self {
        actions.into_iter().collect()
    }
}

impl<const N: usize> From<[PolicyAction; N]> for ActionList {
    /// Converts from a fixed-size array (panics at runtime when
    /// `N > MAX_ACTIONS_PER_ACCESS`).
    fn from(actions: [PolicyAction; N]) -> Self {
        actions.into_iter().collect()
    }
}

impl Serialize for ActionList {
    /// Serializes as a sequence, exactly like the `Vec<PolicyAction>` it
    /// replaced (so existing JSON artefacts keep their shape).
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        serializer.collect_seq(self.as_slice())
    }
}

impl<'de> Deserialize<'de> for ActionList {
    /// Deserializes from a sequence, rejecting more than
    /// [`MAX_ACTIONS_PER_ACCESS`] elements.
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        let actions = Vec::<PolicyAction>::deserialize(deserializer)?;
        if actions.len() > MAX_ACTIONS_PER_ACCESS {
            return Err(serde::de::Error::custom(format!(
                "ActionList holds at most {MAX_ACTIONS_PER_ACCESS} actions, got {}",
                actions.len()
            )));
        }
        Ok(actions.into_iter().collect())
    }
}

/// Which of Algorithm 1's two per-page counters is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CounterKind {
    /// The read counter, gated by `read_threshold` inside the
    /// `readperc` window.
    Read,
    /// The write counter, gated by `write_threshold` inside the
    /// `writeperc` window.
    Write,
}

impl CounterKind {
    /// Stable lowercase name (matches the serde representation).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Read => "read",
            Self::Write => "write",
        }
    }
}

/// A snapshot of Algorithm 1's counter state at one NVM hit — the
/// *provenance* of a promotion decision (or non-decision).
///
/// The two-LRU policy attaches one of these to the [`AccessOutcome`] of
/// every NVM demand hit, so observers (the page-lifecycle ledger in
/// `hybridmem-core`) can reconstruct exactly why a page was or was not
/// promoted: its queue position, the counter values after this hit's
/// update, the thresholds in force, and any value lost to a lazy
/// counter-window reset on this access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmCounterProbe {
    /// The page's rank in the NVM LRU queue (0 = MRU) *before* this hit
    /// touched it — the position Algorithm 1 compares against the
    /// `readperc`/`writeperc` window boundaries.
    pub rank: u64,
    /// Read-counter value after this hit's update (post-reset, if one
    /// applied).
    pub reads: u32,
    /// Write-counter value after this hit's update.
    pub writes: u32,
    /// Nonzero read-counter value discarded by a lazy window reset at
    /// this hit (`0` = no lossy read reset happened here).
    pub read_lost: u32,
    /// Nonzero write-counter value discarded by a lazy window reset at
    /// this hit.
    pub write_lost: u32,
    /// The promotion threshold the read counter is compared against.
    pub read_threshold: u32,
    /// The promotion threshold the write counter is compared against.
    pub write_threshold: u32,
    /// `Some(kind)` when this hit pushed that counter past its threshold
    /// and triggered the NVM→DRAM promotion; `None` for a plain hit.
    pub fired: Option<CounterKind>,
}

/// Everything a policy did in response to one page access.
///
/// # Examples
///
/// ```
/// use hybridmem_policy::AccessOutcome;
/// use hybridmem_types::MemoryKind;
///
/// let hit = AccessOutcome::hit(MemoryKind::Dram);
/// assert_eq!(hit.served_from, Some(MemoryKind::Dram));
/// assert!(!hit.fault);
/// assert!(hit.probe.is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// Module that serviced the demand access, or `None` on a page fault
    /// (the fill itself satisfies the request; Eq. 1 charges only the disk
    /// latency for misses).
    pub served_from: Option<MemoryKind>,
    /// True when the access missed main memory entirely.
    pub fault: bool,
    /// Physical actions triggered by the access, in execution order.
    pub actions: ActionList,
    /// Counter-state provenance for NVM hits under a counter-window
    /// policy ([`NvmCounterProbe`]); `None` everywhere else. Skipped when
    /// absent so the serialized shape of probe-less outcomes is unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub probe: Option<NvmCounterProbe>,
}

impl AccessOutcome {
    /// An outcome for a plain hit in `kind` with no side effects.
    #[must_use]
    pub fn hit(kind: MemoryKind) -> Self {
        Self {
            served_from: Some(kind),
            fault: false,
            actions: ActionList::new(),
            probe: None,
        }
    }

    /// An outcome for a hit in `kind` followed by `actions`
    /// (e.g. a threshold-triggered migration).
    #[must_use]
    pub fn hit_with(kind: MemoryKind, actions: impl Into<ActionList>) -> Self {
        Self {
            served_from: Some(kind),
            fault: false,
            actions: actions.into(),
            probe: None,
        }
    }

    /// An outcome for a page fault resolved by `actions`.
    #[must_use]
    pub fn fault_with(actions: impl Into<ActionList>) -> Self {
        Self {
            served_from: None,
            fault: true,
            actions: actions.into(),
            probe: None,
        }
    }

    /// Attaches counter-state provenance (builder style; used by the
    /// two-LRU policy on every NVM demand hit).
    #[must_use]
    pub fn with_counter_probe(mut self, probe: NvmCounterProbe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Count of [`PolicyAction::Migrate`] actions in this outcome.
    #[must_use]
    pub fn migrations(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, PolicyAction::Migrate { .. }))
            .count()
    }
}

/// One entry in a [`BatchOutcomes`] step tape.
///
/// Plain hits — no actions, no fault, no probe — are the overwhelming
/// majority of a steady-state replay, so the batch path records them as
/// a one-byte code instead of a full [`AccessOutcome`]; everything else
/// (faults, promotions, probed NVM hits) is stored in full, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStep {
    /// A plain DRAM hit: exactly `AccessOutcome::hit(MemoryKind::Dram)`.
    DramHit,
    /// A plain NVM hit: exactly `AccessOutcome::hit(MemoryKind::Nvm)`.
    NvmHit,
    /// Anything else; the full outcome is the next entry of
    /// [`BatchOutcomes::detailed`].
    Detailed,
}

/// Outcomes of one [`HybridPolicy::on_access_batch`] call, in access
/// order.
///
/// The steady-state replay loop reuses one `BatchOutcomes` across
/// batches ([`BatchOutcomes::clear`] between calls), so the structure
/// allocates only while its capacity still grows. The `steps` tape has
/// one entry per access; [`BatchStep::Detailed`] entries consume the
/// next element of the `detailed` side table.
///
/// # Examples
///
/// ```
/// use hybridmem_policy::{AccessOutcome, BatchOutcomes, BatchStep};
/// use hybridmem_types::MemoryKind;
///
/// let mut out = BatchOutcomes::new();
/// out.push_dram_hit();
/// out.push_detailed(AccessOutcome::hit(MemoryKind::Nvm));
/// assert_eq!(out.len(), 2);
/// assert_eq!(out.steps()[0], BatchStep::DramHit);
/// assert_eq!(out.detailed().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchOutcomes {
    steps: Vec<BatchStep>,
    detailed: Vec<AccessOutcome>,
}

impl BatchOutcomes {
    /// An empty outcome buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer pre-sized for batches of `capacity` accesses.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            steps: Vec::with_capacity(capacity),
            detailed: Vec::new(),
        }
    }

    /// Records a plain DRAM hit.
    #[inline]
    pub fn push_dram_hit(&mut self) {
        self.steps.push(BatchStep::DramHit);
    }

    /// Records a plain NVM hit.
    #[inline]
    pub fn push_nvm_hit(&mut self) {
        self.steps.push(BatchStep::NvmHit);
    }

    /// Records a full outcome (fault, promotion, probed hit, …).
    #[inline]
    pub fn push_detailed(&mut self, outcome: AccessOutcome) {
        self.steps.push(BatchStep::Detailed);
        self.detailed.push(outcome);
    }

    /// Records `outcome` compactly when it is a plain hit, in full
    /// otherwise — what the default [`HybridPolicy::on_access_batch`]
    /// uses, so any policy's batch path is at worst the serial path.
    #[inline]
    pub fn push_outcome(&mut self, outcome: AccessOutcome) {
        if outcome.actions.is_empty() && !outcome.fault && outcome.probe.is_none() {
            match outcome.served_from {
                Some(MemoryKind::Dram) => return self.push_dram_hit(),
                Some(MemoryKind::Nvm) => return self.push_nvm_hit(),
                None => {}
            }
        }
        self.push_detailed(outcome);
    }

    /// Number of accesses recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The per-access step tape.
    #[must_use]
    pub fn steps(&self) -> &[BatchStep] {
        &self.steps
    }

    /// The detailed outcomes, in the order their [`BatchStep::Detailed`]
    /// entries appear in the tape.
    #[must_use]
    pub fn detailed(&self) -> &[AccessOutcome] {
        &self.detailed
    }

    /// Empties the buffer, retaining capacity for the next batch.
    pub fn clear(&mut self) {
        self.steps.clear();
        self.detailed.clear();
    }

    /// Reconstructs the full [`AccessOutcome`] sequence — the
    /// equivalence oracle batched≡serial tests compare against.
    #[must_use]
    pub fn expand(&self) -> Vec<AccessOutcome> {
        let mut detailed = self.detailed.iter();
        self.steps
            .iter()
            .map(|step| match step {
                BatchStep::DramHit => AccessOutcome::hit(MemoryKind::Dram),
                BatchStep::NvmHit => AccessOutcome::hit(MemoryKind::Nvm),
                BatchStep::Detailed => detailed
                    .next()
                    .cloned()
                    .expect("step tape and detailed table agree"),
            })
            .collect()
    }
}

/// A page-placement/migration policy for a (possibly hybrid) main memory.
///
/// Implementations: the paper's proposed two-LRU migration scheme
/// ([`TwoLruPolicy`](crate::TwoLruPolicy)), the CLOCK-DWF baseline
/// ([`ClockDwfPolicy`](crate::ClockDwfPolicy)), single-tier LRU baselines
/// ([`SingleTierPolicy`](crate::SingleTierPolicy)), and the
/// adaptive-threshold extension
/// ([`AdaptiveTwoLruPolicy`](crate::AdaptiveTwoLruPolicy)).
///
/// The trait is object-safe: experiment runners hold policies as
/// `Box<dyn HybridPolicy>`.
pub trait HybridPolicy {
    /// Handles one page-granular access, returning what happened.
    fn on_access(&mut self, access: PageAccess) -> AccessOutcome;

    /// Handles a batch of accesses, appending one outcome per access to
    /// `out` in order.
    ///
    /// The contract is strict equivalence: the recorded outcomes must be
    /// **identical** to calling [`HybridPolicy::on_access`] on each
    /// access in order — the serial path stays the determinism oracle,
    /// and `tests/policy_comparison.rs` compares full reports both ways.
    /// Overriding is purely a throughput lever: it amortizes the virtual
    /// dispatch to one call per batch and lets a policy keep its hot
    /// lookups in registers across accesses (see the two-LRU and
    /// single-tier overrides).
    fn on_access_batch(&mut self, batch: &[PageAccess], out: &mut BatchOutcomes) {
        for access in batch {
            let outcome = self.on_access(*access);
            out.push_outcome(outcome);
        }
    }

    /// Where `page` currently lives.
    fn residency(&self, page: PageId) -> Residency;

    /// Number of pages currently resident in `kind`.
    fn occupancy(&self, kind: MemoryKind) -> u64;

    /// Configured capacity of `kind` (zero for a module the policy does not
    /// use, e.g. NVM under the DRAM-only baseline).
    fn capacity(&self, kind: MemoryKind) -> PageCount;

    /// Short, stable display name (used in reports and figure legends).
    fn name(&self) -> &'static str;

    /// The concrete policy as `Any`, for observability code that wants to
    /// read policy-specific statistics off a `dyn HybridPolicy` (e.g. the
    /// two-LRU counter-window stats). Policies with nothing to expose keep
    /// the default `None`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evict(page: u64) -> PolicyAction {
        PolicyAction::EvictToDisk {
            page: PageId::new(page),
            from: MemoryKind::Nvm,
        }
    }

    #[test]
    fn action_list_preserves_insertion_order() {
        let mut list = ActionList::new();
        assert!(list.is_empty());
        for page in 1..=4u64 {
            list.push(evict(page));
        }
        assert_eq!(list.len(), 4);
        let pages: Vec<u64> = list
            .iter()
            .map(|a| match a {
                PolicyAction::EvictToDisk { page, .. } => page.value(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(pages, vec![1, 2, 3, 4]);
        // Iteration by reference (the simulator's loop shape) sees the
        // same order.
        let mut seen = Vec::new();
        for action in &list {
            seen.push(*action);
        }
        assert_eq!(list, seen);
    }

    #[test]
    #[should_panic(expected = "ActionList overflow")]
    fn action_list_panics_on_overflow() {
        let mut list = ActionList::new();
        for page in 0..=MAX_ACTIONS_PER_ACCESS as u64 {
            list.push(evict(page));
        }
    }

    #[test]
    fn action_list_compares_against_vecs_and_arrays() {
        let list: ActionList = vec![evict(1), evict(2)].into();
        assert_eq!(list, vec![evict(1), evict(2)]);
        assert_eq!(vec![evict(1), evict(2)], list);
        assert_eq!(list, [evict(1), evict(2)]);
        assert_ne!(list, ActionList::new());
        assert_eq!(format!("{list:?}"), format!("{:?}", [evict(1), evict(2)]));
    }

    #[test]
    fn action_list_serde_round_trip_matches_vec_shape() {
        let list: ActionList = vec![evict(7)].into();
        let json = serde_json::to_string(&list).unwrap();
        let as_vec = serde_json::to_string(&vec![evict(7)]).unwrap();
        assert_eq!(json, as_vec, "wire format must match the old Vec");
        let back: ActionList = serde_json::from_str(&json).unwrap();
        assert_eq!(back, list);
        let too_many = serde_json::to_string(&vec![evict(1); 5]).unwrap();
        assert!(serde_json::from_str::<ActionList>(&too_many).is_err());
    }

    #[test]
    fn outcome_constructors() {
        let h = AccessOutcome::hit(MemoryKind::Nvm);
        assert_eq!(h.served_from, Some(MemoryKind::Nvm));
        assert!(h.actions.is_empty());

        let m = AccessOutcome::hit_with(
            MemoryKind::Nvm,
            vec![PolicyAction::Migrate {
                page: PageId::new(1),
                from: MemoryKind::Nvm,
                to: MemoryKind::Dram,
            }],
        );
        assert_eq!(m.migrations(), 1);
        assert!(!m.fault);

        let f = AccessOutcome::fault_with(vec![PolicyAction::FillFromDisk {
            page: PageId::new(2),
            into: MemoryKind::Dram,
        }]);
        assert!(f.fault);
        assert_eq!(f.served_from, None);
        assert_eq!(f.migrations(), 0);
    }

    #[test]
    fn probe_is_skipped_when_absent_and_round_trips_when_present() {
        // Probe-less outcomes keep the exact pre-provenance wire shape.
        let hit = AccessOutcome::hit(MemoryKind::Nvm);
        let json = serde_json::to_string(&hit).unwrap();
        assert!(!json.contains("probe"), "{json}");
        let back: AccessOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hit);

        let probe = NvmCounterProbe {
            rank: 3,
            reads: 7,
            writes: 1,
            read_lost: 0,
            write_lost: 2,
            read_threshold: 6,
            write_threshold: 12,
            fired: Some(CounterKind::Read),
        };
        let promoted = AccessOutcome::hit(MemoryKind::Nvm).with_counter_probe(probe);
        let json = serde_json::to_string(&promoted).unwrap();
        assert!(json.contains("\"fired\":\"read\""), "{json}");
        let back: AccessOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.probe, Some(probe));
        assert_eq!(CounterKind::Write.name(), "write");
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_boxed(_p: Box<dyn HybridPolicy>) {}
    }

    #[test]
    fn actions_serialize() {
        let a = PolicyAction::Migrate {
            page: PageId::new(1),
            from: MemoryKind::Nvm,
            to: MemoryKind::Dram,
        };
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.contains("migrate"));
        let back: PolicyAction = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
