//! A generic CLOCK (second-chance) ring with per-frame metadata.
//!
//! CLOCK approximates LRU with a circular scan and one reference bit per
//! frame. CLOCK-DWF builds on two such rings — a plain one for NVM and a
//! write-history-aware one for DRAM — so the ring is generic over a
//! metadata type `M` and takes the extra-chance predicate as a closure at
//! eviction time.
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::ClockRing;
//! use hybridmem_types::PageId;
//!
//! let mut ring: ClockRing<()> = ClockRing::new(2);
//! ring.insert(PageId::new(1), ());
//! ring.insert(PageId::new(2), ());
//! ring.touch(PageId::new(2));
//!
//! // Page 1 was never referenced after insertion cleared its bit round 1;
//! // the scan clears page bits and evicts the first unreferenced frame.
//! let (victim, ()) = ring.evict_with(|_meta| false);
//! assert_eq!(victim, PageId::new(1));
//! ```

use hybridmem_types::{FxBuildHasher, FxHashMap, PageId};

#[derive(Debug, Clone)]
struct Frame<M> {
    page: PageId,
    referenced: bool,
    meta: M,
}

/// A fixed-capacity CLOCK ring mapping pages to frames with metadata `M`.
///
/// Frames freed by [`ClockRing::remove`] are reused by later insertions;
/// the clock hand skips empty slots.
#[derive(Debug, Clone)]
pub struct ClockRing<M> {
    frames: Vec<Option<Frame<M>>>,
    map: FxHashMap<PageId, usize>,
    hand: usize,
    capacity: usize,
}

impl<M> ClockRing<M> {
    /// Creates an empty ring with room for `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "clock ring capacity must be at least 1");
        Self {
            frames: (0..capacity).map(|_| None).collect(),
            map: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            hand: 0,
            capacity,
        }
    }

    /// Number of resident pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pages are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True when every frame is occupied.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.map.len() == self.capacity
    }

    /// The configured capacity in pages.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when `page` is resident.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Current position of the clock hand (a frame index in
    /// `0..capacity()`); exposed for diagnostics and invariant tests.
    #[must_use]
    pub const fn hand(&self) -> usize {
        self.hand
    }

    /// Inserts `page` with its metadata into a free frame, with the
    /// reference bit set (a newly loaded page counts as referenced).
    ///
    /// # Panics
    ///
    /// Panics if the ring is full or the page is already resident; callers
    /// must evict first — eviction policy is theirs, not the ring's.
    pub fn insert(&mut self, page: PageId, meta: M) {
        assert!(
            !self.is_full(),
            "clock ring is full; evict before inserting"
        );
        assert!(
            !self.map.contains_key(&page),
            "page {page} is already in the clock ring"
        );
        let idx = self
            .frames
            .iter()
            .position(Option::is_none)
            .expect("a non-full ring has a free frame");
        self.frames[idx] = Some(Frame {
            page,
            referenced: true,
            meta,
        });
        self.map.insert(page, idx);
    }

    /// Sets the reference bit of `page` and returns its metadata for
    /// updating. Returns `None` when the page is not resident.
    pub fn touch(&mut self, page: PageId) -> Option<&mut M> {
        let &idx = self.map.get(&page)?;
        let frame = self.frames[idx].as_mut().expect("mapped frame is occupied");
        frame.referenced = true;
        Some(&mut frame.meta)
    }

    /// Reads the metadata of `page` without touching the reference bit.
    #[must_use]
    pub fn meta(&self, page: PageId) -> Option<&M> {
        let &idx = self.map.get(&page)?;
        Some(
            &self.frames[idx]
                .as_ref()
                .expect("mapped frame is occupied")
                .meta,
        )
    }

    /// Removes `page` from the ring, returning its metadata.
    pub fn remove(&mut self, page: PageId) -> Option<M> {
        let idx = self.map.remove(&page)?;
        let frame = self.frames[idx].take().expect("mapped frame is occupied");
        Some(frame.meta)
    }

    /// Runs the CLOCK scan and evicts one page, returning it with its
    /// metadata.
    ///
    /// At each occupied frame under the hand:
    ///
    /// 1. a set reference bit is cleared and the frame skipped (the classic
    ///    second chance);
    /// 2. otherwise `extra_chance(&mut meta)` is consulted — returning
    ///    `true` spares the frame this round (CLOCK-DWF uses this to keep
    ///    write-dominant pages in DRAM, decaying their write history);
    /// 3. otherwise the frame is evicted and the hand advances past it.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn evict_with<F>(&mut self, mut extra_chance: F) -> (PageId, M)
    where
        F: FnMut(&mut M) -> bool,
    {
        assert!(!self.is_empty(), "cannot evict from an empty clock ring");
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            let Some(frame) = self.frames[idx].as_mut() else {
                continue;
            };
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            if extra_chance(&mut frame.meta) {
                continue;
            }
            let frame = self.frames[idx].take().expect("frame checked above");
            self.map.remove(&frame.page);
            return (frame.page, frame.meta);
        }
    }

    /// Resident pages in frame order (diagnostics/tests).
    #[must_use]
    pub fn pages(&self) -> Vec<PageId> {
        self.frames
            .iter()
            .filter_map(|f| f.as_ref().map(|f| f.page))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId::new(n)
    }

    #[test]
    fn insert_touch_contains() {
        let mut ring: ClockRing<u32> = ClockRing::new(3);
        ring.insert(page(1), 10);
        ring.insert(page(2), 20);
        assert!(ring.contains(page(1)));
        assert_eq!(ring.len(), 2);
        assert!(!ring.is_full());
        *ring.touch(page(1)).unwrap() += 5;
        assert_eq!(ring.meta(page(1)), Some(&15));
        assert!(ring.touch(page(9)).is_none());
        assert_eq!(ring.meta(page(9)), None);
    }

    #[test]
    fn second_chance_order() {
        let mut ring: ClockRing<()> = ClockRing::new(3);
        for n in 1..=3 {
            ring.insert(page(n), ());
        }
        // All inserted referenced. First scan clears 1,2,3 then evicts 1.
        let (v, ()) = ring.evict_with(|_| false);
        assert_eq!(v, page(1));
        // 2 and 3 now have cleared bits; hand is past frame 1.
        let (v, ()) = ring.evict_with(|_| false);
        assert_eq!(v, page(2));
    }

    #[test]
    fn touch_grants_second_chance() {
        let mut ring: ClockRing<()> = ClockRing::new(3);
        for n in 1..=3 {
            ring.insert(page(n), ());
        }
        let (_, ()) = ring.evict_with(|_| false); // evicts 1, clears 2 and 3
        ring.insert(page(4), ());
        ring.touch(page(2));
        // Hand at frame 1 (page 2): referenced → cleared, skip; page 3
        // unreferenced → evicted.
        let (v, ()) = ring.evict_with(|_| false);
        assert_eq!(v, page(3));
        assert!(ring.contains(page(2)));
    }

    #[test]
    fn extra_chance_spares_frames_once() {
        let mut ring: ClockRing<u32> = ClockRing::new(2);
        ring.insert(page(1), 2);
        ring.insert(page(2), 0);
        // Clear all reference bits with one throwaway scan setup: evict with
        // a predicate that decrements write history and spares while > 0.
        let (victim, meta) = ring.evict_with(|w| {
            if *w > 0 {
                *w -= 1;
                true
            } else {
                false
            }
        });
        // Round 1 clears ref bits; round 2: page 1 spared (2→1), page 2
        // evicted (history 0).
        assert_eq!(victim, page(2));
        assert_eq!(meta, 0);
        assert_eq!(ring.meta(page(1)), Some(&1));
    }

    #[test]
    fn remove_frees_frame_for_reuse() {
        let mut ring: ClockRing<char> = ClockRing::new(2);
        ring.insert(page(1), 'a');
        ring.insert(page(2), 'b');
        assert!(ring.is_full());
        assert_eq!(ring.remove(page(1)), Some('a'));
        assert_eq!(ring.remove(page(1)), None);
        assert!(!ring.is_full());
        ring.insert(page(3), 'c');
        assert!(ring.is_full());
        let mut pages = ring.pages();
        pages.sort();
        assert_eq!(pages, vec![page(2), page(3)]);
    }

    #[test]
    fn hand_skips_holes() {
        let mut ring: ClockRing<()> = ClockRing::new(4);
        for n in 1..=4 {
            ring.insert(page(n), ());
        }
        ring.remove(page(1));
        ring.remove(page(3));
        // Scan must still terminate and evict one of the occupied frames.
        let (v, ()) = ring.evict_with(|_| false);
        assert!(v == page(2) || v == page(4));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn insert_into_full_ring_panics() {
        let mut ring: ClockRing<()> = ClockRing::new(1);
        ring.insert(page(1), ());
        ring.insert(page(2), ());
    }

    #[test]
    #[should_panic(expected = "already in the clock ring")]
    fn double_insert_panics() {
        let mut ring: ClockRing<()> = ClockRing::new(2);
        ring.insert(page(1), ());
        ring.insert(page(1), ());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn evict_from_empty_panics() {
        let mut ring: ClockRing<()> = ClockRing::new(2);
        let _ = ring.evict_with(|_| false);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _: ClockRing<()> = ClockRing::new(0);
    }
}
