//! CLOCK-DWF (Lee, Bahn & Noh, IEEE TC 2013) — the state-of-the-art
//! baseline the paper compares against.
//!
//! CLOCK-DWF ("CLOCK with Dirty bits and Write Frequency") manages a hybrid
//! PCM+DRAM memory with two clock rings:
//!
//! * **NVM ring** — a traditional CLOCK, with one twist: *no write is ever
//!   served by NVM*. A write hit on an NVM-resident page immediately
//!   migrates the page to DRAM (evicting a DRAM page to NVM when DRAM is
//!   full). This protects PCM cells from demand writes but — as the paper's
//!   motivation section shows — floods the system with page migrations,
//!   each costing `PageFactor` memory accesses.
//! * **DRAM ring** — a write-history-aware CLOCK that tries to keep
//!   write-dominant pages in DRAM and demote read-dominant pages to NVM:
//!   frames carry a write-frequency counter that earns extra scan chances
//!   and decays each time it is spent.
//!
//! On a page fault, a write fills into DRAM and a read fills into NVM —
//! except that reads also fill into DRAM while DRAM has free frames (the
//! paper notes this for `blackscholes`: "when DRAM is empty, the data page
//! will be moved to DRAM regardless of the type of the request").
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::{ClockDwfPolicy, HybridPolicy};
//! use hybridmem_types::{MemoryKind, PageAccess, PageCount, PageId, Residency};
//!
//! let mut policy = ClockDwfPolicy::new(PageCount::new(2), PageCount::new(8))?;
//! // A read fault with free DRAM fills DRAM...
//! policy.on_access(PageAccess::read(PageId::new(1)));
//! assert_eq!(policy.residency(PageId::new(1)), Residency::InMemory(MemoryKind::Dram));
//! # Ok::<(), hybridmem_types::Error>(())
//! ```

use hybridmem_types::{
    AccessKind, Error, MemoryKind, PageAccess, PageCount, PageId, Residency, Result,
};

use crate::{AccessOutcome, ActionList, ClockRing, HybridPolicy, PolicyAction};

/// Per-frame metadata of the DRAM ring: the page's write history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct WriteHistory {
    /// Decaying count of write hits while resident in DRAM.
    writes: u32,
}

/// The CLOCK-DWF hybrid-memory policy.
///
/// See the module documentation (in the source) for the algorithm.
#[derive(Debug, Clone)]
pub struct ClockDwfPolicy {
    dram: ClockRing<WriteHistory>,
    nvm: ClockRing<()>,
    dram_capacity: PageCount,
    nvm_capacity: PageCount,
}

impl ClockDwfPolicy {
    /// Creates the policy with the given module capacities.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when either capacity is zero.
    pub fn new(dram_capacity: PageCount, nvm_capacity: PageCount) -> Result<Self> {
        if dram_capacity.is_zero() || nvm_capacity.is_zero() {
            return Err(Error::invalid_config(
                "DRAM and NVM capacities must both be at least one page",
            ));
        }
        #[allow(clippy::cast_possible_truncation)]
        Ok(Self {
            dram: ClockRing::new(dram_capacity.value() as usize),
            nvm: ClockRing::new(nvm_capacity.value() as usize),
            dram_capacity,
            nvm_capacity,
        })
    }

    /// The write-history scan predicate: a frame with remaining write
    /// history is spared and its history decays (halves), so pages written
    /// often in DRAM survive several scans before demotion.
    fn spare_write_dominant(history: &mut WriteHistory) -> bool {
        if history.writes > 0 {
            history.writes /= 2;
            true
        } else {
            false
        }
    }

    /// Frees one DRAM frame by demoting the scan victim to NVM, evicting an
    /// NVM page to disk first when NVM is also full. Returns the actions in
    /// execution order.
    fn make_dram_room(&mut self, actions: &mut ActionList) {
        debug_assert!(self.dram.is_full());
        if self.nvm.is_full() {
            let (out, ()) = self.nvm.evict_with(|()| false);
            actions.push(PolicyAction::EvictToDisk {
                page: out,
                from: MemoryKind::Nvm,
            });
        }
        let (victim, _history) = self.dram.evict_with(Self::spare_write_dominant);
        self.nvm.insert(victim, ());
        actions.push(PolicyAction::Migrate {
            page: victim,
            from: MemoryKind::Dram,
            to: MemoryKind::Nvm,
        });
    }

    /// Handles a write hit on an NVM page: unconditional migration to DRAM.
    fn on_nvm_write_hit(&mut self, page: PageId) -> AccessOutcome {
        let mut actions = ActionList::new();
        self.nvm.remove(page);
        if self.dram.is_full() {
            // The promotion frees an NVM slot, so the demoted DRAM victim
            // always fits without a disk eviction.
            let (victim, _history) = self.dram.evict_with(Self::spare_write_dominant);
            self.nvm.insert(victim, ());
            actions.push(PolicyAction::Migrate {
                page: victim,
                from: MemoryKind::Dram,
                to: MemoryKind::Nvm,
            });
        }
        self.dram.insert(page, WriteHistory { writes: 1 });
        actions.push(PolicyAction::Migrate {
            page,
            from: MemoryKind::Nvm,
            to: MemoryKind::Dram,
        });
        // The write is ultimately serviced by DRAM — CLOCK-DWF never lets a
        // demand write reach NVM.
        AccessOutcome::hit_with(MemoryKind::Dram, actions)
    }

    /// Handles a page fault: writes fill DRAM; reads fill NVM unless DRAM
    /// still has free frames.
    fn on_fault(&mut self, page: PageId, kind: AccessKind) -> AccessOutcome {
        let mut actions = ActionList::new();
        let into = match kind {
            AccessKind::Write => MemoryKind::Dram,
            AccessKind::Read => {
                if self.dram.is_full() {
                    MemoryKind::Nvm
                } else {
                    MemoryKind::Dram
                }
            }
        };
        match into {
            MemoryKind::Dram => {
                if self.dram.is_full() {
                    self.make_dram_room(&mut actions);
                }
                let writes = u32::from(kind.is_write());
                self.dram.insert(page, WriteHistory { writes });
            }
            MemoryKind::Nvm => {
                if self.nvm.is_full() {
                    let (out, ()) = self.nvm.evict_with(|()| false);
                    actions.push(PolicyAction::EvictToDisk {
                        page: out,
                        from: MemoryKind::Nvm,
                    });
                }
                self.nvm.insert(page, ());
            }
        }
        actions.push(PolicyAction::FillFromDisk { page, into });
        AccessOutcome::fault_with(actions)
    }
}

impl HybridPolicy for ClockDwfPolicy {
    fn on_access(&mut self, access: PageAccess) -> AccessOutcome {
        if self.dram.contains(access.page) {
            let history = self
                .dram
                .touch(access.page)
                .expect("page is in the DRAM ring by precondition");
            if access.kind.is_write() {
                history.writes = history.writes.saturating_add(1);
            }
            AccessOutcome::hit(MemoryKind::Dram)
        } else if self.nvm.contains(access.page) {
            match access.kind {
                AccessKind::Read => {
                    self.nvm.touch(access.page);
                    AccessOutcome::hit(MemoryKind::Nvm)
                }
                AccessKind::Write => self.on_nvm_write_hit(access.page),
            }
        } else {
            self.on_fault(access.page, access.kind)
        }
    }

    fn residency(&self, page: PageId) -> Residency {
        if self.dram.contains(page) {
            Residency::InMemory(MemoryKind::Dram)
        } else if self.nvm.contains(page) {
            Residency::InMemory(MemoryKind::Nvm)
        } else {
            Residency::OnDisk
        }
    }

    fn occupancy(&self, kind: MemoryKind) -> u64 {
        match kind {
            MemoryKind::Dram => self.dram.len() as u64,
            MemoryKind::Nvm => self.nvm.len() as u64,
        }
    }

    fn capacity(&self, kind: MemoryKind) -> PageCount {
        match kind {
            MemoryKind::Dram => self.dram_capacity,
            MemoryKind::Nvm => self.nvm_capacity,
        }
    }

    fn name(&self) -> &'static str {
        "clock-dwf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId::new(n)
    }

    fn policy(dram: u64, nvm: u64) -> ClockDwfPolicy {
        ClockDwfPolicy::new(PageCount::new(dram), PageCount::new(nvm)).unwrap()
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(ClockDwfPolicy::new(PageCount::new(0), PageCount::new(1)).is_err());
        assert!(ClockDwfPolicy::new(PageCount::new(1), PageCount::new(0)).is_err());
    }

    #[test]
    fn write_fault_fills_dram() {
        let mut p = policy(2, 4);
        let out = p.on_access(PageAccess::write(page(1)));
        assert!(out.fault);
        assert_eq!(
            out.actions,
            vec![PolicyAction::FillFromDisk {
                page: page(1),
                into: MemoryKind::Dram
            }]
        );
    }

    #[test]
    fn read_fault_fills_nvm_once_dram_is_full() {
        let mut p = policy(1, 4);
        p.on_access(PageAccess::read(page(1))); // free DRAM → DRAM
        assert_eq!(p.residency(page(1)), Residency::InMemory(MemoryKind::Dram));
        let out = p.on_access(PageAccess::read(page(2)));
        assert_eq!(
            out.actions,
            vec![PolicyAction::FillFromDisk {
                page: page(2),
                into: MemoryKind::Nvm
            }]
        );
        assert_eq!(p.residency(page(2)), Residency::InMemory(MemoryKind::Nvm));
    }

    #[test]
    fn nvm_read_hit_stays_in_nvm() {
        let mut p = policy(1, 4);
        p.on_access(PageAccess::read(page(1)));
        p.on_access(PageAccess::read(page(2))); // → NVM
        let out = p.on_access(PageAccess::read(page(2)));
        assert_eq!(out, AccessOutcome::hit(MemoryKind::Nvm));
    }

    #[test]
    fn nvm_write_hit_always_migrates() {
        let mut p = policy(1, 4);
        p.on_access(PageAccess::read(page(1))); // DRAM
        p.on_access(PageAccess::read(page(2))); // NVM
        let out = p.on_access(PageAccess::write(page(2)));
        assert!(!out.fault);
        assert_eq!(out.served_from, Some(MemoryKind::Dram));
        assert_eq!(
            out.actions,
            vec![
                PolicyAction::Migrate {
                    page: page(1),
                    from: MemoryKind::Dram,
                    to: MemoryKind::Nvm
                },
                PolicyAction::Migrate {
                    page: page(2),
                    from: MemoryKind::Nvm,
                    to: MemoryKind::Dram
                },
            ]
        );
        assert_eq!(p.residency(page(2)), Residency::InMemory(MemoryKind::Dram));
        assert_eq!(p.residency(page(1)), Residency::InMemory(MemoryKind::Nvm));
    }

    #[test]
    fn no_demand_write_is_ever_served_by_nvm() {
        let mut p = policy(2, 4);
        let mut writes_served_by_nvm = 0;
        for i in 0..200u64 {
            let acc = if i % 3 == 0 {
                PageAccess::write(page(i % 10))
            } else {
                PageAccess::read(page(i % 10))
            };
            let out = p.on_access(acc);
            if acc.kind.is_write() && out.served_from == Some(MemoryKind::Nvm) {
                writes_served_by_nvm += 1;
            }
        }
        assert_eq!(writes_served_by_nvm, 0);
    }

    #[test]
    fn write_fault_with_full_memory_cascades() {
        let mut p = policy(1, 1);
        p.on_access(PageAccess::write(page(1))); // DRAM
        p.on_access(PageAccess::read(page(2))); // NVM (DRAM full)
        let out = p.on_access(PageAccess::write(page(3)));
        assert_eq!(
            out.actions,
            vec![
                PolicyAction::EvictToDisk {
                    page: page(2),
                    from: MemoryKind::Nvm
                },
                PolicyAction::Migrate {
                    page: page(1),
                    from: MemoryKind::Dram,
                    to: MemoryKind::Nvm
                },
                PolicyAction::FillFromDisk {
                    page: page(3),
                    into: MemoryKind::Dram
                },
            ]
        );
    }

    #[test]
    fn occupancy_respects_capacity() {
        let mut p = policy(2, 3);
        for i in 0..100u64 {
            let acc = if i % 4 == 0 {
                PageAccess::write(page(i % 9))
            } else {
                PageAccess::read(page(i % 9))
            };
            p.on_access(acc);
            assert!(p.occupancy(MemoryKind::Dram) <= 2);
            assert!(p.occupancy(MemoryKind::Nvm) <= 3);
        }
    }

    #[test]
    fn write_history_protects_dram_pages() {
        // DRAM cap 2. Page 1 is written often; page 2 only read. When room
        // must be made, the read-only page should be demoted.
        let mut p = policy(2, 4);
        p.on_access(PageAccess::write(page(1)));
        p.on_access(PageAccess::read(page(2))); // DRAM had room
        for _ in 0..4 {
            p.on_access(PageAccess::write(page(1)));
        }
        // Fault a write → must demote one DRAM page.
        p.on_access(PageAccess::write(page(3)));
        assert_eq!(p.residency(page(1)), Residency::InMemory(MemoryKind::Dram));
        assert_eq!(p.residency(page(2)), Residency::InMemory(MemoryKind::Nvm));
    }

    #[test]
    fn name_and_capacity() {
        let p = policy(2, 4);
        assert_eq!(p.name(), "clock-dwf");
        assert_eq!(p.capacity(MemoryKind::Dram), PageCount::new(2));
        assert_eq!(p.capacity(MemoryKind::Nvm), PageCount::new(4));
    }
}
