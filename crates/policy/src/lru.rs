//! A ranked LRU queue: O(log n) touch, evict, and recency-rank queries.
//!
//! The proposed migration scheme keeps per-page counters only for pages in
//! the *top positions* of the NVM LRU queue (Algorithm 1: `readperc` /
//! `writeperc`). Deciding "is this page within the top k positions?" is a
//! *recency rank* query, which a plain linked-list LRU answers only in
//! O(n). [`RankedLru`] answers it in O(log n) using the classic
//! slot-numbering technique: every touch assigns the page a fresh,
//! monotonically increasing slot number; a Fenwick (binary indexed) tree
//! over slot occupancy then yields both rank queries and the
//! least-recently-used victim in logarithmic time, with periodic O(n log n)
//! compaction when slot space runs out.
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::RankedLru;
//! use hybridmem_types::PageId;
//!
//! let mut lru = RankedLru::new();
//! lru.insert(PageId::new(1));
//! lru.insert(PageId::new(2));
//! lru.insert(PageId::new(3));
//! assert_eq!(lru.rank(PageId::new(3)), Some(0)); // most recently used
//! assert_eq!(lru.rank(PageId::new(1)), Some(2)); // least recently used
//!
//! lru.touch(PageId::new(1));
//! assert_eq!(lru.rank(PageId::new(1)), Some(0));
//! assert_eq!(lru.evict_lru(), Some(PageId::new(2)));
//! ```

use hybridmem_types::{FxBuildHasher, FxHashMap, PageId};

/// Sentinel for "slot unoccupied" in the slot → entry map.
const EMPTY: usize = usize::MAX;

/// Minimum slot capacity; also the floor after compaction.
const MIN_SLOTS: usize = 16;

#[derive(Debug, Clone)]
struct Entry {
    page: PageId,
    slot: usize,
}

/// Fenwick tree over slot occupancy (1-based internally).
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn with_len(len: usize) -> Self {
        Self {
            tree: vec![0; len + 1],
        }
    }

    fn add(&mut self, index: usize, delta: i32) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Number of occupied slots in `[0, index]`.
    fn prefix(&self, index: usize) -> u32 {
        let mut i = (index + 1).min(self.tree.len() - 1);
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Index of the k-th (1-based) occupied slot, if any.
    fn select(&self, k: u32) -> Option<usize> {
        if k == 0 {
            return None;
        }
        let mut remaining = k;
        let mut pos = 0usize;
        let mut mask = self.tree.len().next_power_of_two() >> 1;
        while mask > 0 {
            let next = pos + mask;
            if next < self.tree.len() && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        // pos is now the largest index with prefix < k; the answer is pos
        // (0-based slot pos, since the tree is 1-based).
        if pos < self.tree.len() - 1 {
            Some(pos)
        } else {
            None
        }
    }
}

/// An LRU queue over [`PageId`]s with logarithmic recency-rank queries.
///
/// Rank 0 is the most recently used page; rank `len() - 1` is the LRU
/// victim. See the module documentation (in the source) for the data-structure
/// sketch and complexity analysis.
#[derive(Debug, Clone, Default)]
pub struct RankedLru {
    map: FxHashMap<PageId, usize>,
    entries: Vec<Entry>,
    free: Vec<usize>,
    slot_to_entry: Vec<usize>,
    fenwick: Fenwick,
    next_slot: usize,
}

impl RankedLru {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            map: FxHashMap::default(),
            entries: Vec::new(),
            free: Vec::new(),
            slot_to_entry: vec![EMPTY; MIN_SLOTS],
            fenwick: Fenwick::with_len(MIN_SLOTS),
            next_slot: 0,
        }
    }

    /// Creates an empty queue pre-sized for about `capacity` pages.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity * 4).max(MIN_SLOTS);
        Self {
            map: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            slot_to_entry: vec![EMPTY; slots],
            fenwick: Fenwick::with_len(slots),
            next_slot: 0,
        }
    }

    /// Number of pages in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the queue holds no pages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True when `page` is in the queue.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Inserts `page` at the MRU position.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already in the queue; use [`RankedLru::touch`]
    /// for pages that may be present.
    pub fn insert(&mut self, page: PageId) {
        assert!(
            !self.map.contains_key(&page),
            "page {page} is already in the LRU queue"
        );
        let slot = self.take_slot();
        let idx = if let Some(idx) = self.free.pop() {
            self.entries[idx] = Entry { page, slot };
            idx
        } else {
            self.entries.push(Entry { page, slot });
            self.entries.len() - 1
        };
        self.slot_to_entry[slot] = idx;
        self.fenwick.add(slot, 1);
        self.map.insert(page, idx);
    }

    /// Moves `page` to the MRU position. Returns true when the page was
    /// present (and was therefore moved).
    pub fn touch(&mut self, page: PageId) -> bool {
        // Remove + reinsert keeps the slot bookkeeping trivially consistent
        // even when the reinsertion triggers a compaction; both halves are
        // O(log n) and the freed slab index is reused immediately.
        if !self.remove(page) {
            return false;
        }
        self.insert(page);
        true
    }

    /// Removes and returns the least-recently-used page.
    pub fn evict_lru(&mut self) -> Option<PageId> {
        let victim = self.peek_lru()?;
        self.remove(victim);
        Some(victim)
    }

    /// Returns the least-recently-used page without removing it.
    #[must_use]
    pub fn peek_lru(&self) -> Option<PageId> {
        let slot = self.fenwick.select(1)?;
        let idx = self.slot_to_entry[slot];
        debug_assert_ne!(idx, EMPTY);
        Some(self.entries[idx].page)
    }

    /// Removes `page` from the queue. Returns true when it was present.
    pub fn remove(&mut self, page: PageId) -> bool {
        let Some(idx) = self.map.remove(&page) else {
            return false;
        };
        let slot = self.entries[idx].slot;
        self.fenwick.add(slot, -1);
        self.slot_to_entry[slot] = EMPTY;
        self.free.push(idx);
        true
    }

    /// Recency rank of `page`: 0 for the MRU page, `len() - 1` for the LRU
    /// page, `None` when absent.
    #[must_use]
    pub fn rank(&self, page: PageId) -> Option<usize> {
        let &idx = self.map.get(&page)?;
        let slot = self.entries[idx].slot;
        // Pages with slots *greater* than ours are more recent.
        let at_or_before = self.fenwick.prefix(slot);
        Some(self.map.len() - at_or_before as usize)
    }

    /// Pages ordered from MRU to LRU. O(n log n); intended for tests,
    /// debugging, and snapshots rather than per-access use.
    #[must_use]
    pub fn pages_by_recency(&self) -> Vec<PageId> {
        let mut present: Vec<&Entry> = self.map.values().map(|&idx| &self.entries[idx]).collect();
        present.sort_by_key(|e| std::cmp::Reverse(e.slot));
        present.iter().map(|e| e.page).collect()
    }

    /// Allocates a fresh MRU slot, compacting the slot space when full.
    fn take_slot(&mut self) -> usize {
        if self.next_slot == self.slot_to_entry.len() {
            self.compact();
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        slot
    }

    /// Renumbers all present pages into slots `0..len` (preserving order)
    /// and resizes the slot space to 4× the live population.
    fn compact(&mut self) {
        let mut live: Vec<usize> = self.map.values().copied().collect();
        live.sort_by_key(|&idx| self.entries[idx].slot);
        let new_len = (live.len() * 4).max(MIN_SLOTS);
        self.slot_to_entry = vec![EMPTY; new_len];
        self.fenwick = Fenwick::with_len(new_len);
        for (slot, idx) in live.into_iter().enumerate() {
            self.entries[idx].slot = slot;
            self.slot_to_entry[slot] = idx;
            self.fenwick.add(slot, 1);
        }
        self.next_slot = self.map.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId::new(n)
    }

    #[test]
    fn insert_and_rank_order() {
        let mut lru = RankedLru::new();
        for n in 0..5 {
            lru.insert(page(n));
        }
        assert_eq!(lru.len(), 5);
        for n in 0..5 {
            assert_eq!(lru.rank(page(n)), Some(4 - n as usize));
        }
        assert_eq!(lru.rank(page(99)), None);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut lru = RankedLru::new();
        for n in 0..4 {
            lru.insert(page(n));
        }
        assert!(lru.touch(page(0)));
        assert_eq!(lru.rank(page(0)), Some(0));
        assert_eq!(lru.rank(page(1)), Some(3));
        assert!(!lru.touch(page(42)));
    }

    #[test]
    fn evict_returns_lru_order() {
        let mut lru = RankedLru::new();
        for n in 0..4 {
            lru.insert(page(n));
        }
        lru.touch(page(0)); // order (MRU..LRU): 0,3,2,1
        assert_eq!(lru.evict_lru(), Some(page(1)));
        assert_eq!(lru.evict_lru(), Some(page(2)));
        assert_eq!(lru.evict_lru(), Some(page(3)));
        assert_eq!(lru.evict_lru(), Some(page(0)));
        assert_eq!(lru.evict_lru(), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut lru = RankedLru::new();
        lru.insert(page(1));
        lru.insert(page(2));
        assert_eq!(lru.peek_lru(), Some(page(1)));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn remove_arbitrary_pages() {
        let mut lru = RankedLru::new();
        for n in 0..6 {
            lru.insert(page(n));
        }
        assert!(lru.remove(page(3)));
        assert!(!lru.remove(page(3)));
        assert!(!lru.contains(page(3)));
        assert_eq!(lru.len(), 5);
        assert_eq!(
            lru.pages_by_recency(),
            vec![page(5), page(4), page(2), page(1), page(0)]
        );
    }

    #[test]
    #[should_panic(expected = "already in the LRU queue")]
    fn double_insert_panics() {
        let mut lru = RankedLru::new();
        lru.insert(page(1));
        lru.insert(page(1));
    }

    #[test]
    fn compaction_preserves_order() {
        let mut lru = RankedLru::new();
        for n in 0..8 {
            lru.insert(page(n));
        }
        // Force many slot allocations to trigger several compactions.
        for round in 0..100 {
            for n in 0..8 {
                if (n + round) % 3 != 0 {
                    lru.touch(page(n));
                }
            }
        }
        // Replay the same operations on a naive model.
        let mut model: Vec<u64> = Vec::new();
        for n in 0..8 {
            model.retain(|&p| p != n);
            model.push(n);
        }
        for round in 0..100 {
            for n in 0..8 {
                if (n + round) % 3 != 0 {
                    model.retain(|&p| p != n);
                    model.push(n);
                }
            }
        }
        model.reverse(); // MRU first
        let got: Vec<u64> = lru.pages_by_recency().iter().map(|p| p.value()).collect();
        assert_eq!(got, model);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = RankedLru::with_capacity(100);
        let mut b = RankedLru::new();
        for n in 0..50 {
            a.insert(page(n));
            b.insert(page(n));
        }
        assert_eq!(a.pages_by_recency(), b.pages_by_recency());
    }

    #[test]
    fn rank_is_dense_and_unique() {
        let mut lru = RankedLru::new();
        for n in 0..32 {
            lru.insert(page(n));
        }
        for n in [3u64, 30, 7, 7, 0] {
            lru.touch(page(n));
        }
        let mut ranks: Vec<usize> = (0..32).map(|n| lru.rank(page(n)).unwrap()).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..32).collect::<Vec<_>>());
    }
}
