//! LRU queues for the migration policies: a ranked queue with O(log n)
//! recency-rank queries and a plain O(1) linked-list queue.
//!
//! The proposed migration scheme keeps per-page counters only for pages in
//! the *top positions* of the NVM LRU queue (Algorithm 1: `readperc` /
//! `writeperc`). Deciding "is this page within the top k positions?" is a
//! *recency rank* query, which a plain linked-list LRU answers only in
//! O(n). [`RankedLru`] answers it in O(log n) using the classic
//! slot-numbering technique: every touch assigns the page a fresh,
//! monotonically increasing slot number; a Fenwick (binary indexed) tree
//! over slot occupancy then yields both rank queries and the
//! least-recently-used victim in logarithmic time, with periodic O(n log n)
//! compaction when slot space runs out. Its storage is a structure-of-
//! arrays slab (parallel `pages`/`slots` vectors), so the touch-heavy hot
//! loop walks dense homogeneous arrays, and [`RankedLru::touch_ranked`]
//! folds Algorithm 1's rank-query-then-touch pair into one map lookup.
//!
//! Queues that never ask for ranks — the DRAM recency queue and the
//! single-tier baselines — don't need any of that machinery:
//! [`LinkedLru`] is an index-linked doubly linked list over a slab, with
//! O(1) touch/insert/evict and a single hash lookup per operation. The
//! batched replay path leans on it for its plain-hit fast path.
//!
//! # Examples
//!
//! ```
//! use hybridmem_policy::RankedLru;
//! use hybridmem_types::PageId;
//!
//! let mut lru = RankedLru::new();
//! lru.insert(PageId::new(1));
//! lru.insert(PageId::new(2));
//! lru.insert(PageId::new(3));
//! assert_eq!(lru.rank(PageId::new(3)), Some(0)); // most recently used
//! assert_eq!(lru.rank(PageId::new(1)), Some(2)); // least recently used
//!
//! lru.touch(PageId::new(1));
//! assert_eq!(lru.rank(PageId::new(1)), Some(0));
//! assert_eq!(lru.evict_lru(), Some(PageId::new(2)));
//! ```

use hybridmem_types::{FxBuildHasher, FxHashMap, PageId};

/// Sentinel for "slot unoccupied" in the slot → entry map.
const EMPTY: usize = usize::MAX;

/// Minimum slot capacity; also the floor after compaction.
const MIN_SLOTS: usize = 16;

/// Fenwick tree over slot occupancy (1-based internally).
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn with_len(len: usize) -> Self {
        Self {
            tree: vec![0; len + 1],
        }
    }

    fn add(&mut self, index: usize, delta: i32) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Number of occupied slots in `[0, index]`.
    fn prefix(&self, index: usize) -> u32 {
        let mut i = (index + 1).min(self.tree.len() - 1);
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Index of the k-th (1-based) occupied slot, if any.
    fn select(&self, k: u32) -> Option<usize> {
        if k == 0 {
            return None;
        }
        let mut remaining = k;
        let mut pos = 0usize;
        let mut mask = self.tree.len().next_power_of_two() >> 1;
        while mask > 0 {
            let next = pos + mask;
            if next < self.tree.len() && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        // pos is now the largest index with prefix < k; the answer is pos
        // (0-based slot pos, since the tree is 1-based).
        if pos < self.tree.len() - 1 {
            Some(pos)
        } else {
            None
        }
    }
}

/// An LRU queue over [`PageId`]s with logarithmic recency-rank queries.
///
/// Rank 0 is the most recently used page; rank `len() - 1` is the LRU
/// victim. See the module documentation (in the source) for the data-structure
/// sketch and complexity analysis.
#[derive(Debug, Clone, Default)]
pub struct RankedLru {
    map: FxHashMap<PageId, usize>,
    /// Slab of pages, parallel to `slots` (structure-of-arrays: the hot
    /// touch path only reads `slots`, so page ids stay out of its cache
    /// lines).
    pages: Vec<PageId>,
    /// Current slot number of each slab index, parallel to `pages`.
    slots: Vec<usize>,
    free: Vec<usize>,
    slot_to_entry: Vec<usize>,
    fenwick: Fenwick,
    next_slot: usize,
}

impl RankedLru {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            map: FxHashMap::default(),
            pages: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            slot_to_entry: vec![EMPTY; MIN_SLOTS],
            fenwick: Fenwick::with_len(MIN_SLOTS),
            next_slot: 0,
        }
    }

    /// Creates an empty queue pre-sized for about `capacity` pages.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity * 4).max(MIN_SLOTS);
        Self {
            map: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            pages: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            slot_to_entry: vec![EMPTY; slots],
            fenwick: Fenwick::with_len(slots),
            next_slot: 0,
        }
    }

    /// Number of pages in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the queue holds no pages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True when `page` is in the queue.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Inserts `page` at the MRU position.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already in the queue; use [`RankedLru::touch`]
    /// for pages that may be present.
    pub fn insert(&mut self, page: PageId) {
        assert!(
            !self.map.contains_key(&page),
            "page {page} is already in the LRU queue"
        );
        let slot = self.take_slot();
        let idx = if let Some(idx) = self.free.pop() {
            self.pages[idx] = page;
            self.slots[idx] = slot;
            idx
        } else {
            self.pages.push(page);
            self.slots.push(slot);
            self.pages.len() - 1
        };
        self.slot_to_entry[slot] = idx;
        self.fenwick.add(slot, 1);
        self.map.insert(page, idx);
    }

    /// Moves `page` to the MRU position. Returns true when the page was
    /// present (and was therefore moved).
    pub fn touch(&mut self, page: PageId) -> bool {
        let Some(&idx) = self.map.get(&page) else {
            return false;
        };
        self.reslot(idx);
        true
    }

    /// Returns the recency rank `page` held *before* this touch (0 =
    /// MRU) and moves it to the MRU position — Algorithm 1's
    /// rank-query-then-touch pair in a single map lookup.
    ///
    /// Equivalent to `rank(page)` followed by `touch(page)`.
    pub fn touch_ranked(&mut self, page: PageId) -> Option<usize> {
        let &idx = self.map.get(&page)?;
        let at_or_before = self.fenwick.prefix(self.slots[idx]);
        let rank = self.map.len() - at_or_before as usize;
        self.reslot(idx);
        Some(rank)
    }

    /// Moves the slab entry `idx` to a fresh MRU slot in place (no map
    /// traffic). The rank ordering of all other pages is unchanged.
    fn reslot(&mut self, idx: usize) {
        // Allocate first: a compaction renumbers `slots[idx]` too, so the
        // old slot must be read *after* `take_slot`.
        let new_slot = self.take_slot();
        let old_slot = self.slots[idx];
        self.fenwick.add(old_slot, -1);
        self.slot_to_entry[old_slot] = EMPTY;
        self.slots[idx] = new_slot;
        self.slot_to_entry[new_slot] = idx;
        self.fenwick.add(new_slot, 1);
    }

    /// Removes and returns the least-recently-used page.
    pub fn evict_lru(&mut self) -> Option<PageId> {
        let victim = self.peek_lru()?;
        self.remove(victim);
        Some(victim)
    }

    /// Returns the least-recently-used page without removing it.
    #[must_use]
    pub fn peek_lru(&self) -> Option<PageId> {
        let slot = self.fenwick.select(1)?;
        let idx = self.slot_to_entry[slot];
        debug_assert_ne!(idx, EMPTY);
        Some(self.pages[idx])
    }

    /// Removes `page` from the queue. Returns true when it was present.
    pub fn remove(&mut self, page: PageId) -> bool {
        let Some(idx) = self.map.remove(&page) else {
            return false;
        };
        let slot = self.slots[idx];
        self.fenwick.add(slot, -1);
        self.slot_to_entry[slot] = EMPTY;
        self.free.push(idx);
        true
    }

    /// Recency rank of `page`: 0 for the MRU page, `len() - 1` for the LRU
    /// page, `None` when absent.
    #[must_use]
    pub fn rank(&self, page: PageId) -> Option<usize> {
        let &idx = self.map.get(&page)?;
        let slot = self.slots[idx];
        // Pages with slots *greater* than ours are more recent.
        let at_or_before = self.fenwick.prefix(slot);
        Some(self.map.len() - at_or_before as usize)
    }

    /// Pages ordered from MRU to LRU. O(n log n); intended for tests,
    /// debugging, and snapshots rather than per-access use.
    #[must_use]
    pub fn pages_by_recency(&self) -> Vec<PageId> {
        let mut present: Vec<usize> = self.map.values().copied().collect();
        present.sort_by_key(|&idx| std::cmp::Reverse(self.slots[idx]));
        present.iter().map(|&idx| self.pages[idx]).collect()
    }

    /// Allocates a fresh MRU slot, compacting the slot space when full.
    fn take_slot(&mut self) -> usize {
        if self.next_slot == self.slot_to_entry.len() {
            self.compact();
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        slot
    }

    /// Renumbers all present pages into slots `0..len` (preserving order)
    /// and resizes the slot space to 4× the live population.
    fn compact(&mut self) {
        let mut live: Vec<usize> = self.map.values().copied().collect();
        live.sort_by_key(|&idx| self.slots[idx]);
        let new_len = (live.len() * 4).max(MIN_SLOTS);
        self.slot_to_entry = vec![EMPTY; new_len];
        self.fenwick = Fenwick::with_len(new_len);
        for (slot, idx) in live.into_iter().enumerate() {
            self.slots[idx] = slot;
            self.slot_to_entry[slot] = idx;
            self.fenwick.add(slot, 1);
        }
        self.next_slot = self.map.len();
    }
}

/// Sentinel link for "no node" in [`LinkedLru`].
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    page: PageId,
    prev: u32,
    next: u32,
}

/// A plain LRU queue with O(1) touch/insert/evict and exactly one hash
/// lookup per operation.
///
/// The queue is an index-linked doubly linked list over a slab of
/// [`Node`]s: `head` is the MRU end, `tail` the LRU victim. It answers
/// everything the DRAM recency queue and the single-tier baselines need;
/// use [`RankedLru`] when recency-*rank* queries are required (the NVM
/// counter windows of Algorithm 1).
///
/// # Examples
///
/// ```
/// use hybridmem_policy::LinkedLru;
/// use hybridmem_types::PageId;
///
/// let mut lru = LinkedLru::new();
/// lru.insert(PageId::new(1));
/// lru.insert(PageId::new(2));
/// assert!(lru.touch(PageId::new(1)));
/// assert_eq!(lru.evict_lru(), Some(PageId::new(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinkedLru {
    map: FxHashMap<PageId, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: Option<u32>,
    tail: Option<u32>,
}

impl LinkedLru {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue pre-sized for about `capacity` pages.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: None,
            tail: None,
        }
    }

    /// Number of pages in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the queue holds no pages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True when `page` is in the queue.
    #[must_use]
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Inserts `page` at the MRU position.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already in the queue; use [`LinkedLru::touch`]
    /// for pages that may be present.
    pub fn insert(&mut self, page: PageId) {
        assert!(
            !self.map.contains_key(&page),
            "page {page} is already in the LRU queue"
        );
        let old_head = self.head;
        let node = Node {
            page,
            prev: NIL,
            next: old_head.unwrap_or(NIL),
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            assert!(
                self.nodes.len() < NIL as usize,
                "LinkedLru slab exceeds u32 indexing"
            );
            self.nodes.push(node);
            self.nodes.len() as u32 - 1
        };
        if let Some(head) = old_head {
            self.nodes[head as usize].prev = idx;
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
        self.map.insert(page, idx);
    }

    /// Moves `page` to the MRU position. Returns true when the page was
    /// present (and was therefore moved).
    #[inline]
    pub fn touch(&mut self, page: PageId) -> bool {
        let Some(&idx) = self.map.get(&page) else {
            return false;
        };
        self.move_to_front(idx);
        true
    }

    /// Removes and returns the least-recently-used page.
    pub fn evict_lru(&mut self) -> Option<PageId> {
        let victim = self.tail?;
        let page = self.nodes[victim as usize].page;
        self.unlink(victim);
        self.free.push(victim);
        self.map.remove(&page);
        Some(page)
    }

    /// Returns the least-recently-used page without removing it.
    #[must_use]
    pub fn peek_lru(&self) -> Option<PageId> {
        self.tail.map(|idx| self.nodes[idx as usize].page)
    }

    /// Removes `page` from the queue. Returns true when it was present.
    pub fn remove(&mut self, page: PageId) -> bool {
        let Some(idx) = self.map.remove(&page) else {
            return false;
        };
        self.unlink(idx);
        self.free.push(idx);
        true
    }

    /// Pages ordered from MRU to LRU. O(n); intended for tests,
    /// debugging, and snapshots rather than per-access use.
    #[must_use]
    pub fn pages_by_recency(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.len());
        let mut cursor = self.head;
        while let Some(idx) = cursor {
            let node = self.nodes[idx as usize];
            out.push(node.page);
            cursor = (node.next != NIL).then_some(node.next);
        }
        out
    }

    /// Detaches node `idx` from the list, fixing head/tail.
    fn unlink(&mut self, idx: u32) {
        let Node { prev, next, .. } = self.nodes[idx as usize];
        if prev == NIL {
            self.head = (next != NIL).then_some(next);
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = (prev != NIL).then_some(prev);
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    /// Splices node `idx` to the head (MRU) position.
    fn move_to_front(&mut self, idx: u32) {
        if self.head == Some(idx) {
            return;
        }
        self.unlink(idx);
        let old_head = self.head.unwrap_or(NIL);
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = old_head;
        if old_head != NIL {
            self.nodes[old_head as usize].prev = idx;
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> PageId {
        PageId::new(n)
    }

    #[test]
    fn insert_and_rank_order() {
        let mut lru = RankedLru::new();
        for n in 0..5 {
            lru.insert(page(n));
        }
        assert_eq!(lru.len(), 5);
        for n in 0..5 {
            assert_eq!(lru.rank(page(n)), Some(4 - n as usize));
        }
        assert_eq!(lru.rank(page(99)), None);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut lru = RankedLru::new();
        for n in 0..4 {
            lru.insert(page(n));
        }
        assert!(lru.touch(page(0)));
        assert_eq!(lru.rank(page(0)), Some(0));
        assert_eq!(lru.rank(page(1)), Some(3));
        assert!(!lru.touch(page(42)));
    }

    #[test]
    fn evict_returns_lru_order() {
        let mut lru = RankedLru::new();
        for n in 0..4 {
            lru.insert(page(n));
        }
        lru.touch(page(0)); // order (MRU..LRU): 0,3,2,1
        assert_eq!(lru.evict_lru(), Some(page(1)));
        assert_eq!(lru.evict_lru(), Some(page(2)));
        assert_eq!(lru.evict_lru(), Some(page(3)));
        assert_eq!(lru.evict_lru(), Some(page(0)));
        assert_eq!(lru.evict_lru(), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut lru = RankedLru::new();
        lru.insert(page(1));
        lru.insert(page(2));
        assert_eq!(lru.peek_lru(), Some(page(1)));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn remove_arbitrary_pages() {
        let mut lru = RankedLru::new();
        for n in 0..6 {
            lru.insert(page(n));
        }
        assert!(lru.remove(page(3)));
        assert!(!lru.remove(page(3)));
        assert!(!lru.contains(page(3)));
        assert_eq!(lru.len(), 5);
        assert_eq!(
            lru.pages_by_recency(),
            vec![page(5), page(4), page(2), page(1), page(0)]
        );
    }

    #[test]
    #[should_panic(expected = "already in the LRU queue")]
    fn double_insert_panics() {
        let mut lru = RankedLru::new();
        lru.insert(page(1));
        lru.insert(page(1));
    }

    #[test]
    fn compaction_preserves_order() {
        let mut lru = RankedLru::new();
        for n in 0..8 {
            lru.insert(page(n));
        }
        // Force many slot allocations to trigger several compactions.
        for round in 0..100 {
            for n in 0..8 {
                if (n + round) % 3 != 0 {
                    lru.touch(page(n));
                }
            }
        }
        // Replay the same operations on a naive model.
        let mut model: Vec<u64> = Vec::new();
        for n in 0..8 {
            model.retain(|&p| p != n);
            model.push(n);
        }
        for round in 0..100 {
            for n in 0..8 {
                if (n + round) % 3 != 0 {
                    model.retain(|&p| p != n);
                    model.push(n);
                }
            }
        }
        model.reverse(); // MRU first
        let got: Vec<u64> = lru.pages_by_recency().iter().map(|p| p.value()).collect();
        assert_eq!(got, model);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = RankedLru::with_capacity(100);
        let mut b = RankedLru::new();
        for n in 0..50 {
            a.insert(page(n));
            b.insert(page(n));
        }
        assert_eq!(a.pages_by_recency(), b.pages_by_recency());
    }

    #[test]
    fn rank_is_dense_and_unique() {
        let mut lru = RankedLru::new();
        for n in 0..32 {
            lru.insert(page(n));
        }
        for n in [3u64, 30, 7, 7, 0] {
            lru.touch(page(n));
        }
        let mut ranks: Vec<usize> = (0..32).map(|n| lru.rank(page(n)).unwrap()).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn touch_ranked_equals_rank_then_touch() {
        let mut fused = RankedLru::new();
        let mut split = RankedLru::new();
        for n in 0..16 {
            fused.insert(page(n));
            split.insert(page(n));
        }
        // A long, slot-space-exhausting sequence so compactions land in
        // the middle of fused touches.
        for round in 0..200u64 {
            let n = (round * 7) % 16;
            let fused_rank = fused.touch_ranked(page(n));
            let split_rank = split.rank(page(n));
            split.touch(page(n));
            assert_eq!(fused_rank, split_rank, "round {round}");
            assert_eq!(fused.pages_by_recency(), split.pages_by_recency());
        }
        assert_eq!(fused.touch_ranked(page(99)), None);
    }

    #[test]
    fn linked_lru_matches_ranked_lru_order() {
        let mut linked = LinkedLru::new();
        let mut ranked = RankedLru::new();
        for n in 0..12 {
            linked.insert(page(n));
            ranked.insert(page(n));
        }
        for round in 0..300u64 {
            match round % 5 {
                0 | 1 | 2 => {
                    let n = (round * 11) % 12;
                    assert_eq!(linked.touch(page(n)), ranked.touch(page(n)));
                }
                3 => {
                    assert_eq!(linked.peek_lru(), ranked.peek_lru());
                    assert_eq!(linked.evict_lru(), ranked.evict_lru());
                }
                _ => {
                    let n = (round * 13) % 24; // half the ids are absent
                    if !linked.contains(page(n)) {
                        linked.insert(page(n));
                        ranked.insert(page(n));
                    } else {
                        assert_eq!(linked.remove(page(n)), ranked.remove(page(n)));
                    }
                }
            }
            assert_eq!(linked.len(), ranked.len());
            assert_eq!(linked.pages_by_recency(), ranked.pages_by_recency());
        }
    }

    #[test]
    fn linked_lru_basics() {
        let mut lru = LinkedLru::with_capacity(4);
        assert!(lru.is_empty());
        assert_eq!(lru.evict_lru(), None);
        assert_eq!(lru.peek_lru(), None);
        assert!(!lru.touch(page(1)));
        assert!(!lru.remove(page(1)));

        lru.insert(page(1));
        assert_eq!(lru.pages_by_recency(), vec![page(1)]);
        assert!(lru.touch(page(1)), "touching the sole page is a no-op move");
        assert_eq!(lru.evict_lru(), Some(page(1)));
        assert!(lru.is_empty());

        for n in 0..4 {
            lru.insert(page(n));
        }
        lru.touch(page(0)); // order (MRU..LRU): 0,3,2,1
        assert_eq!(
            lru.pages_by_recency(),
            vec![page(0), page(3), page(2), page(1)]
        );
        assert!(lru.remove(page(2)), "unlink from the middle");
        assert_eq!(lru.evict_lru(), Some(page(1)));
        assert_eq!(lru.evict_lru(), Some(page(3)));
        assert_eq!(lru.evict_lru(), Some(page(0)));
        assert_eq!(lru.evict_lru(), None);
    }

    #[test]
    #[should_panic(expected = "already in the LRU queue")]
    fn linked_lru_double_insert_panics() {
        let mut lru = LinkedLru::new();
        lru.insert(page(1));
        lru.insert(page(1));
    }

    #[test]
    fn linked_lru_reuses_slab_slots() {
        let mut lru = LinkedLru::new();
        for n in 0..8 {
            lru.insert(page(n));
        }
        for _ in 0..4 {
            lru.evict_lru();
        }
        for n in 100..104 {
            lru.insert(page(n));
        }
        assert_eq!(lru.len(), 8);
        assert_eq!(lru.nodes.len(), 8, "freed slab nodes are reused");
    }
}
