//! `hybridmem` — the command-line entry point. All logic lives in the
//! library crate (`hybridmem_cli`) so it is unit-testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(error) = hybridmem_cli::run(args, &mut stdout) {
        // A closed pipe (e.g. `hybridmem list | head`) is not a failure.
        if error.to_string().contains("Broken pipe") {
            return;
        }
        eprintln!("error: {error}");
        #[allow(clippy::exit)] // the binary's one intentional exit point
        std::process::exit(1);
    }
}
