//! Implementation of the `hybridmem` command-line interface.
//!
//! Subcommands (see [`run`]):
//!
//! * `list` — available workloads and policies;
//! * `generate` — write a PARSEC-calibrated (or custom-seeded) trace file;
//! * `characterize` — Table III-style statistics of a trace file;
//! * `simulate` — run a policy over a trace file and print/emit the report;
//! * `compare` — run several policies over the same trace side by side.
//!
//! The logic lives in this library crate so it is unit-testable; `main.rs`
//! is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::Args;
pub use commands::{run, USAGE};
