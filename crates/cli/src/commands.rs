//! The CLI subcommands.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hybridmem_analyze::{CellProfile, Input, PostmortemInputs, TrajectoryOptions};
use hybridmem_core::health::run_isolated;
use hybridmem_core::{
    flight_recorder_for, flightrec, matrix_fingerprint, write_audit_json, write_flight_json,
    write_jsonl, write_ledger_jsonl, write_matrix_health_json, AuditMatrixReport, AuditOptions,
    AuditReport, AuditSink, CellOutcome, CellStatus, EventSink, ExperimentConfig, FanoutSink,
    FaultPlan, FlightMatrixReport, FlightOptions, FlightRecord, FlightRecorder, HybridSimulator,
    IntervalRecord, LedgerOptions, LedgerReport, MatrixHealthReport, PageEvent, PageLedger,
    PanicTripwire, PolicyKind, ReplayMode, RunJournal, SimulationReport, WindowedCollector,
};
use hybridmem_metrics::SpanProfiler;
use hybridmem_trace::{
    io as trace_io, parsec, ReuseProfile, TraceGenerator, TraceStats, WorkloadSpec,
};
use hybridmem_types::{Access, Error, PageAccess, PageId, Result};

use crate::Args;

/// The top-level usage text.
pub const USAGE: &str = "\
hybridmem — hybrid DRAM-NVM memory simulator (DATE 2016 reproduction)

USAGE:
    hybridmem <COMMAND> [FLAGS]

COMMANDS:
    list                               available workloads and policies
    generate --workload W --output P   write a trace file
             [--cap N] [--seed N] [--format text|binary]
             (--workload may also be a path to a WorkloadSpec JSON file)
    characterize <trace>               Table III-style statistics of a trace
             [--format text|binary] [--deep true]   (reuse-distance analysis)
    simulate <trace> --policy P        run one policy over a trace file
             [--memory-fraction F] [--dram-fraction F] [--json]
    compare <trace>                    run all policies over a trace file
             [--memory-fraction F] [--dram-fraction F] [--threads N]
             [--metrics-out FILE] [--metrics-window N]
             [--ledger-out FILE] [--ledger-top N] [--profile-out FILE]
             [--audit-out FILE] [--replay serial|batched]
             [--fault-plan SPEC] [--resume FILE] [--health-out FILE]
             [--strict true] [--flight-out FILE] [--flight-events N]
             (--threads 0, the default, uses all available cores;
              --replay picks the replay driver — both are byte-identical,
              batched (the default) amortizes policy dispatch;
              --metrics-out writes per-window interval records as JSONL,
              one window every N accesses, default 10000;
              --ledger-out writes per-page journey ledgers as JSONL,
              keeping the top N pages per policy, default 64;
              --profile-out writes a Chrome trace-event JSON span profile,
              loadable at https://ui.perfetto.dev;
              --audit-out attaches the run-health audit to every cell and
              writes its hybridmem-audit-v1 report, exiting non-zero on
              any invariant violation;
              --fault-plan injects scripted faults (grammar documented in
              hybridmem-core::faultinject; HYBRIDMEM_FAULT_PLAN is the
              env equivalent); a panicking cell is retried, then
              quarantined while the other cells complete;
              --resume FILE journals completed cells to FILE (fsynced,
              checksummed) and skips cells already journaled, so a
              killed run resumes byte-identically; incompatible with the
              instrumentation outputs;
              --health-out writes the hybridmem-matrix-health-v1 report;
              --strict true exits non-zero when any cell failed;
              --flight-out rides a bounded black-box flight recorder on
              every cell — last N events plus periodic state snapshots —
              and writes the hybridmem-flight-v1 dump; a panicking or
              erroring cell's last moments survive into the dump, which
              is byte-identical at any --threads count;
              --flight-events sizes the per-cell event ring, default 256)
    observe <workload>                 stream windowed interval records (JSONL)
             [--policy P] [--cap N] [--seed N] [--window N]
             [--memory-fraction F] [--dram-fraction F] [--warmup F]
             [--replay serial|batched]
             [--flight-out FILE] [--flight-events N]
             (--window 0 emits one whole-run record at the end;
              --workload accepts a PARSEC name or a WorkloadSpec JSON path)
    postmortem --flight FILE           correlate a flight dump with every
             [--health FILE] [--audit FILE]     other telemetry stream
             [--metrics FILE] [--ledger FILE] [--journal FILE]
             [--json FILE]
             (joins the hybridmem-flight-v1 dump with the health report,
              audit report, windowed-metrics JSONL, page-ledger JSONL,
              and the binary resume journal on (workload, policy) cells
              and access indices; prints a per-cell failure timeline and
              --json writes the stable hybridmem-postmortem-v1 report)
    ledger <workload>                  per-page journey ledger (top-K pages)
             [--policy P] [--cap N] [--seed N] [--top K] [--max-events N]
             [--memory-fraction F] [--dram-fraction F] [--json]
    trace-page <workload> <page>       one page's full journey
             [--policy P] [--cap N] [--seed N] [--max-events N]
             [--memory-fraction F] [--dram-fraction F] [--json]
    analyze diff <A> <B>               per-cell deltas between two runs
             [--threshold F] [--json FILE] [--gate true]
             (A and B are windowed-metrics or ledger JSONL files from
              matching compare/observe runs; --gate true exits non-zero
              when a metric moved beyond F in its worse direction)
    analyze trajectory <BENCH...>      noise-aware throughput ratchet
             [--gate true] [--threshold F] [--min-points N] [--json FILE]
             (judges the newest BENCH_<n>.json against the median of the
              prior comparable points; short histories stay advisory)
    analyze metrics <FILE>             histogram quantile table (p50/p95/p99)
    analyze check <FILE>               verify a hybridmem-analyze-v1 report
                                       re-emits byte-for-byte

Trace files use the formats documented in hybridmem-trace: text
(`R 0x1000 0` per line) or binary (11-byte records). `--format` defaults
to guessing from the file extension (`.trace`/`.bin` = binary).
";

/// Runs the CLI with pre-split arguments, writing to `out`. Returns the
/// intended process exit code.
///
/// # Errors
///
/// Returns an [`Error`] for invalid arguments, unreadable traces, or
/// simulation failures; `main` prints it and exits non-zero.
pub fn run<W: std::io::Write>(raw: Vec<String>, out: &mut W) -> Result<()> {
    let args = Args::parse(raw)?;
    let Some(command) = args.positional(0) else {
        write_usage(out);
        return Ok(());
    };
    match command {
        "list" => list(out),
        "generate" => generate(&args, out),
        "characterize" => characterize(&args, out),
        "simulate" => simulate(&args, out),
        "compare" => compare(&args, out),
        "observe" => observe(&args, out),
        "postmortem" => postmortem(&args, out),
        "ledger" => ledger(&args, out),
        "trace-page" => trace_page(&args, out),
        "analyze" => analyze_command(&args, out),
        "help" | "--help" | "-h" => {
            write_usage(out);
            Ok(())
        }
        other => Err(Error::invalid_input(format!(
            "unknown command {other:?}; run `hybridmem help`"
        ))),
    }
}

fn write_usage<W: std::io::Write>(out: &mut W) {
    let _ = out.write_all(USAGE.as_bytes());
}

fn list<W: std::io::Write>(out: &mut W) -> Result<()> {
    writeln!(out, "workloads (PARSEC, Table III):").map_err(io_err)?;
    for row in &parsec::TABLE_III {
        writeln!(
            out,
            "  {:<14} {:>9} KB working set, {:>11} accesses",
            row.name,
            row.working_set_kb,
            row.reads + row.writes
        )
        .map_err(io_err)?;
    }
    writeln!(out, "\npolicies:").map_err(io_err)?;
    for kind in PolicyKind::all() {
        writeln!(out, "  {}", kind.name()).map_err(io_err)?;
    }
    Ok(())
}

fn generate<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&["workload", "output", "cap", "seed", "format"])?;
    let workload = args.require("workload")?;
    let output = args.require("output")?;
    let cap: u64 = args.get_parsed_or("cap", 1_000_000)?;
    let seed: u64 = args.get_parsed_or("seed", 42)?;
    let spec = load_spec(workload)?;
    let spec = if cap == 0 { spec } else { spec.capped(cap) };

    let file = File::create(output)
        .map_err(|e| Error::invalid_input(format!("cannot create {output}: {e}")))?;
    let writer = BufWriter::new(file);
    let generator = TraceGenerator::new(spec.clone(), seed);
    match detect_format(args, output)? {
        Format::Text => trace_io::write_text(generator, writer).map_err(io_err)?,
        Format::Binary => trace_io::write_binary(generator, writer).map_err(io_err)?,
    }
    writeln!(
        out,
        "wrote {} accesses ({} pages working set) to {output}",
        spec.total_accesses(),
        spec.working_set.value()
    )
    .map_err(io_err)?;
    Ok(())
}

fn characterize<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&["format", "deep"])?;
    let (path, trace) = load_trace(args)?;
    let stats = TraceStats::from_accesses(trace.iter().copied());
    writeln!(out, "trace {path}:").map_err(io_err)?;
    writeln!(out, "  accesses          {}", stats.total()).map_err(io_err)?;
    writeln!(
        out,
        "  reads / writes    {} / {} ({:.1}% reads)",
        stats.reads,
        stats.writes,
        stats.read_ratio() * 100.0
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "  working set       {} pages ({} KB)",
        stats.footprint().value(),
        stats.working_set_kb()
    )
    .map_err(io_err)?;
    writeln!(out, "  accesses per page {:.2}", stats.accesses_per_page()).map_err(io_err)?;
    writeln!(
        out,
        "  write-dominant    {:.1}% of pages",
        stats.write_dominant_page_ratio() * 100.0
    )
    .map_err(io_err)?;
    if args.get("deep").is_some_and(|v| v == "true") {
        let profile = ReuseProfile::from_pages(trace.iter().map(|a| a.page()));
        writeln!(out, "  reuse analysis:").map_err(io_err)?;
        if let Some(mean) = profile.mean_distance() {
            writeln!(out, "    mean reuse distance   {mean:.1} pages").map_err(io_err)?;
        }
        for fraction in [0.10f64, 0.50, 0.75, 1.00] {
            #[allow(
                clippy::cast_precision_loss,
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss
            )]
            let capacity = ((profile.distinct_pages() as f64 * fraction).ceil() as u64).max(1);
            writeln!(
                out,
                "    LRU {:>3.0}% of footprint ({capacity} pages): {:.4}% miss",
                fraction * 100.0,
                profile.miss_ratio(capacity) * 100.0
            )
            .map_err(io_err)?;
        }
        if let Some(capacity) = profile.capacity_for_miss_ratio(0.001) {
            writeln!(
                out,
                "    capacity for 0.1% warm-miss ratio: {capacity} pages"
            )
            .map_err(io_err)?;
        }
    }
    Ok(())
}

fn simulate<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&[
        "policy",
        "memory-fraction",
        "dram-fraction",
        "json",
        "format",
    ])?;
    let policy = parse_policy(args.require("policy")?)?;
    let report = run_trace_policy(args, policy)?;
    if args.get("json").is_some_and(|v| v == "true") {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| Error::invalid_input(format!("serialize report: {e}")))?;
        writeln!(out, "{json}").map_err(io_err)?;
    } else {
        write_report(out, &report)?;
    }
    Ok(())
}

fn compare<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&[
        "memory-fraction",
        "dram-fraction",
        "format",
        "threads",
        "metrics-out",
        "metrics-window",
        "ledger-out",
        "ledger-top",
        "profile-out",
        "audit-out",
        "replay",
        "fault-plan",
        "resume",
        "health-out",
        "strict",
        "flight-out",
        "flight-events",
    ])?;
    let threads: usize = args.get_parsed_or("threads", 0)?;
    // All three defaults are nonzero, so a parsed zero can only mean
    // the user passed 0 explicitly — reject it with a typed error
    // instead of emitting degenerate windows, empty ledgers, or a
    // clamped-to-1 flight ring.
    let metrics_window: u64 = args.get_parsed_or("metrics-window", 10_000)?;
    if metrics_window == 0 {
        return Err(Error::invalid_input(
            "--metrics-window must be at least 1 access per window",
        ));
    }
    let ledger_top: usize = args.get_parsed_or("ledger-top", 64)?;
    if ledger_top == 0 {
        return Err(Error::invalid_input(
            "--ledger-top must retain at least 1 page",
        ));
    }
    let flight_events: usize = args.get_parsed_or("flight-events", 256)?;
    if flight_events == 0 {
        return Err(Error::invalid_input(
            "--flight-events must retain at least 1 event",
        ));
    }
    let strict = args.get("strict").is_some_and(|v| v == "true");
    let fault_plan = match args.get("fault-plan") {
        Some(spec) => Some(FaultPlan::parse(spec)?),
        None => FaultPlan::from_env()?,
    };
    // --flight-out is deliberately exempt: journaled cells simply have
    // no flight record, and CI's chaos job combines --resume with
    // --flight-out to capture the still-failing cells' black boxes.
    if args.get("resume").is_some() {
        for flag in ["metrics-out", "ledger-out", "profile-out", "audit-out"] {
            if args.get(flag).is_some() {
                return Err(Error::invalid_input(format!(
                    "--resume cannot be combined with --{flag}: journaled cells replay \
                     their reports without re-running, so instrumentation streams would \
                     be incomplete"
                )));
            }
        }
    }
    let (path, trace) = load_trace(args)?;
    let (spec, config) = trace_experiment(args, &path, &trace)?;
    // Decode once; every policy replays the same immutable buffer instead
    // of re-reading the trace file per policy.
    let pages: Vec<PageAccess> = trace.iter().copied().map(PageAccess::from).collect();
    let kinds = PolicyKind::all();
    let journal = args
        .get("resume")
        .map(|journal_path| {
            RunJournal::open(
                journal_path,
                matrix_fingerprint(std::slice::from_ref(&spec), &kinds, &config),
            )
        })
        .transpose()?;
    if let Some(journal) = journal.as_ref() {
        if journal.torn_tail_bytes() > 0 {
            writeln!(
                out,
                "warning: resume journal had {} byte(s) of torn or corrupt tail truncated; \
                 the cells recorded there will be recomputed",
                journal.torn_tail_bytes()
            )
            .map_err(io_err)?;
        }
    }
    let window = args.get("metrics-out").map(|_| metrics_window);
    let ledger = args.get("ledger-out").map(|_| LedgerOptions {
        top_k: ledger_top,
        ..LedgerOptions::default()
    });
    let audit = args.get("audit-out").map(|_| AuditOptions::default());
    let flight = args
        .get("flight-out")
        .map(|_| FlightOptions::with_events(flight_events));
    // Wall-clock span profile of the worker pool; sits outside the
    // determinism boundary and never feeds back into results.
    let profiler = args.get("profile-out").map(|_| SpanProfiler::new());
    let run_cell = |kind: PolicyKind, worker: usize| {
        let _span = profiler.as_ref().map(|p| {
            p.span(
                "scheduler",
                format!("cell {}", kind.name()),
                worker as u64 + 1,
            )
        });
        // A scheduled mid-simulation panic arms a tripwire sink so the
        // flight recorder's ring stops strictly before the dying access.
        let panic_at = fault_plan
            .as_ref()
            .and_then(|plan| plan.cell_panic_access(&path, kind.name()));
        instrumented_policy_cell(
            &config, &spec, &path, kind, &pages, window, ledger, audit, flight, panic_at,
        )
    };
    // Any robustness flag switches the scheduler to the isolating
    // runner: panicking cells are retried, then quarantined into the
    // health report instead of aborting the matrix. The plain path is
    // untouched so default runs keep fail-fast semantics.
    let isolate =
        fault_plan.is_some() || journal.is_some() || args.get("health-out").is_some() || strict;
    let (cells, health, flights): (Vec<CompareCell>, _, Vec<FlightRecord>) = if isolate {
        let outcomes = run_policy_cells_isolated(&path, &kinds, threads, |kind, worker| {
            if let Some(plan) = fault_plan.as_ref() {
                plan.fire_cell_panic(&path, kind.name());
            }
            if let Some(journal) = journal.as_ref() {
                if let Some(report) = journal.completed_report(&path, kind.name()) {
                    let report: SimulationReport = serde_json::from_value(report).map_err(|e| {
                        Error::invalid_input(format!(
                            "journaled cell {path}/{} does not deserialize: {e}",
                            kind.name()
                        ))
                    })?;
                    return Ok(CompareCell {
                        report,
                        records: Vec::new(),
                        ledger: None,
                        audit: None,
                        flight: None,
                    });
                }
            }
            let cell = run_cell(kind, worker)?;
            if let Some(journal) = journal.as_ref() {
                journal.record(&path, kind.name(), &cell.report);
            }
            Ok(cell)
        });
        let health = MatrixHealthReport::new(
            outcomes
                .iter()
                .zip(&kinds)
                .map(|(outcome, kind)| outcome.health(&path, kind.name()))
                .collect(),
        );
        // Flight records interleave in policy order: completed cells
        // carry theirs inside the cell, quarantined cells inside the
        // outcome — extract both before `into_result` discards the
        // failure's black box.
        let mut flights = Vec::new();
        let cells = outcomes
            .into_iter()
            .filter_map(|outcome| match outcome {
                CellOutcome::Ok { mut value, .. } => {
                    if let Some(record) = value.flight.take() {
                        flights.push(record);
                    }
                    Some(value)
                }
                CellOutcome::Failed { flight: record, .. } => {
                    if let Some(record) = record {
                        flights.push(*record);
                    }
                    None
                }
            })
            .collect();
        (cells, Some(health), flights)
    } else {
        let mut cells = run_policy_cells(&kinds, threads, run_cell)?;
        let flights = cells
            .iter_mut()
            .filter_map(|cell: &mut CompareCell| cell.flight.take())
            .collect();
        (cells, None, flights)
    };
    write_compare_table(out, cells.iter().map(|cell| &cell.report))?;
    if let Some(metrics_path) = args.get("metrics-out") {
        let mut writer = create_out(metrics_path)?;
        for cell in &cells {
            write_jsonl(&mut writer, &cell.records).map_err(io_err)?;
        }
        std::io::Write::flush(&mut writer).map_err(io_err)?;
        writeln!(out, "wrote interval metrics to {metrics_path}").map_err(io_err)?;
    }
    if let Some(ledger_path) = args.get("ledger-out") {
        let mut writer = create_out(ledger_path)?;
        for cell in &cells {
            let report = cell
                .ledger
                .as_ref()
                .ok_or_else(|| Error::invalid_input("compare cell lost its page ledger"))?;
            write_ledger_jsonl(&mut writer, report).map_err(io_err)?;
        }
        std::io::Write::flush(&mut writer).map_err(io_err)?;
        writeln!(out, "wrote page ledger to {ledger_path}").map_err(io_err)?;
    }
    if let (Some(profile_path), Some(profiler)) = (args.get("profile-out"), profiler.as_ref()) {
        let mut writer = create_out(profile_path)?;
        profiler.write_chrome_trace(&mut writer).map_err(io_err)?;
        std::io::Write::flush(&mut writer).map_err(io_err)?;
        writeln!(out, "wrote span profile to {profile_path}").map_err(io_err)?;
    }
    if let Some(flight_path) = args.get("flight-out") {
        // Written before the audit and strict gates below so a failing
        // run still leaves its black box behind for CI to upload.
        let matrix = FlightMatrixReport::new(flights);
        let mut writer = create_out(flight_path)?;
        write_flight_json(&mut writer, &matrix).map_err(io_err)?;
        std::io::Write::flush(&mut writer).map_err(io_err)?;
        writeln!(out, "wrote flight recorder dump to {flight_path}").map_err(io_err)?;
    }
    if let Some(audit_path) = args.get("audit-out") {
        let reports = cells
            .iter()
            .map(|cell| {
                cell.audit
                    .clone()
                    .ok_or_else(|| Error::invalid_input("compare cell lost its audit sink"))
            })
            .collect::<Result<Vec<AuditReport>>>()?;
        let matrix = AuditMatrixReport::new(reports);
        let mut writer = create_out(audit_path)?;
        write_audit_json(&mut writer, &matrix).map_err(io_err)?;
        std::io::Write::flush(&mut writer).map_err(io_err)?;
        writeln!(out, "wrote audit report to {audit_path}").map_err(io_err)?;
        // The artifact is written first so CI can upload it, then the
        // exit code carries the verdict.
        if !matrix.clean {
            return Err(Error::invalid_input(format!(
                "run-health audit found {} invariant violation(s); see {audit_path}",
                matrix.total_violations
            )));
        }
    }
    if let Some(health) = health {
        for cell in health
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Failed)
        {
            writeln!(
                out,
                "cell {}/{} failed after {} retries: {}",
                cell.workload,
                cell.policy,
                cell.retries,
                cell.error.as_deref().unwrap_or("unknown error")
            )
            .map_err(io_err)?;
        }
        if let Some(health_path) = args.get("health-out") {
            let mut writer = create_out(health_path)?;
            write_matrix_health_json(&mut writer, &health).map_err(io_err)?;
            std::io::Write::flush(&mut writer).map_err(io_err)?;
            writeln!(out, "wrote matrix health to {health_path}").map_err(io_err)?;
        }
        // The health artifact lands first; the exit code only carries
        // the verdict when --strict asked it to.
        if strict && health.failed_cells > 0 {
            return Err(Error::invalid_input(format!(
                "{} of {} cells failed; see the health report, or rerun with --resume \
                 to recompute only the failures",
                health.failed_cells, health.total_cells
            )));
        }
    }
    Ok(())
}

fn create_out(path: &str) -> Result<BufWriter<File>> {
    let file = File::create(path)
        .map_err(|e| Error::invalid_input(format!("cannot create {path}: {e}")))?;
    Ok(BufWriter::new(file))
}

fn write_compare_table<'a, W: std::io::Write>(
    out: &mut W,
    reports: impl Iterator<Item = &'a SimulationReport>,
) -> Result<()> {
    writeln!(
        out,
        "{:<18} {:>8} {:>12} {:>12} {:>14} {:>12}",
        "policy", "hit%", "migrations", "AMAT(ns)", "energy/req nJ", "NVM writes"
    )
    .map_err(io_err)?;
    for report in reports {
        writeln!(
            out,
            "{:<18} {:>7.2}% {:>12} {:>12.0} {:>14.2} {:>12}",
            report.policy,
            report.counts.hit_ratio() * 100.0,
            report.counts.migrations(),
            report.amat().value(),
            report.appr().value(),
            report.nvm_writes.total(),
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// Streams windowed interval records to `out` as JSON Lines while a
/// generated workload runs: completed windows are drained and written as
/// soon as they close, so long runs produce output incrementally.
fn observe<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&[
        "policy",
        "cap",
        "seed",
        "window",
        "memory-fraction",
        "dram-fraction",
        "warmup",
        "replay",
        "flight-out",
        "flight-events",
    ])?;
    let workload = args
        .positional(1)
        .ok_or_else(|| Error::invalid_input("expected a workload name or spec path"))?;
    let spec = load_spec(workload)?;
    let cap: u64 = args.get_parsed_or("cap", 1_000_000)?;
    let spec = if cap == 0 { spec } else { spec.capped(cap) };
    let kind = parse_policy(args.get_or("policy", "two-lru"))?;
    let seed: u64 = args.get_parsed_or("seed", 42)?;
    let window: u64 = args.get_parsed_or("window", 10_000)?;
    // The default is nonzero, so a parsed zero means the user asked
    // for a zero-capacity ring explicitly (unlike --window, where 0
    // legitimately means one whole-run record).
    let flight_events: usize = args.get_parsed_or("flight-events", 256)?;
    if flight_events == 0 {
        return Err(Error::invalid_input(
            "--flight-events must retain at least 1 event",
        ));
    }
    let flight = args
        .get("flight-out")
        .map(|_| FlightOptions::with_events(flight_events));
    let warmup: f64 = args.get_parsed_or("warmup", 0.0)?;
    if !(0.0..1.0).contains(&warmup) {
        return Err(Error::invalid_input(format!(
            "--warmup must be in [0, 1), got {warmup}"
        )));
    }
    let config = ExperimentConfig {
        memory_fraction: args.get_parsed_or("memory-fraction", 0.75)?,
        dram_fraction: args.get_parsed_or("dram-fraction", 0.10)?,
        seed,
        warmup_fraction: warmup,
        replay: parse_replay(args)?,
        ..ExperimentConfig::date2016()
    };
    let policy = config.build_policy(kind, &spec)?;
    let mut simulator = HybridSimulator::with_date2016_devices(policy);
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let warmup_len = (spec.total_accesses() as f64 * warmup) as u64;
    let collector = WindowedCollector::new(spec.name.clone(), kind.name(), window, warmup_len);
    if let Some(options) = flight {
        let mut fanout = FanoutSink::new();
        fanout.push(Box::new(collector));
        fanout.push(Box::new(flight_recorder_for(
            spec.name.clone(),
            kind.name(),
            options,
            &simulator,
            warmup_len,
        )));
        simulator.set_event_sink(Box::new(fanout));
    } else {
        simulator.set_event_sink(Box::new(collector));
    }
    // Drive in replay-driver-sized chunks so `--replay batched` exercises
    // the batch path; window boundaries are trace positions, so the JSONL
    // is byte-identical whichever driver runs (CI compares the two).
    let mut buffer = Vec::with_capacity(HybridSimulator::BATCH_RECORDS);
    for access in TraceGenerator::new(spec.clone(), seed).map(PageAccess::from) {
        buffer.push(access);
        if buffer.len() == HybridSimulator::BATCH_RECORDS {
            drive_slice(&mut simulator, config.replay, &buffer);
            buffer.clear();
            let records = drain_observed(&mut simulator, false)?;
            if !records.is_empty() {
                write_jsonl(out, &records).map_err(io_err)?;
            }
        }
    }
    drive_slice(&mut simulator, config.replay, &buffer);
    let records = drain_observed(&mut simulator, true)?;
    write_jsonl(out, &records).map_err(io_err)?;
    if let Some(flight_path) = args.get("flight-out") {
        let mut sink = simulator
            .take_event_sink()
            .ok_or_else(|| Error::invalid_input("observe lost its event sink"))?;
        let recorder = sink
            .as_any_mut()
            .downcast_mut::<FanoutSink>()
            .and_then(|fanout| {
                fanout
                    .sinks_mut()
                    .iter_mut()
                    .find_map(|child| child.as_any_mut().downcast_mut::<FlightRecorder>())
            })
            .ok_or_else(|| Error::invalid_input("observe lost its flight recorder"))?;
        let probe = recorder.probe();
        let _ = flightrec::take_probe();
        let matrix = FlightMatrixReport::new(vec![probe.capture("completed", None, 0)]);
        let mut writer = create_out(flight_path)?;
        write_flight_json(&mut writer, &matrix).map_err(io_err)?;
        std::io::Write::flush(&mut writer).map_err(io_err)?;
        writeln!(out, "wrote flight recorder dump to {flight_path}").map_err(io_err)?;
    }
    Ok(())
}

/// Drains completed interval records from the simulator's installed
/// [`WindowedCollector`] (possibly riding a [`FanoutSink`] next to a
/// flight recorder), closing the partial window when `finish`.
fn drain_observed(simulator: &mut HybridSimulator, finish: bool) -> Result<Vec<IntervalRecord>> {
    let sink = simulator
        .event_sink_mut()
        .ok_or_else(|| Error::invalid_input("observe lost its event sink"))?;
    let any = sink.as_any_mut();
    let collector = if any.is::<FanoutSink>() {
        any.downcast_mut::<FanoutSink>().and_then(|fanout| {
            fanout
                .sinks_mut()
                .iter_mut()
                .find_map(|child| child.as_any_mut().downcast_mut::<WindowedCollector>())
        })
    } else {
        any.downcast_mut::<WindowedCollector>()
    }
    .ok_or_else(|| Error::invalid_input("observe sink has the wrong type"))?;
    if finish {
        collector.finish();
    }
    Ok(collector.drain())
}

/// Correlates a `hybridmem-flight-v1` dump with whatever other
/// telemetry streams were provided — health report, audit report,
/// windowed-metrics JSONL, page-ledger JSONL, resume journal — into a
/// per-cell failure timeline, printed as a table and optionally written
/// as the stable `hybridmem-postmortem-v1` JSON.
fn postmortem<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&[
        "flight", "health", "audit", "metrics", "ledger", "journal", "json",
    ])?;
    let read_text = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| Error::invalid_input(format!("cannot read {path}: {e}")))
    };
    let read_opt = |flag: &str| args.get(flag).map(read_text).transpose();
    let flight = read_text(args.require("flight")?)?;
    let health = read_opt("health")?;
    let audit = read_opt("audit")?;
    let metrics = read_opt("metrics")?;
    let ledger = read_opt("ledger")?;
    let journal = args
        .get("journal")
        .map(|path| {
            std::fs::read(path)
                .map_err(|e| Error::invalid_input(format!("cannot read {path}: {e}")))
        })
        .transpose()?;
    let inputs = PostmortemInputs {
        flight: &flight,
        health: health.as_deref(),
        audit: audit.as_deref(),
        metrics: metrics.as_deref(),
        ledger: ledger.as_deref(),
        journal: journal.as_deref(),
    };
    let report = hybridmem_analyze::correlate(&inputs).map_err(Error::invalid_input)?;
    write!(out, "{}", hybridmem_analyze::postmortem_table(&report)).map_err(io_err)?;
    if let Some(json_path) = args.get("json") {
        let json = hybridmem_analyze::postmortem_report(&report);
        std::fs::write(json_path, json.emit_pretty())
            .map_err(|e| Error::invalid_input(format!("cannot write {json_path}: {e}")))?;
        writeln!(out, "wrote postmortem report to {json_path}").map_err(io_err)?;
    }
    Ok(())
}

/// Prints the whole-run page-lifecycle roll-up and the retained top-K
/// page journeys for one policy over a generated workload.
fn ledger<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&[
        "policy",
        "cap",
        "seed",
        "top",
        "max-events",
        "memory-fraction",
        "dram-fraction",
        "json",
    ])?;
    let report = run_ledger_report(args, None, 32)?;
    if args.get("json").is_some_and(|v| v == "true") {
        write_ledger_jsonl(out, &report).map_err(io_err)?;
        return Ok(());
    }
    write_ledger_summary(out, &report)?;
    writeln!(out, "\ntop pages by migrations:").map_err(io_err)?;
    writeln!(
        out,
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "page", "accesses", "migrations", "ping-pongs", "resets", "tier"
    )
    .map_err(io_err)?;
    for record in &report.pages {
        writeln!(
            out,
            "{:>12} {:>10} {:>10} {:>10} {:>10} {:>6}",
            record.page,
            record.summary.accesses,
            record.summary.migrations(),
            record.summary.ping_pongs,
            record.summary.resets,
            record
                .summary
                .final_tier
                .map_or("disk".to_owned(), |tier| tier.to_string()),
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// Prints one page's full journey: every fill, promotion (with Algorithm 1
/// counter provenance), demotion, eviction, and lossy counter reset.
fn trace_page<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&[
        "policy",
        "cap",
        "seed",
        "max-events",
        "memory-fraction",
        "dram-fraction",
        "json",
    ])?;
    let page_arg = args
        .positional(2)
        .ok_or_else(|| Error::invalid_input("usage: trace-page <workload> <page>"))?;
    let page: u64 = page_arg
        .parse()
        .map_err(|e| Error::invalid_input(format!("invalid page id {page_arg:?}: {e}")))?;
    let report = run_ledger_report(args, Some(PageId::new(page)), 1024)?;
    let Some(record) = report.pages.iter().find(|record| record.page == page) else {
        writeln!(
            out,
            "page {page} was never touched by {} over {} accesses of {}",
            report.policy, report.accesses, report.workload
        )
        .map_err(io_err)?;
        return Ok(());
    };
    if args.get("json").is_some_and(|v| v == "true") {
        let json = serde_json::to_string(record)
            .map_err(|e| Error::invalid_input(format!("serialize page record: {e}")))?;
        writeln!(out, "{json}").map_err(io_err)?;
        return Ok(());
    }
    let summary = &record.summary;
    writeln!(
        out,
        "page {page} under {} over {} accesses of {}:",
        report.policy, report.accesses, report.workload
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "  {} accesses ({} reads / {} writes), {} migrations, {} ping-pongs, final tier {}",
        summary.accesses,
        summary.reads,
        summary.writes,
        summary.migrations(),
        summary.ping_pongs,
        summary
            .final_tier
            .map_or("disk".to_owned(), |tier| tier.to_string()),
    )
    .map_err(io_err)?;
    for event in &record.events {
        writeln!(out, "  {}", format_page_event(event)).map_err(io_err)?;
    }
    if record.dropped_events > 0 {
        writeln!(
            out,
            "  … {} later events dropped (raise --max-events)",
            record.dropped_events
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// The `analyze` subcommand family: cross-run analytics over the
/// telemetry the other commands (and the bench suite) emit.
fn analyze_command<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    const USAGE: &str = "usage: analyze <diff|trajectory|metrics|check> ...";
    match args.positional(1) {
        Some("diff") => analyze_diff(args, out),
        Some("trajectory") => analyze_trajectory(args, out),
        Some("metrics") => analyze_metrics(args, out),
        Some("check") => analyze_check(args, out),
        Some(other) => Err(Error::invalid_input(format!(
            "unknown analyze mode {other:?}; {USAGE}"
        ))),
        None => Err(Error::invalid_input(USAGE)),
    }
}

/// Reads and format-sniffs one analyzer input file. The returned
/// [`hybridmem_analyze::Loaded`] carries per-line ingest warnings for
/// JSONL inputs with malformed or partial lines.
fn read_analyze_input(path: &str) -> Result<hybridmem_analyze::Loaded> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::invalid_input(format!("cannot read {path}: {e}")))?;
    hybridmem_analyze::load(path, &text).map_err(Error::invalid_input)
}

/// Rolls one diffable input (windowed metrics or ledgers) into cell
/// profiles.
fn profile_analyze_input(path: &str, input: Input) -> Result<Vec<CellProfile>> {
    match input {
        Input::Intervals(stats) => Ok(hybridmem_analyze::profile_intervals(&stats)),
        Input::Ledgers(stats) => Ok(hybridmem_analyze::profile_ledgers(&stats)),
        _ => Err(Error::invalid_input(format!(
            "{path}: analyze diff expects windowed-metrics or ledger JSONL"
        ))),
    }
}

/// Writes a `hybridmem-analyze-v1` document when `--json` asked for one.
fn write_analyze_json<W: std::io::Write>(
    args: &Args,
    out: &mut W,
    json: &hybridmem_analyze::Json,
) -> Result<()> {
    if let Some(json_path) = args.get("json") {
        std::fs::write(json_path, json.emit_pretty())
            .map_err(|e| Error::invalid_input(format!("cannot write {json_path}: {e}")))?;
        writeln!(out, "wrote analyze report to {json_path}").map_err(io_err)?;
    }
    Ok(())
}

fn analyze_diff<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&["threshold", "json", "gate"])?;
    let (Some(path_a), Some(path_b)) = (args.positional(2), args.positional(3)) else {
        return Err(Error::invalid_input(
            "usage: analyze diff <A> <B> [--threshold F] [--json FILE] [--gate true]",
        ));
    };
    let threshold: f64 = args.get_parsed_or("threshold", 0.05)?;
    let loaded_a = read_analyze_input(path_a)?;
    let loaded_b = read_analyze_input(path_b)?;
    let ingest_warnings = (loaded_a.warnings.len() + loaded_b.warnings.len()) as u64;
    for warning in loaded_a.warnings.iter().chain(&loaded_b.warnings) {
        writeln!(out, "warning: skipped {warning}").map_err(io_err)?;
    }
    let a = profile_analyze_input(path_a, loaded_a.input)?;
    let b = profile_analyze_input(path_b, loaded_b.input)?;
    let report = hybridmem_analyze::diff(&a, &b, threshold);
    write!(out, "{}", hybridmem_analyze::diff_table(&report)).map_err(io_err)?;
    write_analyze_json(
        args,
        out,
        &hybridmem_analyze::diff_report(path_a, path_b, &report, ingest_warnings),
    )?;
    if args.get("gate").is_some_and(|v| v == "true") && report.regressions > 0 {
        return Err(Error::invalid_input(format!(
            "analyze diff gate: {} metric(s) regressed beyond {threshold}",
            report.regressions
        )));
    }
    Ok(())
}

fn analyze_trajectory<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&["threshold", "min-points", "gate", "json"])?;
    let files = args.positionals_from(2);
    if files.is_empty() {
        return Err(Error::invalid_input(
            "usage: analyze trajectory <BENCH_*.json>... \
             [--gate true] [--threshold F] [--min-points N] [--json FILE]",
        ));
    }
    let defaults = TrajectoryOptions::default();
    let options = TrajectoryOptions {
        threshold: args.get_parsed_or("threshold", defaults.threshold)?,
        min_points: args.get_parsed_or("min-points", defaults.min_points)?,
    };
    let mut points = Vec::new();
    for path in files {
        let Input::Bench(point) = read_analyze_input(path)?.input else {
            return Err(Error::invalid_input(format!(
                "{path}: not a hybridmem-stress-v1 report"
            )));
        };
        points.push(point);
    }
    let report = hybridmem_analyze::roll(points, options);
    write!(out, "{}", hybridmem_analyze::trajectory_table(&report)).map_err(io_err)?;
    write_analyze_json(args, out, &hybridmem_analyze::trajectory_report(&report))?;
    if args.get("gate").is_some_and(|v| v == "true") && report.gate_fails() {
        return Err(Error::invalid_input(format!(
            "analyze trajectory gate: {} series regressed beyond {}",
            report.regressions, report.threshold
        )));
    }
    Ok(())
}

fn analyze_metrics<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&[])?;
    let Some(path) = args.positional(2) else {
        return Err(Error::invalid_input(
            "usage: analyze metrics <snapshot.json>",
        ));
    };
    let Input::Metrics(stat) = read_analyze_input(path)?.input else {
        return Err(Error::invalid_input(format!(
            "{path}: not a metrics snapshot"
        )));
    };
    write!(out, "{}", hybridmem_analyze::metrics_table(&stat)).map_err(io_err)
}

fn analyze_check<W: std::io::Write>(args: &Args, out: &mut W) -> Result<()> {
    args.reject_unknown(&[])?;
    let Some(path) = args.positional(2) else {
        return Err(Error::invalid_input("usage: analyze check <report.json>"));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::invalid_input(format!("cannot read {path}: {e}")))?;
    hybridmem_analyze::round_trips(&text)
        .map_err(|e| Error::invalid_input(format!("{path}: {e}")))?;
    writeln!(
        out,
        "{path}: canonical hybridmem-analyze-v1, re-emits byte-for-byte"
    )
    .map_err(io_err)
}

/// Runs one policy over a generated workload with a [`PageLedger`]
/// attached and returns its end-of-run report.
fn run_ledger_report(
    args: &Args,
    focus: Option<PageId>,
    default_max_events: usize,
) -> Result<LedgerReport> {
    let workload = args
        .positional(1)
        .ok_or_else(|| Error::invalid_input("expected a workload name or spec path"))?;
    let spec = load_spec(workload)?;
    let cap: u64 = args.get_parsed_or("cap", 1_000_000)?;
    let spec = if cap == 0 { spec } else { spec.capped(cap) };
    let kind = parse_policy(args.get_or("policy", "two-lru"))?;
    let seed: u64 = args.get_parsed_or("seed", 42)?;
    let options = LedgerOptions {
        top_k: args.get_parsed_or("top", 64)?,
        max_events: args.get_parsed_or("max-events", default_max_events)?,
        focus,
    };
    let config = ExperimentConfig {
        memory_fraction: args.get_parsed_or("memory-fraction", 0.75)?,
        dram_fraction: args.get_parsed_or("dram-fraction", 0.10)?,
        seed,
        ..ExperimentConfig::date2016()
    };
    let policy = config.build_policy(kind, &spec)?;
    let mut simulator = HybridSimulator::with_date2016_devices(policy);
    simulator.set_event_sink(Box::new(PageLedger::new(
        spec.name.clone(),
        kind.name(),
        options,
        0,
    )));
    for access in TraceGenerator::new(spec.clone(), seed).map(PageAccess::from) {
        simulator.step(access);
    }
    let mut sink = simulator
        .take_event_sink()
        .ok_or_else(|| Error::invalid_input("ledger run lost its event sink"))?;
    let page_ledger = sink
        .as_any_mut()
        .downcast_mut::<PageLedger>()
        .ok_or_else(|| Error::invalid_input("ledger sink has the wrong type"))?;
    Ok(page_ledger.finish())
}

fn write_ledger_summary<W: std::io::Write>(out: &mut W, report: &LedgerReport) -> Result<()> {
    let summary = &report.summary;
    writeln!(
        out,
        "workload {}, policy {}, {} accesses",
        report.workload, report.policy, report.accesses
    )
    .map_err(io_err)?;
    writeln!(out, "  pages touched     {}", summary.pages).map_err(io_err)?;
    writeln!(out, "  faults            {}", summary.faults).map_err(io_err)?;
    writeln!(
        out,
        "  promotions        {} read / {} write / {} unattributed",
        summary.promotions_read, summary.promotions_write, summary.promotions_unattributed
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "  demotions         {} fault-fill / {} promotion-swap",
        summary.demotions_fault, summary.demotions_swap
    )
    .map_err(io_err)?;
    writeln!(out, "  evictions         {}", summary.evictions).map_err(io_err)?;
    writeln!(
        out,
        "  lossy resets      {} read / {} write",
        summary.resets_read, summary.resets_write
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "  ping-pongs        {} round trips across {} pages",
        summary.ping_pongs, summary.ping_pong_pages
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "  detail retained   {} pages ({} pruned)",
        summary.detailed_pages, summary.pruned_pages
    )
    .map_err(io_err)?;
    Ok(())
}

/// One human-readable line per [`PageEvent`].
fn format_page_event(event: &PageEvent) -> String {
    match event {
        PageEvent::Fill { access, into } => {
            format!("access {access:>8}  fill into {into}")
        }
        PageEvent::Promote { access, provenance } => match provenance {
            Some(provenance) => format!(
                "access {access:>8}  promote NVM->DRAM ({} counter {} >= {}, rank {})",
                provenance.counter.name(),
                provenance.value,
                provenance.threshold,
                provenance.rank,
            ),
            None => format!("access {access:>8}  promote NVM->DRAM"),
        },
        PageEvent::Demote { access, cause } => {
            let cause = match cause {
                hybridmem_core::DemotionCause::FaultFill => "displaced by a fault fill",
                hybridmem_core::DemotionCause::PromotionSwap => "swapped out by a promotion",
            };
            format!("access {access:>8}  demote DRAM->NVM ({cause})")
        }
        PageEvent::Evict { access, from } => {
            format!("access {access:>8}  evict from {from}")
        }
        PageEvent::Reset {
            access,
            counter,
            lost,
        } => {
            format!(
                "access {access:>8}  lossy reset: {} counter lost {lost}",
                counter.name()
            )
        }
    }
}

/// Describes a loaded trace as a `WorkloadSpec` plus paper-style
/// configuration so the standard runner applies: the working set is the
/// measured footprint; locality fields are unused because the recorded
/// accesses are fed directly.
fn trace_experiment(
    args: &Args,
    path: &str,
    trace: &[Access],
) -> Result<(WorkloadSpec, ExperimentConfig)> {
    let stats = TraceStats::from_accesses(trace.iter().copied());
    if stats.total() == 0 {
        return Err(Error::invalid_input(format!("trace {path} is empty")));
    }
    let memory_fraction: f64 = args.get_parsed_or("memory-fraction", 0.75)?;
    let dram_fraction: f64 = args.get_parsed_or("dram-fraction", 0.10)?;
    let spec = WorkloadSpec::new(
        path.to_owned(),
        stats.footprint().value().max(2),
        stats.reads.max(1),
        stats.writes,
        hybridmem_trace::LocalityParams::balanced(),
    )?;
    let config = ExperimentConfig {
        memory_fraction,
        dram_fraction,
        replay: parse_replay(args)?,
        ..ExperimentConfig::date2016()
    };
    Ok((spec, config))
}

/// Runs one policy over an already-decoded trace buffer.
fn simulate_policy_cell(
    config: &ExperimentConfig,
    spec: &WorkloadSpec,
    path: &str,
    kind: PolicyKind,
    pages: &[PageAccess],
) -> Result<SimulationReport> {
    let policy = config.build_policy(kind, spec)?;
    let mut simulator = HybridSimulator::with_date2016_devices(policy);
    drive_slice(&mut simulator, config.replay, pages);
    Ok(simulator.into_report(path.to_owned()))
}

/// One policy's results from a `compare` run: always the report, plus
/// whatever instrumentation the flags requested.
struct CompareCell {
    report: SimulationReport,
    records: Vec<IntervalRecord>,
    ledger: Option<LedgerReport>,
    audit: Option<AuditReport>,
    flight: Option<FlightRecord>,
}

/// [`simulate_policy_cell`] with optional instrumentation attached: a
/// [`WindowedCollector`] when `--metrics-out` asked for interval records,
/// a [`PageLedger`] when `--ledger-out` asked for page journeys, an
/// [`AuditSink`] when `--audit-out` asked for run-health checking, a
/// [`FlightRecorder`] black box when `--flight-out` asked for one — all
/// fanned out when several are set, and no sink at all when none is.
/// Window and ledger boundaries are trace positions, so the outputs do
/// not depend on how the cells around this one are scheduled.
///
/// A scheduled `cell-panic-at` fault arms a [`PanicTripwire`] as the
/// FIRST sink, so the panic fires before the dying access reaches any
/// recorder and the flight ring ends strictly before the panic site;
/// the flight recorder rides LAST so its ring reflects what every
/// other sink saw. Its probe is published to the thread's registry, so
/// the isolation wrapper captures the black box even when the panic
/// destroys the sink itself.
#[allow(clippy::too_many_arguments)]
fn instrumented_policy_cell(
    config: &ExperimentConfig,
    spec: &WorkloadSpec,
    path: &str,
    kind: PolicyKind,
    pages: &[PageAccess],
    window: Option<u64>,
    ledger: Option<LedgerOptions>,
    audit: Option<AuditOptions>,
    flight: Option<FlightOptions>,
    panic_at: Option<u64>,
) -> Result<CompareCell> {
    let policy = config.build_policy(kind, spec)?;
    let mut simulator = HybridSimulator::with_date2016_devices(policy);
    let mut sinks: Vec<Box<dyn EventSink>> = Vec::new();
    if let Some(at) = panic_at {
        sinks.push(Box::new(PanicTripwire::new(path, kind.name(), at)));
    }
    if let Some(window) = window {
        sinks.push(Box::new(WindowedCollector::new(
            path,
            kind.name(),
            window,
            0,
        )));
    }
    if let Some(options) = ledger {
        sinks.push(Box::new(PageLedger::new(path, kind.name(), options, 0)));
    }
    if let Some(options) = audit {
        // dram-cache keeps a clean NVM copy while a page is cached, so
        // its tiers legitimately overlap; every other policy is
        // exclusive.
        let sink = AuditSink::new(path, kind.name(), options)
            .with_capacities(
                simulator.dram_capacity().value(),
                simulator.nvm_capacity().value(),
            )
            .with_exclusive_residency(kind != PolicyKind::DramCache);
        sinks.push(Box::new(sink));
    }
    if let Some(options) = flight {
        sinks.push(Box::new(flight_recorder_for(
            path,
            kind.name(),
            options,
            &simulator,
            0,
        )));
    }
    let attached = sinks.len();
    match sinks.len() {
        0 => {}
        1 => simulator.set_event_sink(sinks.pop().expect("one sink")),
        _ => {
            let mut fanout = FanoutSink::new();
            for sink in sinks {
                fanout.push(sink);
            }
            simulator.set_event_sink(Box::new(fanout));
        }
    }
    drive_slice(&mut simulator, config.replay, pages);
    let mut records = Vec::new();
    let mut ledger_report = None;
    let mut audit_report = None;
    let mut flight_record = None;
    if attached > 0 {
        let mut sink = simulator
            .take_event_sink()
            .ok_or_else(|| Error::invalid_input("instrumented cell lost its event sink"))?;
        if attached > 1 {
            let fanout = sink
                .as_any_mut()
                .downcast_mut::<FanoutSink>()
                .ok_or_else(|| Error::invalid_input("instrumented cell sink has the wrong type"))?;
            for child in fanout.sinks_mut() {
                drain_instrumentation(
                    child.as_mut(),
                    &mut records,
                    &mut ledger_report,
                    &mut audit_report,
                    &mut flight_record,
                );
            }
        } else {
            drain_instrumentation(
                sink.as_mut(),
                &mut records,
                &mut ledger_report,
                &mut audit_report,
                &mut flight_record,
            );
        }
    }
    Ok(CompareCell {
        report: simulator.into_report(path.to_owned()),
        records,
        ledger: ledger_report,
        audit: audit_report,
        flight: flight_record,
    })
}

/// Finishes and drains one instrumentation sink into whichever output
/// slot matches its concrete type. The flight recorder rides last in
/// the fanout, so the audit slot is already filled when its branch
/// runs: an unclean audit promotes the dump's trigger, exactly as a
/// cell that survived but broke a conservation law should read.
fn drain_instrumentation(
    sink: &mut dyn EventSink,
    records: &mut Vec<IntervalRecord>,
    ledger: &mut Option<LedgerReport>,
    audit: &mut Option<AuditReport>,
    flight: &mut Option<FlightRecord>,
) {
    let any = sink.as_any_mut();
    if let Some(collector) = any.downcast_mut::<WindowedCollector>() {
        collector.finish();
        *records = collector.drain();
    } else if let Some(page_ledger) = any.downcast_mut::<PageLedger>() {
        *ledger = Some(page_ledger.finish());
    } else if let Some(audit_sink) = any.downcast_mut::<AuditSink>() {
        audit_sink.finish();
        *audit = Some(audit_sink.report());
    } else if let Some(recorder) = any.downcast_mut::<FlightRecorder>() {
        // The cell completed, so nothing will capture the published
        // probe — take it back and capture the black box here.
        let probe = recorder.probe();
        let _ = flightrec::take_probe();
        let trigger = match audit {
            Some(report) if !report.clean => "audit-violation",
            _ => "completed",
        };
        *flight = Some(probe.capture(trigger, None, 0));
    }
}

/// Runs every policy over the shared trace buffer on a worker pool of
/// `threads` OS threads (0 = all available cores), writing results into
/// per-cell slots so the output order — and the first error reported —
/// match the serial loop exactly. The closure additionally receives the
/// worker index (for span-profiler lanes); cell results must not depend
/// on it.
fn run_policy_cells<T: Send>(
    kinds: &[PolicyKind],
    threads: usize,
    run: impl Fn(PolicyKind, usize) -> Result<T> + Sync,
) -> Result<Vec<T>> {
    let workers = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
    .min(kinds.len())
    .max(1);
    let next_cell = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T>>>> = kinds.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let worker = |id: usize| loop {
            let index = next_cell.fetch_add(1, Ordering::Relaxed);
            let Some(kind) = kinds.get(index) else { break };
            let result = run(*kind, id);
            *slots[index].lock().expect("cell slot poisoned") = Some(result);
        };
        for id in 0..workers {
            let worker = &worker;
            scope.spawn(move || worker(id));
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("cell slot poisoned")
                .expect("every cell was claimed by a worker")
        })
        .collect()
}

/// [`run_policy_cells`] with per-cell failure isolation: every cell
/// runs inside [`run_isolated`] (panics caught and retried, then
/// quarantined as typed errors), so one dying cell never takes the
/// rest of the matrix down. Never fails as a whole — quarantined
/// cells come back as [`CellOutcome::Failed`] in policy order.
fn run_policy_cells_isolated<T: Send>(
    workload: &str,
    kinds: &[PolicyKind],
    threads: usize,
    run: impl Fn(PolicyKind, usize) -> Result<T> + Sync,
) -> Vec<CellOutcome<T>> {
    let workers = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
    .min(kinds.len())
    .max(1);
    let next_cell = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellOutcome<T>>>> =
        kinds.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let worker = |id: usize| loop {
            let index = next_cell.fetch_add(1, Ordering::Relaxed);
            let Some(kind) = kinds.get(index) else { break };
            let outcome = run_isolated(workload, kind.name(), || run(*kind, id));
            // A poisoned slot just means some other cell panicked past
            // its isolation wrapper; this cell's outcome is still good.
            *slots[index]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
        };
        for id in 0..workers {
            let worker = &worker;
            scope.spawn(move || worker(id));
        }
    });
    slots
        .into_iter()
        .zip(kinds)
        .map(|(slot, kind)| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| CellOutcome::Failed {
                    error: Error::invalid_input(format!(
                        "cell {workload}/{} was never completed: its worker thread died",
                        kind.name()
                    )),
                    retries: 0,
                    panicked: true,
                    flight: None,
                })
        })
        .collect()
}

/// Loads a trace and runs one policy over it with paper-style memory
/// sizing derived from the trace's own footprint.
fn run_trace_policy(args: &Args, kind: PolicyKind) -> Result<SimulationReport> {
    let (path, trace) = load_trace(args)?;
    let (spec, config) = trace_experiment(args, &path, &trace)?;
    let pages: Vec<PageAccess> = trace.iter().copied().map(PageAccess::from).collect();
    simulate_policy_cell(&config, &spec, &path, kind, &pages)
}

fn write_report<W: std::io::Write>(out: &mut W, report: &SimulationReport) -> Result<()> {
    writeln!(out, "{}", report.text_summary()).map_err(io_err)
}

/// Resolves `--workload`: a built-in PARSEC name, or a path to a
/// `WorkloadSpec` JSON file for custom workloads.
fn load_spec(name_or_path: &str) -> Result<WorkloadSpec> {
    if parsec::NAMES.contains(&name_or_path) {
        return parsec::spec(name_or_path);
    }
    let text = std::fs::read_to_string(name_or_path).map_err(|e| {
        Error::invalid_input(format!(
            "{name_or_path:?} is neither a PARSEC workload ({}) nor a readable spec file: {e}",
            parsec::NAMES.join(", ")
        ))
    })?;
    let spec: WorkloadSpec = serde_json::from_str(&text)
        .map_err(|e| Error::invalid_input(format!("invalid WorkloadSpec JSON: {e}")))?;
    spec.validate()?;
    Ok(spec)
}

enum Format {
    Text,
    Binary,
}

fn detect_format(args: &Args, path: &str) -> Result<Format> {
    match args.get("format") {
        Some("text") => Ok(Format::Text),
        Some("binary") => Ok(Format::Binary),
        Some(other) => Err(Error::invalid_input(format!(
            "unknown format {other:?}; expected text or binary"
        ))),
        None => {
            if path.ends_with(".txt") || path.ends_with(".text") {
                Ok(Format::Text)
            } else {
                Ok(Format::Binary)
            }
        }
    }
}

fn load_trace(args: &Args) -> Result<(String, Vec<Access>)> {
    let path = args
        .positional(1)
        .ok_or_else(|| Error::invalid_input("expected a trace file path"))?
        .to_owned();
    let file =
        File::open(&path).map_err(|e| Error::invalid_input(format!("cannot open {path}: {e}")))?;
    let reader = BufReader::new(file);
    let trace = match detect_format(args, &path)? {
        Format::Text => trace_io::read_text(reader)?,
        Format::Binary => trace_io::read_binary(reader)?,
    };
    Ok((path, trace))
}

/// Resolves `--replay`: `serial` or `batched` (the default). Both drivers
/// are byte-identical; batched amortizes per-access policy dispatch.
fn parse_replay(args: &Args) -> Result<ReplayMode> {
    match args.get_or("replay", "batched") {
        "serial" => Ok(ReplayMode::Serial),
        "batched" => Ok(ReplayMode::Batched),
        other => Err(Error::invalid_input(format!(
            "unknown replay driver {other:?}; expected serial or batched"
        ))),
    }
}

/// Drives a decoded slice through the configured replay driver.
fn drive_slice(simulator: &mut HybridSimulator, replay: ReplayMode, pages: &[PageAccess]) {
    match replay {
        ReplayMode::Serial => simulator.run_slice(pages),
        ReplayMode::Batched => simulator.run_slice_batched(pages),
    }
}

fn parse_policy(name: &str) -> Result<PolicyKind> {
    PolicyKind::all()
        .into_iter()
        .find(|kind| kind.name() == name)
        .ok_or_else(|| {
            Error::invalid_input(format!(
                "unknown policy {name:?}; expected one of: {}",
                PolicyKind::all()
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
}

fn io_err(e: std::io::Error) -> Error {
    Error::invalid_input(format!("I/O error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(tokens: &[&str]) -> (Result<()>, String) {
        let mut out = Vec::new();
        let result = run(tokens.iter().map(|s| (*s).to_owned()).collect(), &mut out);
        (result, String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn no_command_prints_usage() {
        let (result, text) = run_capture(&[]);
        assert!(result.is_ok());
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let (result, _) = run_capture(&["frobnicate"]);
        assert!(result.unwrap_err().to_string().contains("frobnicate"));
    }

    #[test]
    fn list_shows_workloads_and_policies() {
        let (result, text) = run_capture(&["list"]);
        assert!(result.is_ok());
        assert!(text.contains("blackscholes"));
        assert!(text.contains("two-lru"));
        assert!(text.contains("clock-dwf"));
    }

    #[test]
    fn generate_characterize_simulate_roundtrip() {
        let dir = std::env::temp_dir().join("hybridmem-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let path = path.to_str().unwrap();

        let (result, text) = run_capture(&[
            "generate",
            "--workload",
            "bodytrack",
            "--output",
            path,
            "--cap",
            "5000",
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("wrote"));

        let (result, text) = run_capture(&["characterize", path]);
        assert!(result.is_ok());
        assert!(text.contains("accesses"), "{text}");
        assert!(text.contains("working set"));

        let (result, text) = run_capture(&["characterize", path, "--deep", "true"]);
        assert!(result.is_ok());
        assert!(text.contains("reuse analysis"), "{text}");
        assert!(text.contains("miss"));

        let (result, text) = run_capture(&["simulate", path, "--policy", "two-lru"]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("AMAT"));
        assert!(text.contains("two-lru"));

        let (result, text) =
            run_capture(&["simulate", path, "--policy", "two-lru", "--json", "true"]);
        assert!(result.is_ok());
        assert!(text.contains("\"policy\""));

        let (result, text) = run_capture(&["compare", path]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("clock-pro"));

        let (result, threaded) = run_capture(&["compare", path, "--threads", "2"]);
        assert!(result.is_ok(), "{result:?}");
        assert_eq!(threaded, text, "worker pool must not change the table");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn compare_metrics_out_writes_deterministic_jsonl() {
        let dir = std::env::temp_dir().join("hybridmem-cli-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("m.trace");
        let trace_path = trace_path.to_str().unwrap();
        run_capture(&[
            "generate",
            "--workload",
            "bodytrack",
            "--output",
            trace_path,
            "--cap",
            "4000",
        ])
        .0
        .unwrap();

        let jsonl_1 = dir.join("metrics-1.jsonl");
        let (result, _) = run_capture(&[
            "compare",
            trace_path,
            "--metrics-out",
            jsonl_1.to_str().unwrap(),
            "--metrics-window",
            "1000",
            "--threads",
            "1",
        ]);
        assert!(result.is_ok(), "{result:?}");
        let text = std::fs::read_to_string(&jsonl_1).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 4000 accesses / 1000-access windows = 4 records per policy.
        assert_eq!(lines.len(), 4 * PolicyKind::all().len());
        let first: IntervalRecord = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.policy, "two-lru", "records follow kinds order");
        assert_eq!(first.accesses, 1000);

        let jsonl_4 = dir.join("metrics-4.jsonl");
        let (result, _) = run_capture(&[
            "compare",
            trace_path,
            "--metrics-out",
            jsonl_4.to_str().unwrap(),
            "--metrics-window",
            "1000",
            "--threads",
            "4",
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert_eq!(
            text,
            std::fs::read_to_string(&jsonl_4).unwrap(),
            "metrics JSONL must be byte-identical at any thread count"
        );
        for p in [jsonl_1, jsonl_4] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn compare_ledger_out_is_byte_identical_across_thread_counts() {
        let dir = std::env::temp_dir().join("hybridmem-cli-ledger");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("l.trace");
        let trace_path = trace_path.to_str().unwrap();
        run_capture(&[
            "generate",
            "--workload",
            "bodytrack",
            "--output",
            trace_path,
            "--cap",
            "4000",
        ])
        .0
        .unwrap();

        let jsonl_1 = dir.join("ledger-1.jsonl");
        let (result, text) = run_capture(&[
            "compare",
            trace_path,
            "--ledger-out",
            jsonl_1.to_str().unwrap(),
            "--ledger-top",
            "8",
            "--threads",
            "1",
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("wrote page ledger"), "{text}");
        let serial = std::fs::read_to_string(&jsonl_1).unwrap();
        let lines: Vec<&str> = serial.lines().collect();
        // One header per policy plus at most 8 page records each.
        assert!(lines.len() > PolicyKind::all().len());
        assert!(lines[0].contains("\"workload\""), "{}", lines[0]);
        assert!(
            lines[0].contains("\"two-lru\""),
            "records follow kinds order"
        );
        for line in &lines {
            let _: serde_json::Value = serde_json::from_str(line).unwrap();
        }

        let jsonl_4 = dir.join("ledger-4.jsonl");
        let (result, _) = run_capture(&[
            "compare",
            trace_path,
            "--ledger-out",
            jsonl_4.to_str().unwrap(),
            "--ledger-top",
            "8",
            "--threads",
            "4",
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert_eq!(
            serial,
            std::fs::read_to_string(&jsonl_4).unwrap(),
            "ledger JSONL must be byte-identical at any thread count"
        );
        for p in [jsonl_1, jsonl_4] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn compare_profile_out_writes_chrome_trace_json() {
        let dir = std::env::temp_dir().join("hybridmem-cli-profile");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("p.trace");
        let trace_path = trace_path.to_str().unwrap();
        run_capture(&[
            "generate",
            "--workload",
            "bodytrack",
            "--output",
            trace_path,
            "--cap",
            "2000",
        ])
        .0
        .unwrap();

        let profile = dir.join("profile.json");
        let (result, text) = run_capture(&[
            "compare",
            trace_path,
            "--profile-out",
            profile.to_str().unwrap(),
            "--threads",
            "2",
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("wrote span profile"), "{text}");
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&profile).unwrap()).unwrap();
        assert_eq!(parsed["displayTimeUnit"], "ms");
        let events = parsed["traceEvents"].as_array().unwrap();
        // One "cell" span per policy plus thread_name metadata events.
        assert!(events.len() > PolicyKind::all().len());
        assert!(events
            .iter()
            .any(|event| event["cat"] == "scheduler" && event["ph"] == "X"));
        let _ = std::fs::remove_file(profile);
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn compare_audit_out_is_clean_at_any_thread_count() {
        let dir = std::env::temp_dir().join("hybridmem-cli-audit");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("a.trace");
        let trace_path = trace_path.to_str().unwrap();
        run_capture(&[
            "generate",
            "--workload",
            "bodytrack",
            "--output",
            trace_path,
            "--cap",
            "4000",
        ])
        .0
        .unwrap();

        for threads in ["1", "4"] {
            let audit = dir.join(format!("audit-{threads}.json"));
            let (result, text) = run_capture(&[
                "compare",
                trace_path,
                "--audit-out",
                audit.to_str().unwrap(),
                "--threads",
                threads,
            ]);
            assert!(result.is_ok(), "{result:?}");
            assert!(text.contains("wrote audit report"), "{text}");
            let parsed: serde_json::Value =
                serde_json::from_str(&std::fs::read_to_string(&audit).unwrap()).unwrap();
            assert_eq!(parsed["schema"], "hybridmem-audit-v1");
            assert_eq!(parsed["clean"], true, "audit must be clean: {parsed}");
            assert_eq!(parsed["total_violations"], 0);
            assert_eq!(
                parsed["cells"].as_array().unwrap().len(),
                PolicyKind::all().len()
            );
            let _ = std::fs::remove_file(audit);
        }
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn compare_quarantines_a_scripted_panic_and_gates_with_strict() {
        let dir = std::env::temp_dir().join("hybridmem-cli-chaos");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("a.trace");
        let trace_path = trace_path.to_str().unwrap();
        run_capture(&[
            "generate",
            "--workload",
            "bodytrack",
            "--output",
            trace_path,
            "--cap",
            "2000",
        ])
        .0
        .unwrap();
        // The cell name in the fault plan is the trace path itself.
        let plan = format!("cell-panic@{trace_path}/two-lru:100");
        let health = dir.join("health.json");

        // Without --strict: the matrix completes, the failure is
        // reported, and the exit stays clean.
        let (result, text) = run_capture(&[
            "compare",
            trace_path,
            "--threads",
            "2",
            "--fault-plan",
            &plan,
            "--health-out",
            health.to_str().unwrap(),
        ]);
        assert!(result.is_ok(), "non-strict run stays clean: {result:?}");
        assert!(text.contains("injected fault"), "{text}");
        assert!(text.contains("wrote matrix health"), "{text}");
        assert!(text.contains("clock-dwf"), "other cells complete: {text}");
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&health).unwrap()).unwrap();
        assert_eq!(parsed["schema"], "hybridmem-matrix-health-v1");
        assert_eq!(parsed["failed_cells"], 1, "{parsed}");
        assert_eq!(
            parsed["cells"].as_array().unwrap().len(),
            PolicyKind::all().len()
        );
        let failed: Vec<&str> = parsed["cells"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|c| c["status"] == "failed")
            .map(|c| c["policy"].as_str().unwrap())
            .collect();
        assert_eq!(failed, ["two-lru"], "{parsed}");

        // With --strict the same run exits non-zero, after writing the
        // artifact.
        let (result, _) = run_capture(&[
            "compare",
            trace_path,
            "--threads",
            "2",
            "--fault-plan",
            &plan,
            "--health-out",
            health.to_str().unwrap(),
            "--strict",
            "true",
        ]);
        let err = result.unwrap_err().to_string();
        assert!(err.contains("cells failed"), "{err}");
        assert!(health.exists(), "health artifact written before the exit");
        let _ = std::fs::remove_file(health);
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn compare_rejects_zero_valued_instrumentation_knobs() {
        for (flag, message) in [
            ("--metrics-window", "--metrics-window"),
            ("--ledger-top", "--ledger-top"),
            ("--flight-events", "--flight-events"),
        ] {
            let (result, _) = run_capture(&["compare", "unused.trace", flag, "0"]);
            let err = result.unwrap_err().to_string();
            assert!(err.contains(message), "{flag}: {err}");
            assert!(err.contains("at least 1"), "{flag}: {err}");
        }
        let (result, _) = run_capture(&["observe", "bodytrack", "--flight-events", "0"]);
        assert!(result
            .unwrap_err()
            .to_string()
            .contains("--flight-events must retain at least 1"));
    }

    #[test]
    fn compare_flight_out_survives_a_mid_sim_panic_and_postmortem_correlates_it() {
        let dir = std::env::temp_dir().join("hybridmem-cli-flight");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("f.trace");
        let trace_path = trace_path.to_str().unwrap();
        run_capture(&[
            "generate",
            "--workload",
            "bodytrack",
            "--output",
            trace_path,
            "--cap",
            "2000",
        ])
        .0
        .unwrap();
        // A mid-simulation panic: the tripwire fires at access 100, on
        // every retry, so the cell ends quarantined with a black box.
        let plan = format!("cell-panic-at@{trace_path}/two-lru:100");
        let health = dir.join("health.json");

        let mut dumps = Vec::new();
        for threads in ["1", "4"] {
            let flight = dir.join(format!("flight-{threads}.json"));
            let (result, text) = run_capture(&[
                "compare",
                trace_path,
                "--threads",
                threads,
                "--fault-plan",
                &plan,
                "--health-out",
                health.to_str().unwrap(),
                "--flight-out",
                flight.to_str().unwrap(),
            ]);
            assert!(result.is_ok(), "non-strict run stays clean: {result:?}");
            assert!(text.contains("wrote flight recorder dump"), "{text}");
            dumps.push(std::fs::read_to_string(&flight).unwrap());
            let _ = std::fs::remove_file(flight);
        }
        assert_eq!(
            dumps[0], dumps[1],
            "flight dump must be byte-identical at any thread count"
        );

        let parsed: serde_json::Value = serde_json::from_str(&dumps[0]).unwrap();
        assert_eq!(parsed["schema"], "hybridmem-flight-v1");
        assert_eq!(parsed["triggered_cells"], 1, "{parsed}");
        assert_eq!(
            parsed["cells"].as_array().unwrap().len(),
            PolicyKind::all().len(),
            "completed cells dump their black box too"
        );
        let failed = parsed["cells"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["trigger"] == "panic")
            .expect("the panicking cell is in the dump");
        assert_eq!(failed["policy"], "two-lru");
        assert_eq!(failed["retries"], 2, "bounded retries exhausted");
        assert!(
            failed["error"]
                .as_str()
                .unwrap()
                .contains("panicked at access 100"),
            "{failed}"
        );
        // The tripwire rides before the recorder, so the ring stops
        // strictly before the dying access.
        let final_access = failed["final_access"].as_u64().unwrap();
        assert!(
            final_access < 100,
            "final access {final_access} < panic site"
        );
        let last_event = failed["events"].as_array().unwrap().last().unwrap();
        assert!(last_event["access"].as_u64().unwrap() < 100, "{last_event}");

        // Postmortem joins the dump with the health report into a
        // timeline that names the cell and correlates a prior signal.
        let flight_path = dir.join("flight.json");
        std::fs::write(&flight_path, &dumps[0]).unwrap();
        let report_path = dir.join("postmortem.json");
        let (result, text) = run_capture(&[
            "postmortem",
            "--flight",
            flight_path.to_str().unwrap(),
            "--health",
            health.to_str().unwrap(),
            "--json",
            report_path.to_str().unwrap(),
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert!(
            text.contains(&format!("cell {trace_path}/two-lru — trigger panic")),
            "{text}"
        );
        assert!(text.contains("quarantined after 2"), "{text}");
        let report: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        assert_eq!(report["schema"], "hybridmem-postmortem-v1");
        assert_eq!(report["triggered_cells"], 1, "{report}");
        let cell = report["cells"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["trigger"] == "panic")
            .expect("the failing cell is in the report");
        assert_eq!(cell["policy"], "two-lru");
        assert_eq!(cell["final_access"].as_u64().unwrap(), final_access);
        assert!(
            cell["correlated_signals"].as_u64().unwrap() >= 1,
            "at least one non-flight signal correlates: {cell}"
        );

        for p in [flight_path, report_path, health] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn observe_flight_out_dumps_a_completed_black_box() {
        let dir = std::env::temp_dir().join("hybridmem-cli-observe-flight");
        std::fs::create_dir_all(&dir).unwrap();
        let flight = dir.join("flight.json");
        let (result, text) = run_capture(&[
            "observe",
            "bodytrack",
            "--cap",
            "3000",
            "--window",
            "1000",
            "--flight-out",
            flight.to_str().unwrap(),
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("wrote flight recorder dump"), "{text}");
        // The interval stream is unchanged by the riding recorder.
        let records: Vec<&str> = text.lines().filter(|l| l.starts_with('{')).collect();
        assert_eq!(records.len(), 3);
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&flight).unwrap()).unwrap();
        assert_eq!(parsed["schema"], "hybridmem-flight-v1");
        assert_eq!(parsed["triggered_cells"], 0);
        let cell = &parsed["cells"].as_array().unwrap()[0];
        assert_eq!(cell["trigger"], "completed");
        assert_eq!(cell["workload"], "bodytrack");
        assert_eq!(cell["accesses"], 3000, "{cell}");
        let _ = std::fs::remove_file(flight);
    }

    #[test]
    fn postmortem_requires_a_flight_dump() {
        let (result, _) = run_capture(&["postmortem"]);
        assert!(result.unwrap_err().to_string().contains("--flight"));
        let (result, _) = run_capture(&["postmortem", "--flight", "/no/such/file"]);
        assert!(result.unwrap_err().to_string().contains("cannot read"));
    }

    #[test]
    fn compare_resume_replays_journaled_cells_byte_identically() {
        let dir = std::env::temp_dir().join("hybridmem-cli-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("a.trace");
        let trace_path = trace_path.to_str().unwrap();
        run_capture(&[
            "generate",
            "--workload",
            "bodytrack",
            "--output",
            trace_path,
            "--cap",
            "2000",
        ])
        .0
        .unwrap();
        let journal = dir.join("run.hmjournal");
        let _ = std::fs::remove_file(&journal);

        let (baseline, baseline_text) = run_capture(&["compare", trace_path, "--threads", "2"]);
        baseline.unwrap();

        // An interrupted run: one cell keeps panicking, the others
        // complete and land in the journal.
        let plan = format!("cell-panic@{trace_path}/two-lru:100");
        let (result, _) = run_capture(&[
            "compare",
            trace_path,
            "--threads",
            "2",
            "--fault-plan",
            &plan,
            "--resume",
            journal.to_str().unwrap(),
        ]);
        assert!(result.is_ok(), "{result:?}");

        // Resuming without the fault recomputes only the quarantined
        // cell; the output matches the uninterrupted run byte for byte.
        let (result, resumed_text) = run_capture(&[
            "compare",
            trace_path,
            "--threads",
            "2",
            "--resume",
            journal.to_str().unwrap(),
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert_eq!(resumed_text, baseline_text, "resumed ≡ uninterrupted");

        // A second resume replays everything from the journal.
        let (result, replayed_text) = run_capture(&[
            "compare",
            trace_path,
            "--threads",
            "1",
            "--resume",
            journal.to_str().unwrap(),
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert_eq!(replayed_text, baseline_text);

        // The journal cannot be combined with instrumentation streams.
        let (result, _) = run_capture(&[
            "compare",
            trace_path,
            "--resume",
            journal.to_str().unwrap(),
            "--metrics-out",
            dir.join("m.jsonl").to_str().unwrap(),
        ]);
        let err = result.unwrap_err().to_string();
        assert!(err.contains("--resume cannot be combined"), "{err}");

        // --flight-out stays allowed with --resume: journaled cells
        // simply have no flight record, so a fully replayed run dumps
        // an empty matrix (CI's chaos job relies on this combination).
        let flight = dir.join("flight.json");
        let (result, _) = run_capture(&[
            "compare",
            trace_path,
            "--resume",
            journal.to_str().unwrap(),
            "--flight-out",
            flight.to_str().unwrap(),
        ]);
        assert!(result.is_ok(), "{result:?}");
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&flight).unwrap()).unwrap();
        assert_eq!(parsed["schema"], "hybridmem-flight-v1");
        assert_eq!(parsed["dumped_cells"], 0, "all cells replayed: {parsed}");
        let _ = std::fs::remove_file(flight);
        let _ = std::fs::remove_file(journal);
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn analyze_diff_tables_and_gates() {
        let dir = std::env::temp_dir().join("hybridmem-cli-analyze-diff");
        std::fs::create_dir_all(&dir).unwrap();
        let line = |amat: f64| {
            format!(
                r#"{{"workload":"w","policy":"two-lru","interval":0,"start_access":0,"end_access":1000,"accesses":1000,"dram_read_hits":10,"dram_write_hits":5,"nvm_read_hits":700,"nvm_write_hits":200,"faults":85,"migrations_to_dram":3,"migrations_to_nvm":2,"fills_to_dram":0,"fills_to_nvm":85,"evictions_to_disk":80,"dram_occupancy":12,"nvm_occupancy":110,"hit_ratio":0.915,"amat_ns":{amat},"appr_nj":1.25}}"#
            )
        };
        let a = dir.join("a.jsonl");
        let b = dir.join("b.jsonl");
        std::fs::write(&a, format!("{}\n", line(100.0))).unwrap();
        std::fs::write(&b, format!("{}\n", line(150.0))).unwrap();

        let report = dir.join("diff.json");
        let (result, text) = run_capture(&[
            "analyze",
            "diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--json",
            report.to_str().unwrap(),
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("amat_ns"), "{text}");

        // The emitted report passes its own round-trip check.
        let (result, text) = run_capture(&["analyze", "check", report.to_str().unwrap()]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("byte-for-byte"), "{text}");

        // Gating on the same pair fails; the clean direction passes.
        let (result, _) = run_capture(&[
            "analyze",
            "diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--gate",
            "true",
        ]);
        assert!(result.unwrap_err().to_string().contains("gate"));
        let (result, _) = run_capture(&[
            "analyze",
            "diff",
            a.to_str().unwrap(),
            a.to_str().unwrap(),
            "--gate",
            "true",
        ]);
        assert!(result.is_ok(), "{result:?}");
        for p in [a, b, report] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn analyze_diff_degrades_bad_jsonl_lines_to_warnings() {
        let dir = std::env::temp_dir().join("hybridmem-cli-analyze-warn");
        std::fs::create_dir_all(&dir).unwrap();
        let good = r#"{"workload":"w","policy":"two-lru","interval":0,"start_access":0,"end_access":1000,"accesses":1000,"dram_read_hits":10,"dram_write_hits":5,"nvm_read_hits":700,"nvm_write_hits":200,"faults":85,"migrations_to_dram":3,"migrations_to_nvm":2,"fills_to_dram":0,"fills_to_nvm":85,"evictions_to_disk":80,"dram_occupancy":12,"nvm_occupancy":110,"hit_ratio":0.915,"amat_ns":100.0,"appr_nj":1.25}"#;
        let a = dir.join("a.jsonl");
        // A good line, a torn tail, and a partial record: the ingest
        // keeps the good line and reports the other two.
        std::fs::write(&a, format!("{good}\n{{\"interval\":1}}\n{{\"torn")).unwrap();

        let report = dir.join("diff.json");
        let (result, text) = run_capture(&[
            "analyze",
            "diff",
            a.to_str().unwrap(),
            a.to_str().unwrap(),
            "--json",
            report.to_str().unwrap(),
            "--gate",
            "true",
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("warning: skipped"), "{text}");
        let json = std::fs::read_to_string(&report).unwrap();
        // Both sides load the same degraded file: 2 warnings each.
        assert!(json.contains("\"ingest_warnings\": 4"), "{json}");
        let (result, _) = run_capture(&["analyze", "check", report.to_str().unwrap()]);
        assert!(result.is_ok(), "{result:?}");
        for p in [a, report] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn analyze_trajectory_gates_the_newest_bench_point() {
        let dir = std::env::temp_dir().join("hybridmem-cli-analyze-traj");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = |rate: f64| {
            format!(
                r#"{{"schema":"hybridmem-stress-v1","quick":true,"seed":42,"cap":60000,"wall_seconds":4.0,"phases":[{{"name":"replay_batched","seconds":1.0,"accesses":240000,"accesses_per_second":{rate}}}],"policies":[]}}"#
            )
        };
        let mut paths = Vec::new();
        for (index, rate) in [(1u64, 400_000.0), (2, 410_000.0), (3, 200_000.0)] {
            let path = dir.join(format!("BENCH_{index}.json"));
            std::fs::write(&path, bench(rate)).unwrap();
            paths.push(path);
        }
        let files: Vec<&str> = paths.iter().map(|p| p.to_str().unwrap()).collect();

        let report = dir.join("trajectory.json");
        let mut tokens = vec!["analyze", "trajectory"];
        tokens.extend(&files);
        tokens.extend(["--json", report.to_str().unwrap()]);
        let (result, text) = run_capture(&tokens);
        assert!(result.is_ok(), "advisory without --gate: {result:?}");
        assert!(text.contains("gate FAILED"), "{text}");

        tokens.extend(["--gate", "true"]);
        let (result, _) = run_capture(&tokens);
        assert!(result.unwrap_err().to_string().contains("trajectory gate"));

        // Dropping the slow newest point makes the gate pass (2 points =
        // advisory).
        let (result, text) = run_capture(&[
            "analyze",
            "trajectory",
            files[0],
            files[1],
            "--gate",
            "true",
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("advisory"), "{text}");

        let (result, text) = run_capture(&["analyze", "check", report.to_str().unwrap()]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("byte-for-byte"), "{text}");
        for p in paths {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_file(report);
    }

    #[test]
    fn analyze_metrics_prints_quantiles() {
        let dir = std::env::temp_dir().join("hybridmem-cli-analyze-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        std::fs::write(
            &path,
            r#"{"counters":{"sim.accesses":100},"gauges":{},
               "histograms":{"latency":{"count":3,"sum":30,"min":5,"max":20,"p50":10,"p95":20,"p99":20,"buckets":[]}}}"#,
        )
        .unwrap();
        let (result, text) = run_capture(&["analyze", "metrics", path.to_str().unwrap()]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("p95"), "{text}");
        assert!(text.contains("latency"), "{text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_rejects_unknown_modes_and_wrong_inputs() {
        let (result, _) = run_capture(&["analyze"]);
        assert!(result.unwrap_err().to_string().contains("usage"));
        let (result, _) = run_capture(&["analyze", "frobnicate"]);
        assert!(result.unwrap_err().to_string().contains("frobnicate"));
        let (result, _) = run_capture(&["analyze", "trajectory"]);
        assert!(result.unwrap_err().to_string().contains("BENCH"));
        let (result, _) = run_capture(&["analyze", "check", "/no/such/file"]);
        assert!(result.unwrap_err().to_string().contains("cannot read"));
    }

    #[test]
    fn ledger_command_prints_summary_and_jsonl() {
        let (result, text) = run_capture(&["ledger", "bodytrack", "--cap", "3000", "--top", "4"]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("pages touched"), "{text}");
        assert!(text.contains("promotions"), "{text}");
        assert!(text.contains("top pages by migrations"), "{text}");

        let (result, json) = run_capture(&[
            "ledger",
            "bodytrack",
            "--cap",
            "3000",
            "--top",
            "4",
            "--json",
            "true",
        ]);
        assert!(result.is_ok(), "{result:?}");
        let lines: Vec<&str> = json.lines().collect();
        assert!(lines.len() >= 2, "header plus at least one page: {json}");
        assert!(
            lines[0].contains("\"workload\":\"bodytrack\""),
            "{}",
            lines[0]
        );
        for line in &lines {
            let _: serde_json::Value = serde_json::from_str(line).unwrap();
        }
    }

    #[test]
    fn trace_page_prints_a_journey_and_reports_untouched_pages() {
        // Find a real page from the ledger's JSONL, then trace it.
        let (result, json) = run_capture(&[
            "ledger",
            "bodytrack",
            "--cap",
            "3000",
            "--top",
            "1",
            "--json",
            "true",
        ]);
        assert!(result.is_ok(), "{result:?}");
        let record: serde_json::Value = serde_json::from_str(json.lines().nth(1).unwrap()).unwrap();
        let page = record["page"].as_u64().unwrap().to_string();

        let (result, text) = run_capture(&["trace-page", "bodytrack", &page, "--cap", "3000"]);
        assert!(result.is_ok(), "{result:?}");
        assert!(
            text.contains(&format!("page {page} under two-lru")),
            "{text}"
        );
        assert!(text.contains("fill into"), "{text}");

        let (result, json_line) = run_capture(&[
            "trace-page",
            "bodytrack",
            &page,
            "--cap",
            "3000",
            "--json",
            "true",
        ]);
        assert!(result.is_ok(), "{result:?}");
        let parsed: serde_json::Value = serde_json::from_str(json_line.trim()).unwrap();
        assert_eq!(parsed["page"].as_u64().unwrap().to_string(), page);
        assert!(parsed["events"].as_array().is_some_and(|e| !e.is_empty()));

        let (result, text) = run_capture(&["trace-page", "bodytrack", "99999999", "--cap", "1000"]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("never touched"), "{text}");

        let (result, _) = run_capture(&["trace-page", "bodytrack"]);
        assert!(result.unwrap_err().to_string().contains("trace-page"));
    }

    #[test]
    fn observe_streams_one_record_per_window() {
        let (result, text) =
            run_capture(&["observe", "bodytrack", "--cap", "3000", "--window", "1000"]);
        assert!(result.is_ok(), "{result:?}");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (interval, line) in lines.iter().enumerate() {
            let record: IntervalRecord = serde_json::from_str(line).unwrap();
            assert_eq!(record.interval, interval as u64);
            assert_eq!(record.accesses, 1000);
            assert_eq!(record.policy, "two-lru");
            assert_eq!(record.workload, "bodytrack");
        }

        // Window 0: one whole-run record; a warmup prefix shrinks it.
        let (result, text) = run_capture(&[
            "observe",
            "bodytrack",
            "--cap",
            "3000",
            "--window",
            "0",
            "--warmup",
            "0.5",
        ]);
        assert!(result.is_ok(), "{result:?}");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let record: IntervalRecord = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(record.accesses, 1500);
        assert_eq!(record.start_access, 1500);
    }

    #[test]
    fn replay_drivers_are_byte_identical_in_compare_and_observe() {
        let dir = std::env::temp_dir().join("hybridmem-cli-replay");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("r.trace");
        let trace_path = trace_path.to_str().unwrap();
        run_capture(&[
            "generate",
            "--workload",
            "bodytrack",
            "--output",
            trace_path,
            "--cap",
            "4000",
        ])
        .0
        .unwrap();

        let (result, serial) = run_capture(&["compare", trace_path, "--replay", "serial"]);
        assert!(result.is_ok(), "{result:?}");
        let (result, batched) = run_capture(&["compare", trace_path, "--replay", "batched"]);
        assert!(result.is_ok(), "{result:?}");
        assert_eq!(serial, batched, "replay drivers must agree byte-for-byte");

        let observe_args = |replay| {
            vec![
                "observe",
                "bodytrack",
                "--cap",
                "3000",
                "--window",
                "500",
                "--replay",
                replay,
            ]
        };
        let (result, serial) = run_capture(&observe_args("serial"));
        assert!(result.is_ok(), "{result:?}");
        let (result, batched) = run_capture(&observe_args("batched"));
        assert!(result.is_ok(), "{result:?}");
        assert_eq!(serial, batched, "observe JSONL must agree byte-for-byte");

        let (result, _) = run_capture(&["compare", trace_path, "--replay", "nope"]);
        assert!(result.unwrap_err().to_string().contains("nope"));
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn observe_rejects_bad_warmup_and_unknown_policy() {
        let (result, _) = run_capture(&["observe", "bodytrack", "--warmup", "1.5"]);
        assert!(result.unwrap_err().to_string().contains("--warmup"));
        let (result, _) = run_capture(&["observe", "bodytrack", "--policy", "nope"]);
        assert!(result.unwrap_err().to_string().contains("nope"));
        let (result, _) = run_capture(&["observe"]);
        assert!(result.unwrap_err().to_string().contains("workload"));
    }

    #[test]
    fn generate_requires_flags() {
        let (result, _) = run_capture(&["generate", "--workload", "bodytrack"]);
        assert!(result.unwrap_err().to_string().contains("--output"));
        let (result, _) = run_capture(&["generate", "--output", "/tmp/x"]);
        assert!(result.unwrap_err().to_string().contains("--workload"));
    }

    #[test]
    fn bad_policy_lists_alternatives() {
        let dir = std::env::temp_dir().join("hybridmem-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.trace");
        let path = path.to_str().unwrap();
        run_capture(&[
            "generate",
            "--workload",
            "bodytrack",
            "--output",
            path,
            "--cap",
            "1000",
        ])
        .0
        .unwrap();
        let (result, _) = run_capture(&["simulate", path, "--policy", "nope"]);
        let message = result.unwrap_err().to_string();
        assert!(message.contains("two-lru") && message.contains("nope"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn generate_accepts_custom_spec_json() {
        let dir = std::env::temp_dir().join("hybridmem-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        let spec = WorkloadSpec::new(
            "custom",
            128,
            4_000,
            1_000,
            hybridmem_trace::LocalityParams::balanced(),
        )
        .unwrap();
        std::fs::write(&spec_path, serde_json::to_string(&spec).unwrap()).unwrap();
        let trace_path = dir.join("custom.trace");

        let (result, text) = run_capture(&[
            "generate",
            "--workload",
            spec_path.to_str().unwrap(),
            "--output",
            trace_path.to_str().unwrap(),
            "--cap",
            "0",
        ]);
        assert!(result.is_ok(), "{result:?}");
        assert!(text.contains("5000 accesses"), "{text}");

        // An invalid spec path reports both interpretations.
        let (result, _) = run_capture(&[
            "generate",
            "--workload",
            "no-such-thing",
            "--output",
            "/tmp/x",
        ]);
        let message = result.unwrap_err().to_string();
        assert!(message.contains("blackscholes"), "{message}");
        let _ = std::fs::remove_file(trace_path);
        let _ = std::fs::remove_file(spec_path);
    }

    #[test]
    fn format_detection() {
        let args = Args::parse(Vec::new()).unwrap();
        assert!(matches!(
            detect_format(&args, "a.txt").unwrap(),
            Format::Text
        ));
        assert!(matches!(
            detect_format(&args, "a.trace").unwrap(),
            Format::Binary
        ));
        let args = Args::parse(vec!["--format".into(), "nope".into()]).unwrap();
        assert!(detect_format(&args, "a").is_err());
    }
}
