//! A tiny, dependency-free flag parser for the CLI.
//!
//! Supports `--flag value` pairs and bare positionals, with typed accessors
//! that produce uniform error messages. Deliberately minimal — the CLI has
//! four subcommands and a dozen flags, which does not justify a parser
//! dependency in an otherwise lean workspace.

use std::collections::HashMap;

use hybridmem_types::{Error, Result};

/// Parsed arguments: positionals in order plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    options: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when a `--flag` has no value.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self> {
        let mut args = Self::default();
        let mut iter = raw.into_iter();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                let value = iter.next().ok_or_else(|| {
                    Error::invalid_input(format!("flag --{name} requires a value"))
                })?;
                args.options.insert(name.to_owned(), value);
            } else {
                args.positionals.push(token);
            }
        }
        Ok(args)
    }

    /// The `index`-th positional argument, if present.
    #[must_use]
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals.get(index).map(String::as_str)
    }

    /// All positionals from `index` on (for variadic file lists).
    #[must_use]
    pub fn positionals_from(&self, index: usize) -> &[String] {
        self.positionals.get(index..).unwrap_or(&[])
    }

    /// A string option.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A string option with a default.
    #[must_use]
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] naming the missing flag.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| Error::invalid_input(format!("missing required flag --{name}")))
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when the value does not parse.
    pub fn get_parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.get(name) {
            None => Ok(default),
            Some(text) => text.parse().map_err(|_| {
                Error::invalid_input(format!("flag --{name} expects a number, got {text:?}"))
            }),
        }
    }

    /// Names of all provided options (for unknown-flag validation).
    pub fn option_names(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }

    /// Validates that every provided option is in `allowed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] naming the first unknown flag.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<()> {
        for name in self.option_names() {
            if !allowed.contains(&name) {
                return Err(Error::invalid_input(format!(
                    "unknown flag --{name}; expected one of: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| (*s).to_owned())).unwrap()
    }

    #[test]
    fn positionals_and_options_mix() {
        let args = parse(&[
            "simulate",
            "--policy",
            "two-lru",
            "trace.bin",
            "--seed",
            "7",
        ]);
        assert_eq!(args.positional(0), Some("simulate"));
        assert_eq!(args.positional(1), Some("trace.bin"));
        assert_eq!(args.positional(2), None);
        assert_eq!(args.positionals_from(1), ["trace.bin"]);
        assert!(args.positionals_from(5).is_empty());
        assert_eq!(args.get("policy"), Some("two-lru"));
        assert_eq!(args.get_or("missing", "x"), "x");
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(["--cap".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("--cap"));
    }

    #[test]
    fn require_and_parse() {
        let args = parse(&["--cap", "100"]);
        assert_eq!(args.require("cap").unwrap(), "100");
        assert!(args.require("seed").is_err());
        assert_eq!(args.get_parsed_or("cap", 0u64).unwrap(), 100);
        assert_eq!(args.get_parsed_or("seed", 42u64).unwrap(), 42);
        let bad = parse(&["--cap", "ten"]);
        assert!(bad.get_parsed_or("cap", 0u64).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let args = parse(&["--cap", "1", "--bogus", "2"]);
        assert!(args.reject_unknown(&["cap"]).is_err());
        assert!(args.reject_unknown(&["cap", "bogus"]).is_ok());
    }
}
