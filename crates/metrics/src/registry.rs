//! The metric registry: named counters, gauges, and histograms.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A collection of named metrics owned by whoever is measuring.
///
/// Names are `&'static str` so instrumentation sites pay no allocation
/// and the metric namespace is enumerable from the source. Storage is
/// `BTreeMap`, so iteration and [`MetricsRegistry::snapshot`] order
/// depend only on the names themselves.
///
/// Reading a metric that was never written returns the zero value
/// (0 for counters, 0.0 for gauges, empty histogram snapshot) rather
/// than an error: absence and zero are indistinguishable by design,
/// which keeps call sites branch-free.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    /// Counters saturate at `u64::MAX` rather than wrapping.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        let counter = self.counters.entry(name).or_insert(0);
        *counter = counter.saturating_add(delta);
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of the named counter (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value`, replacing any previous level.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current value of the named gauge (0.0 if never written).
    #[must_use]
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Records `value` into the named histogram, creating it if absent.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms
            .entry(name)
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    /// The named histogram, if any sample has been observed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when no metric has ever been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializable export of every metric in name order.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&name, &value)| (name.to_owned(), value))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&name, &value)| (name.to_owned(), value))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&name, histogram)| (name.to_owned(), histogram.snapshot()))
                .collect(),
        }
    }
}

/// Serializable export of a [`MetricsRegistry`].
///
/// Snapshots from independent measurements (e.g. per-cell registries in
/// the experiment matrix) can be combined with
/// [`MetricsSnapshot::absorb`]; because every map is a `BTreeMap`, the
/// merged result — and its JSON — is independent of absorption order
/// for counters and histograms.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone event tallies by name.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time levels by name.
    pub gauges: BTreeMap<String, f64>,
    /// Log2-bucketed distributions by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: counters and histogram buckets are
    /// summed (saturating at `u64::MAX`, never wrapping); gauges are
    /// overwritten by `other` (last writer wins, so absorb in a
    /// meaningful order when gauge levels matter).
    pub fn absorb(&mut self, other: &Self) {
        for (name, &value) in &other.counters {
            let counter = self.counters.entry(name.clone()).or_insert(0);
            *counter = counter.saturating_add(value);
        }
        for (name, &value) in &other.gauges {
            self.gauges.insert(name.clone(), value);
        }
        for (name, snapshot) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(existing) => {
                    let mut merged = existing.to_histogram();
                    merged.merge(&snapshot.to_histogram());
                    *existing = merged.snapshot();
                }
                None => {
                    self.histograms.insert(name.clone(), snapshot.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut registry = MetricsRegistry::new();
        assert_eq!(registry.counter("sim.faults"), 0);
        registry.inc("sim.faults");
        registry.add("sim.faults", 9);
        assert_eq!(registry.counter("sim.faults"), 10);
        assert!(!registry.is_empty());
    }

    #[test]
    fn gauges_overwrite() {
        let mut registry = MetricsRegistry::new();
        assert!((registry.gauge("sim.dram_occupancy") - 0.0).abs() < f64::EPSILON);
        registry.set_gauge("sim.dram_occupancy", 7.0);
        registry.set_gauge("sim.dram_occupancy", 3.5);
        assert!((registry.gauge("sim.dram_occupancy") - 3.5).abs() < f64::EPSILON);
    }

    #[test]
    fn histograms_record_samples() {
        let mut registry = MetricsRegistry::new();
        assert!(registry.histogram("scheduler.cell_micros").is_none());
        registry.observe("scheduler.cell_micros", 100);
        registry.observe("scheduler.cell_micros", 300);
        let histogram = registry.histogram("scheduler.cell_micros").unwrap();
        assert_eq!(histogram.count(), 2);
        assert_eq!(histogram.sum(), 400);
    }

    #[test]
    fn snapshot_is_name_ordered_json() {
        let mut registry = MetricsRegistry::new();
        registry.inc("z.last");
        registry.inc("a.first");
        registry.set_gauge("m.middle", 1.0);
        let json = serde_json::to_string(&registry.snapshot()).unwrap();
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "counters must serialize in name order");
        let parsed: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, registry.snapshot());
    }

    #[test]
    fn absorb_sums_counters_and_histograms_and_overwrites_gauges() {
        let mut left = MetricsRegistry::new();
        left.add("sim.faults", 5);
        left.set_gauge("sim.dram_occupancy", 1.0);
        left.observe("scheduler.cell_micros", 8);

        let mut right = MetricsRegistry::new();
        right.add("sim.faults", 7);
        right.add("sim.hits", 2);
        right.set_gauge("sim.dram_occupancy", 9.0);
        right.observe("scheduler.cell_micros", 32);

        let mut merged = left.snapshot();
        merged.absorb(&right.snapshot());
        assert_eq!(merged.counters["sim.faults"], 12);
        assert_eq!(merged.counters["sim.hits"], 2);
        assert!((merged.gauges["sim.dram_occupancy"] - 9.0).abs() < f64::EPSILON);
        let histogram = &merged.histograms["scheduler.cell_micros"];
        assert_eq!(histogram.count, 2);
        assert_eq!(histogram.sum, 40);
    }

    #[test]
    fn absorb_order_does_not_change_counter_or_histogram_totals() {
        let mut a = MetricsRegistry::new();
        a.add("sim.faults", 3);
        a.observe("h", 4);
        let mut b = MetricsRegistry::new();
        b.add("sim.faults", 11);
        b.observe("h", 700);

        let mut ab = a.snapshot();
        ab.absorb(&b.snapshot());
        let mut ba = b.snapshot();
        ba.absorb(&a.snapshot());
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.histograms, ba.histograms);
    }

    /// Deterministic pseudo-random registry for property-style tests: a
    /// tiny LCG drives which metrics get written and with what values.
    fn arbitrary_registry(seed: u64) -> MetricsRegistry {
        const NAMES: [&str; 5] = ["a.one", "b.two", "c.three", "d.four", "e.five"];
        let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        let mut registry = MetricsRegistry::new();
        for _ in 0..16 {
            let name = NAMES[(next() % NAMES.len() as u64) as usize];
            match next() % 3 {
                0 => registry.add(name, next()),
                1 => registry.observe(name, next() % 100_000),
                _ => registry.set_gauge(name, (next() % 1000) as f64),
            }
        }
        registry
    }

    #[test]
    fn absorb_is_commutative_for_counters_and_histograms() {
        for seed in 0..24u64 {
            let a = arbitrary_registry(seed).snapshot();
            let b = arbitrary_registry(seed + 1000).snapshot();
            let mut ab = a.clone();
            ab.absorb(&b);
            let mut ba = b.clone();
            ba.absorb(&a);
            assert_eq!(ab.counters, ba.counters, "seed {seed}");
            assert_eq!(ab.histograms, ba.histograms, "seed {seed}");
        }
    }

    #[test]
    fn absorb_is_associative() {
        for seed in 0..24u64 {
            let a = arbitrary_registry(seed).snapshot();
            let b = arbitrary_registry(seed + 1000).snapshot();
            let c = arbitrary_registry(seed + 2000).snapshot();
            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.absorb(&b);
            left.absorb(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.absorb(&c);
            let mut right = a.clone();
            right.absorb(&bc);
            // Gauges are last-writer-wins and `c` writes last on both
            // sides, so full equality holds — gauges included.
            assert_eq!(left, right, "seed {seed}");
        }
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut registry = MetricsRegistry::new();
        registry.add("near.max", u64::MAX - 1);
        registry.add("near.max", 5);
        assert_eq!(registry.counter("near.max"), u64::MAX);

        let mut snapshot = registry.snapshot();
        snapshot.absorb(&registry.snapshot());
        assert_eq!(snapshot.counters["near.max"], u64::MAX);

        let mut histogram = Histogram::new();
        histogram.observe(u64::MAX);
        histogram.observe(u64::MAX);
        assert_eq!(histogram.sum(), u64::MAX, "sample sums saturate");
        let mut doubled = histogram.clone();
        doubled.merge(&histogram);
        assert_eq!(doubled.sum(), u64::MAX);
        assert_eq!(doubled.count(), 4);
    }

    #[test]
    fn snapshot_absorbed_into_empty_round_trips() {
        for seed in 0..8u64 {
            let original = arbitrary_registry(seed).snapshot();
            let mut empty = MetricsSnapshot::default();
            empty.absorb(&original);
            assert_eq!(empty, original, "seed {seed}");
            let json = serde_json::to_string(&empty).unwrap();
            let parsed: MetricsSnapshot = serde_json::from_str(&json).unwrap();
            assert_eq!(parsed, original, "seed {seed}");
        }
    }
}
