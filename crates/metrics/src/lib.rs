//! Deterministic metrics primitives for the hybridmem observability layer.
//!
//! Every instrumented subsystem — the simulator's windowed event collector,
//! the [`TraceCache`](../hybridmem_core/struct.TraceCache.html), the
//! parallel matrix scheduler, and the two-LRU policy's counter windows —
//! reports through the same three primitives, keyed by `&'static str`
//! names:
//!
//! * **counters** — monotone `u64` event tallies (`sim.faults`,
//!   `trace_cache.hits`, …);
//! * **gauges** — point-in-time `f64` levels (`sim.dram_occupancy`, …);
//! * **histograms** — log2-bucketed `u64` distributions
//!   ([`Histogram`]; `scheduler.cell_micros`, …).
//!
//! The crate is deliberately zero-dependency beyond `serde` and fully
//! deterministic: all storage is `BTreeMap`-backed, so iteration and
//! serialization order depend only on the metric names, never on insertion
//! history or hasher state — the property `cargo xtask lint` enforces
//! across the simulation crates (this one included). There is no global
//! registry, no wall-clock, and no interior mutability: a
//! [`MetricsRegistry`] is a plain value owned by whoever is measuring, and
//! a [`MetricsSnapshot`] is its serializable export.
//!
//! The one deliberate exception is the [`span`] module — a wall-clock
//! [`SpanProfiler`] for harness phases (scheduling, trace
//! materialization, warmup) with Chrome trace-event export for Perfetto.
//! Its output sits outside the determinism boundary: it never feeds back
//! into simulation results, and every `Instant::now` call site carries an
//! `xtask:allow(timing)` annotation audited by `cargo xtask lint`.
//! The [`process`] module (peak-RSS introspection for the throughput
//! harness) sits outside that boundary for the same reason.
//!
//! # Examples
//!
//! ```
//! use hybridmem_metrics::MetricsRegistry;
//!
//! let mut registry = MetricsRegistry::new();
//! registry.add("sim.faults", 3);
//! registry.inc("sim.faults");
//! registry.set_gauge("sim.dram_occupancy", 12.0);
//! registry.observe("sim.window.faults", 3);
//!
//! assert_eq!(registry.counter("sim.faults"), 4);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["sim.faults"], 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod histogram;
pub mod process;
mod registry;
pub mod span;

pub use histogram::{BucketCount, Histogram, HistogramSnapshot};
pub use process::peak_rss_bytes;
pub use registry::{MetricsRegistry, MetricsSnapshot};
pub use span::{SpanGuard, SpanProfiler, SpanRecord};
