//! A fixed-footprint, deterministic histogram over `u64` samples.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for zero plus one per power of two (`2^0..2^63`).
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `k` (for `k ≥ 1`) holds samples in
/// `[2^(k-1), 2^k)`. The layout is fixed, so observing samples in any
/// order produces the same histogram — there is no rebalancing and no
/// allocation after construction, which keeps [`Histogram::observe`]
/// cheap enough for simulation hot paths.
///
/// # Examples
///
/// ```
/// use hybridmem_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [0, 1, 5, 5, 900] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 911);
/// assert_eq!(h.min(), Some(0));
/// assert_eq!(h.max(), Some(900));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Bucket index of a sample: 0 for zero, `floor(log2(value)) + 1`
    /// otherwise (always < `BUCKETS`).
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            // xtask:allow(lossy-cast, why=64 - leading_zeros is at most 64, within usize on all targets)
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Records one sample. Counts and sums saturate at `u64::MAX`.
    pub fn observe(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = &mut self.buckets[Self::bucket_index(value)];
        *bucket = bucket.saturating_add(1);
    }

    /// Number of samples observed.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub const fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub const fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Arithmetic mean of the samples; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one, bucket by bucket. Counts
    /// and sums saturate at `u64::MAX`.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// Deterministic percentile estimate, exact within bucket bounds.
    ///
    /// Returns the inclusive upper bound of the bucket holding the
    /// rank-`⌈count·pct/100⌉` sample, clamped to the exact observed
    /// `[min, max]` range — so `percentile(100)` is the exact maximum
    /// and a single-bucket histogram reports its exact extremes. Pure
    /// integer arithmetic over the fixed bucket layout: the same
    /// samples produce the same estimate in any observation or merge
    /// order. `pct` is clamped to `1..=100`; `None` when empty.
    #[must_use]
    pub fn percentile(&self, pct: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let pct = pct.clamp(1, 100);
        let rank = (u128::from(self.count) * u128::from(pct)).div_ceil(100);
        let rank = u64::try_from(rank).unwrap_or(u64::MAX).max(1);
        let mut seen: u64 = 0;
        for (index, &count) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(count);
            if seen >= rank {
                return Some(Self::bucket_upper(index).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// A serializable export: summary statistics, deterministic
    /// p50/p95/p99 estimates, plus the non-empty buckets in ascending
    /// upper-bound order.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| BucketCount {
                upper: Self::bucket_upper(index),
                count,
            })
            .collect();
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.percentile(50).unwrap_or(0),
            p95: self.percentile(95).unwrap_or(0),
            p99: self.percentile(99).unwrap_or(0),
            buckets,
        }
    }

    /// Inclusive upper bound of a bucket: 0 for the zero bucket,
    /// `2^index - 1` otherwise (saturating at `u64::MAX`).
    fn bucket_upper(index: usize) -> u64 {
        match index {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << index) - 1,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket's value range.
    pub upper: u64,
    /// Samples that fell in the bucket.
    pub count: u64,
}

/// Serializable export of a [`Histogram`]: kept as an ordered bucket list
/// (not a map) so serialization is layout-stable and compact.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Deterministic median estimate ([`Histogram::percentile`]; 0 when
    /// empty). Defaults to 0 when absent, so pre-quantile snapshots
    /// still deserialize.
    #[serde(default)]
    pub p50: u64,
    /// Deterministic 95th-percentile estimate (0 when empty).
    #[serde(default)]
    pub p95: u64,
    /// Deterministic 99th-percentile estimate (0 when empty).
    #[serde(default)]
    pub p99: u64,
    /// Non-empty buckets, ascending by `upper`.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Rebuilds a mergeable [`Histogram`] from the snapshot.
    #[must_use]
    pub fn to_histogram(&self) -> Histogram {
        let mut histogram = Histogram {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { u64::MAX } else { self.min },
            max: self.max,
            buckets: [0; BUCKETS],
        };
        for bucket in &self.buckets {
            histogram.buckets[Histogram::bucket_index(bucket.upper)] += bucket.count;
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn observe_tracks_summary_statistics() {
        let mut h = Histogram::new();
        for v in [7, 0, 100, 3] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 27.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_roundtrips_through_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 900, 900] {
            h.observe(v);
        }
        let snapshot = h.snapshot();
        assert_eq!(snapshot.count, 6);
        // Buckets: zero, [1,1], [2,3]×2, [512,1023]×2.
        assert_eq!(snapshot.buckets.len(), 4);
        assert_eq!(snapshot.buckets[2], BucketCount { upper: 3, count: 2 });
        let rebuilt = snapshot.to_histogram();
        assert_eq!(rebuilt.count(), 6);
        assert_eq!(rebuilt.snapshot().buckets.len(), 4);
    }

    #[test]
    fn merge_is_observation_order_independent() {
        let mut all = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, v) in [5u64, 0, 19, 3, 3, 77, 1024].iter().enumerate() {
            all.observe(*v);
            if i % 2 == 0 {
                left.observe(*v);
            } else {
                right.observe(*v);
            }
        }
        let mut merged = right.clone();
        merged.merge(&left);
        assert_eq!(merged, all);
        merged.merge(&Histogram::new());
        assert_eq!(merged, all, "merging an empty histogram is a no-op");
    }

    #[test]
    fn percentiles_are_exact_within_bucket_bounds() {
        let mut h = Histogram::new();
        // 100 samples: 50× value 3 (bucket [2,3]), 45× value 10
        // (bucket [8,15]), 5× value 1000 (bucket [512,1023]).
        for _ in 0..50 {
            h.observe(3);
        }
        for _ in 0..45 {
            h.observe(10);
        }
        for _ in 0..5 {
            h.observe(1000);
        }
        assert_eq!(h.percentile(50), Some(3), "rank 50 lands in [2,3]");
        assert_eq!(h.percentile(95), Some(15), "rank 95 lands in [8,15]");
        assert_eq!(
            h.percentile(99),
            Some(1000),
            "rank 99 lands in [512,1023], clamped to the exact max"
        );
        assert_eq!(h.percentile(100), Some(1000), "p100 is the exact max");
        assert_eq!(h.percentile(1), Some(3), "low ranks clamp to the exact min");
        assert_eq!(Histogram::new().percentile(50), None);

        let snapshot = h.snapshot();
        assert_eq!((snapshot.p50, snapshot.p95, snapshot.p99), (3, 15, 1000));
        let rebuilt = snapshot.to_histogram().snapshot();
        assert_eq!(
            (rebuilt.p50, rebuilt.p95, rebuilt.p99),
            (3, 15, 1000),
            "quantiles survive the snapshot round-trip"
        );
    }

    #[test]
    fn percentiles_are_merge_order_independent() {
        let samples = [5u64, 0, 19, 3, 3, 77, 1024, 77, 12];
        let mut all = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, v) in samples.iter().enumerate() {
            all.observe(*v);
            if i % 2 == 0 {
                left.observe(*v);
            } else {
                right.observe(*v);
            }
        }
        let mut merged = right.clone();
        merged.merge(&left);
        for pct in [1, 25, 50, 75, 95, 99, 100] {
            assert_eq!(merged.percentile(pct), all.percentile(pct), "p{pct}");
        }
    }

    #[test]
    fn pre_quantile_snapshots_still_deserialize() {
        let legacy = r#"{"count":2,"sum":13,"min":4,"max":9,"buckets":[{"upper":7,"count":1},{"upper":15,"count":1}]}"#;
        let parsed: HistogramSnapshot = serde_json::from_str(legacy).unwrap();
        assert_eq!((parsed.p50, parsed.p95, parsed.p99), (0, 0, 0));
        let recomputed = parsed.to_histogram().snapshot();
        assert_eq!((recomputed.p50, recomputed.p95), (7, 9));
    }

    #[test]
    fn snapshot_serializes_deterministically() {
        let mut h = Histogram::new();
        h.observe(4);
        h.observe(9);
        let a = serde_json::to_string(&h.snapshot()).unwrap();
        let mut again = Histogram::new();
        again.observe(4);
        again.observe(9);
        assert_eq!(a, serde_json::to_string(&again.snapshot()).unwrap());
        let parsed: HistogramSnapshot = serde_json::from_str(&a).unwrap();
        assert_eq!(parsed, h.snapshot());
    }
}
