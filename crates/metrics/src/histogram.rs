//! A fixed-footprint, deterministic histogram over `u64` samples.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for zero plus one per power of two (`2^0..2^63`).
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `k` (for `k ≥ 1`) holds samples in
/// `[2^(k-1), 2^k)`. The layout is fixed, so observing samples in any
/// order produces the same histogram — there is no rebalancing and no
/// allocation after construction, which keeps [`Histogram::observe`]
/// cheap enough for simulation hot paths.
///
/// # Examples
///
/// ```
/// use hybridmem_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [0, 1, 5, 5, 900] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 911);
/// assert_eq!(h.min(), Some(0));
/// assert_eq!(h.max(), Some(900));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Bucket index of a sample: 0 for zero, `floor(log2(value)) + 1`
    /// otherwise (always < `BUCKETS`).
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            // xtask:allow(lossy-cast, why=64 - leading_zeros is at most 64, within usize on all targets)
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Records one sample. Counts and sums saturate at `u64::MAX`.
    pub fn observe(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = &mut self.buckets[Self::bucket_index(value)];
        *bucket = bucket.saturating_add(1);
    }

    /// Number of samples observed.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    #[must_use]
    pub const fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample, or `None` when empty.
    #[must_use]
    pub const fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Arithmetic mean of the samples; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one, bucket by bucket. Counts
    /// and sums saturate at `u64::MAX`.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// A serializable export: summary statistics plus the non-empty
    /// buckets in ascending upper-bound order.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| BucketCount {
                upper: Self::bucket_upper(index),
                count,
            })
            .collect();
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            buckets,
        }
    }

    /// Inclusive upper bound of a bucket: 0 for the zero bucket,
    /// `2^index - 1` otherwise (saturating at `u64::MAX`).
    fn bucket_upper(index: usize) -> u64 {
        match index {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << index) - 1,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket's value range.
    pub upper: u64,
    /// Samples that fell in the bucket.
    pub count: u64,
}

/// Serializable export of a [`Histogram`]: kept as an ordered bucket list
/// (not a map) so serialization is layout-stable and compact.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by `upper`.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Rebuilds a mergeable [`Histogram`] from the snapshot.
    #[must_use]
    pub fn to_histogram(&self) -> Histogram {
        let mut histogram = Histogram {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { u64::MAX } else { self.min },
            max: self.max,
            buckets: [0; BUCKETS],
        };
        for bucket in &self.buckets {
            histogram.buckets[Histogram::bucket_index(bucket.upper)] += bucket.count;
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn observe_tracks_summary_statistics() {
        let mut h = Histogram::new();
        for v in [7, 0, 100, 3] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 27.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_roundtrips_through_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 900, 900] {
            h.observe(v);
        }
        let snapshot = h.snapshot();
        assert_eq!(snapshot.count, 6);
        // Buckets: zero, [1,1], [2,3]×2, [512,1023]×2.
        assert_eq!(snapshot.buckets.len(), 4);
        assert_eq!(snapshot.buckets[2], BucketCount { upper: 3, count: 2 });
        let rebuilt = snapshot.to_histogram();
        assert_eq!(rebuilt.count(), 6);
        assert_eq!(rebuilt.snapshot().buckets.len(), 4);
    }

    #[test]
    fn merge_is_observation_order_independent() {
        let mut all = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, v) in [5u64, 0, 19, 3, 3, 77, 1024].iter().enumerate() {
            all.observe(*v);
            if i % 2 == 0 {
                left.observe(*v);
            } else {
                right.observe(*v);
            }
        }
        let mut merged = right.clone();
        merged.merge(&left);
        assert_eq!(merged, all);
        merged.merge(&Histogram::new());
        assert_eq!(merged, all, "merging an empty histogram is a no-op");
    }

    #[test]
    fn snapshot_serializes_deterministically() {
        let mut h = Histogram::new();
        h.observe(4);
        h.observe(9);
        let a = serde_json::to_string(&h.snapshot()).unwrap();
        let mut again = Histogram::new();
        again.observe(4);
        again.observe(9);
        assert_eq!(a, serde_json::to_string(&again.snapshot()).unwrap());
        let parsed: HistogramSnapshot = serde_json::from_str(&a).unwrap();
        assert_eq!(parsed, h.snapshot());
    }
}
