//! Process-level resource introspection for benchmark harnesses.
//!
//! Like the [`span`](crate::span) profiler, everything here is a
//! measurement artefact: values vary run to run and machine to machine,
//! never feed back into simulation results, and must not be compared for
//! determinism.

/// Peak resident-set size of the current process in bytes, or `None` when
/// the platform does not expose it.
///
/// On Linux this is `VmHWM` ("high-water mark") from `/proc/self/status`,
/// the kernel's running maximum of the process's resident set — exactly
/// the "peak RSS" column the throughput harness reports. Other platforms
/// return `None` and harnesses record the value as absent rather than
/// guessing.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extracts `VmHWM` (reported by the kernel in kibibytes) from the
/// contents of `/proc/self/status`.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .strip_suffix("kB")?
        .trim()
        .parse()
        .ok()?;
    Some(kib.saturating_mul(1024))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_realistic_status_excerpt() {
        let status =
            "Name:\tstress\nVmPeak:\t  123456 kB\nVmHWM:\t   98304 kB\nVmRSS:\t   65536 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(98_304 * 1024));
    }

    #[test]
    fn missing_or_malformed_field_is_none() {
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("VmRSS:\t 1 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t 12 MB\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn reports_a_positive_peak_on_linux() {
        let peak = peak_rss_bytes().expect("/proc/self/status has VmHWM");
        assert!(peak > 0);
    }
}
