//! A zero-dependency span profiler with Chrome trace-event export.
//!
//! The rest of this crate is wall-clock-free by design; this module is
//! the **one deliberate exception**, and it sits strictly outside the
//! determinism boundary: span timings never feed back into simulation
//! results, metrics JSONL, or the page ledger — they only describe how
//! long the *harness* (matrix scheduling, trace materialization, warmup,
//! measured runs, window flushes) took on this particular machine. Every
//! `Instant::now` call site below carries an `xtask:allow(timing)`
//! annotation so `cargo xtask lint` keeps rejecting wall-clock reads
//! anywhere else in the simulation crates.
//!
//! Spans accumulate in a mutex-guarded vector (cheap enough for the
//! coarse, per-phase granularity used here — this is not a sampling
//! profiler) and serialize with [`write_chrome_trace`] to the Chrome
//! trace-event JSON format, which loads directly in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
//!
//! # Examples
//!
//! ```
//! use hybridmem_metrics::SpanProfiler;
//!
//! let profiler = SpanProfiler::new();
//! {
//!     let _span = profiler.span("scheduler", "cell bodytrack/two-lru", 1);
//!     // ... timed work ...
//! }
//! let mut json = Vec::new();
//! profiler.write_chrome_trace(&mut json).unwrap();
//! assert!(String::from_utf8(json).unwrap().contains("\"traceEvents\""));
//! ```

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// One completed span, in microseconds since the profiler's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name as shown on the timeline (e.g. `cell bodytrack/two-lru`).
    pub name: String,
    /// Category for Perfetto filtering (e.g. `scheduler`, `simulate`).
    pub cat: &'static str,
    /// Logical thread lane: 0 = coordinator, `n` = worker *n*.
    pub tid: u64,
    /// Start, µs since the profiler was created.
    pub ts_micros: u64,
    /// Duration in µs.
    pub dur_micros: u64,
}

/// A wall-clock span collector for harness phases.
///
/// Shared by reference across worker threads; [`SpanProfiler::span`]
/// returns an RAII guard that records on drop. When no profiler is
/// requested (`--profile-out` absent) none of this exists — call sites
/// hold an `Option<&SpanProfiler>` and skip the lock entirely.
#[derive(Debug)]
pub struct SpanProfiler {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl SpanProfiler {
    /// Creates a profiler whose epoch (trace time zero) is *now*.
    #[must_use]
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(), // xtask:allow(timing)
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Starts a span on logical lane `tid`; it records itself when the
    /// returned guard drops.
    #[must_use]
    pub fn span(&self, cat: &'static str, name: impl Into<String>, tid: u64) -> SpanGuard<'_> {
        SpanGuard {
            profiler: self,
            cat,
            name: name.into(),
            tid,
            start: Instant::now(), // xtask:allow(timing)
        }
    }

    /// Records an already-measured span directly.
    pub fn record(&self, record: SpanRecord) {
        self.lock().push(record);
    }

    /// Completed spans so far, in recording order.
    #[must_use]
    pub fn records(&self) -> Vec<SpanRecord> {
        self.lock().clone()
    }

    /// Serializes every span recorded so far as Chrome trace-event JSON
    /// (`{"displayTimeUnit":"ms","traceEvents":[...]}`): one complete
    /// (`"ph":"X"`) event per span plus one thread-name metadata
    /// (`"ph":"M"`) event per lane. The output loads in Perfetto and
    /// `chrome://tracing`; it reflects wall-clock and is **never**
    /// compared for determinism.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_chrome_trace<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        let spans = self.records();
        writer.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        let mut first = true;
        for span in &spans {
            if !first {
                writer.write_all(b",")?;
            }
            first = false;
            write!(
                writer,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                escape_json(&span.name),
                escape_json(span.cat),
                span.ts_micros,
                span.dur_micros,
                span.tid
            )?;
        }
        let mut lanes: Vec<u64> = spans.iter().map(|s| s.tid).collect();
        lanes.sort_unstable();
        lanes.dedup();
        for tid in lanes {
            if !first {
                writer.write_all(b",")?;
            }
            first = false;
            let lane = if tid == 0 {
                "coordinator".to_owned()
            } else {
                format!("worker-{tid}")
            };
            write!(
                writer,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{lane}\"}}}}"
            )?;
        }
        writer.write_all(b"]}")?;
        Ok(())
    }

    /// The span vector, recovered even if a panicking thread poisoned
    /// the mutex — profiling must never abort an experiment.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<SpanRecord>> {
        self.spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Default for SpanProfiler {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard returned by [`SpanProfiler::span`]; records the span when
/// dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    profiler: &'a SpanProfiler,
    cat: &'static str,
    name: String,
    tid: u64,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = Instant::now(); // xtask:allow(timing)
        let ts = self
            .start
            .duration_since(self.profiler.epoch)
            .as_micros()
            // xtask:allow(lossy-cast, why=clamped to u64::MAX on the previous line)
            .min(u128::from(u64::MAX)) as u64;
        let dur = end
            .duration_since(self.start)
            .as_micros()
            // xtask:allow(lossy-cast, why=clamped to u64::MAX on the previous line)
            .min(u128::from(u64::MAX)) as u64;
        self.profiler.record(SpanRecord {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            tid: self.tid,
            ts_micros: ts,
            dur_micros: dur,
        });
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// span names are plain ASCII identifiers, but the writer must never
/// emit invalid JSON regardless.
fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_order() {
        let profiler = SpanProfiler::new();
        {
            let _outer = profiler.span("phase", "outer", 0);
            let _inner = profiler.span("phase", "inner", 1);
        }
        let records = profiler.records();
        assert_eq!(records.len(), 2);
        // Guards drop in reverse declaration order.
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[1].name, "outer");
        assert_eq!(records[0].tid, 1);
        assert!(records[1].dur_micros >= records[0].dur_micros);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_and_metadata_events() {
        let profiler = SpanProfiler::new();
        drop(profiler.span("scheduler", "cell \"a\"/two-lru", 2));
        profiler.record(SpanRecord {
            name: "warmup".to_owned(),
            cat: "simulate",
            tid: 0,
            ts_micros: 10,
            dur_micros: 25,
        });
        let mut bytes = Vec::new();
        profiler.write_chrome_trace(&mut bytes).unwrap();
        let parsed: serde_json::Value = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(parsed["displayTimeUnit"], "ms");
        let events = parsed["traceEvents"].as_array().unwrap();
        // 2 spans + 2 thread-name metadata events (lanes 0 and 2).
        assert_eq!(events.len(), 4);
        let complete: Vec<&serde_json::Value> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(complete.len(), 2);
        for event in &complete {
            assert!(event["ts"].is_u64());
            assert!(event["dur"].is_u64());
            assert_eq!(event["pid"], 1);
        }
        assert!(complete.iter().any(|e| e["name"] == "cell \"a\"/two-lru"));
        let meta: Vec<&serde_json::Value> = events.iter().filter(|e| e["ph"] == "M").collect();
        assert_eq!(meta.len(), 2);
        assert!(meta
            .iter()
            .any(|e| e["args"]["name"] == "coordinator" && e["tid"] == 0));
        assert!(meta
            .iter()
            .any(|e| e["args"]["name"] == "worker-2" && e["tid"] == 2));
    }

    #[test]
    fn empty_profiler_writes_an_empty_event_array() {
        let profiler = SpanProfiler::new();
        let mut bytes = Vec::new();
        profiler.write_chrome_trace(&mut bytes).unwrap();
        let parsed: serde_json::Value = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(parsed["traceEvents"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn escape_json_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\u000ab");
    }
}
