//! Microbenchmarks of the policy data structures and per-access policy
//! costs — the "OS overhead" side of the paper's scheme (the paper argues
//! the bookkeeping is negligible: ~0.04% space and O(1)-ish time per hit).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hybridmem_policy::{
    ClockDwfPolicy, ClockRing, HybridPolicy, RankedLru, SingleTierPolicy, TwoLruConfig,
    TwoLruPolicy,
};
use hybridmem_types::{AccessKind, PageAccess, PageCount, PageId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ranked_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranked_lru");
    for &size in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("touch", size), &size, |b, &size| {
            let mut lru = RankedLru::with_capacity(size);
            for i in 0..size as u64 {
                lru.insert(PageId::new(i));
            }
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let page = PageId::new(rng.gen_range(0..size as u64));
                black_box(lru.touch(page));
            });
        });
        group.bench_with_input(BenchmarkId::new("rank", size), &size, |b, &size| {
            let mut lru = RankedLru::with_capacity(size);
            for i in 0..size as u64 {
                lru.insert(PageId::new(i));
            }
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let page = PageId::new(rng.gen_range(0..size as u64));
                black_box(lru.rank(page));
            });
        });
        group.bench_with_input(BenchmarkId::new("evict_insert", size), &size, |b, &size| {
            let mut lru = RankedLru::with_capacity(size);
            for i in 0..size as u64 {
                lru.insert(PageId::new(i));
            }
            let mut next = size as u64;
            b.iter(|| {
                lru.evict_lru();
                lru.insert(PageId::new(next));
                next += 1;
            });
        });
    }
    group.finish();
}

fn clock_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("clock_ring");
    for &size in &[1_000usize, 100_000] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("touch", size), &size, |b, &size| {
            let mut ring: ClockRing<u32> = ClockRing::new(size);
            for i in 0..size as u64 {
                ring.insert(PageId::new(i), 0);
            }
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let page = PageId::new(rng.gen_range(0..size as u64));
                black_box(ring.touch(page));
            });
        });
        group.bench_with_input(BenchmarkId::new("evict_insert", size), &size, |b, &size| {
            let mut ring: ClockRing<u32> = ClockRing::new(size);
            for i in 0..size as u64 {
                ring.insert(PageId::new(i), 0);
            }
            let mut next = size as u64;
            b.iter(|| {
                let _ = ring.evict_with(|_| false);
                ring.insert(PageId::new(next), 0);
                next += 1;
            });
        });
    }
    group.finish();
}

/// A reusable synthetic access stream: hot/cold mix over `pages` pages.
fn access_stream(pages: u64, len: usize, seed: u64) -> Vec<PageAccess> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let page = if rng.gen::<f64>() < 0.8 {
                PageId::new(rng.gen_range(0..pages / 10))
            } else {
                PageId::new(rng.gen_range(0..pages))
            };
            let kind = if rng.gen::<f64>() < 0.3 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            PageAccess::new(page, kind)
        })
        .collect()
}

fn policy_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_on_access");
    let pages = 20_000u64;
    let dram = PageCount::new(1_500);
    let nvm = PageCount::new(13_500);
    let stream = access_stream(pages, 4_096, 7);

    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("two_lru", |b| {
        let config = TwoLruConfig::new(dram, nvm).expect("valid config");
        let mut policy = TwoLruPolicy::new(config);
        b.iter(|| {
            for &access in &stream {
                black_box(policy.on_access(access));
            }
        });
    });
    group.bench_function("clock_dwf", |b| {
        let mut policy = ClockDwfPolicy::new(dram, nvm).expect("valid config");
        b.iter(|| {
            for &access in &stream {
                black_box(policy.on_access(access));
            }
        });
    });
    group.bench_function("dram_only", |b| {
        let mut policy = SingleTierPolicy::dram_only(PageCount::new(15_000)).expect("valid");
        b.iter(|| {
            for &access in &stream {
                black_box(policy.on_access(access));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, ranked_lru, clock_ring, policy_access);
criterion_main!(benches);
