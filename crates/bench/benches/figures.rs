//! Benchmark of the figure-regeneration path itself: one full
//! `(workload × 4 policies)` evaluation cell at reduced volume. This is the
//! unit of work behind every `exp_*` binary, so its cost bounds the
//! wall-clock of regenerating the whole paper.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hybridmem_core::{ExperimentConfig, PolicyKind};
use hybridmem_trace::parsec;

fn figure_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_cell");
    group.sample_size(10);
    let spec = parsec::spec("bodytrack").expect("builtin").capped(50_000);
    let config = ExperimentConfig::default();
    group.bench_function("bodytrack_4_policies_50k", |b| {
        b.iter(|| {
            let reports = config
                .compare(
                    &spec,
                    &[
                        PolicyKind::TwoLru,
                        PolicyKind::ClockDwf,
                        PolicyKind::DramOnly,
                        PolicyKind::NvmOnly,
                    ],
                )
                .expect("simulation succeeds");
            black_box(reports)
        });
    });
    group.finish();
}

criterion_group!(benches, figure_cell);
criterion_main!(benches);
