//! Benchmarks of the substrate pipeline: trace generation, cache-hierarchy
//! filtering, and the end-to-end simulator loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hybridmem_cachesim::{CacheHierarchy, CotsonConfig};
use hybridmem_core::HybridSimulator;
use hybridmem_policy::{TwoLruConfig, TwoLruPolicy};
use hybridmem_trace::{parsec, TraceGenerator};
use hybridmem_types::{PageAccess, PageCount};

const TRACE_LEN: u64 = 50_000;

fn trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(TRACE_LEN));
    for name in ["bodytrack", "canneal", "streamcluster"] {
        let spec = parsec::spec(name).expect("builtin").capped(TRACE_LEN);
        group.bench_function(name, |b| {
            b.iter(|| {
                for access in TraceGenerator::new(spec.clone(), 42) {
                    black_box(access);
                }
            });
        });
    }
    group.finish();
}

fn cache_filtering(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_filtering");
    group.throughput(Throughput::Elements(TRACE_LEN));
    let spec = parsec::spec("ferret").expect("builtin").capped(TRACE_LEN);
    let trace: Vec<_> = TraceGenerator::new(spec, 42).collect();
    group.bench_function("table_ii_hierarchy", |b| {
        b.iter(|| {
            let mut hierarchy =
                CacheHierarchy::new(CotsonConfig::date2016()).expect("valid config");
            for &access in &trace {
                black_box(hierarchy.access(access));
            }
        });
    });
    group.finish();
}

fn simulator_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(TRACE_LEN));
    let spec = parsec::spec("bodytrack")
        .expect("builtin")
        .capped(TRACE_LEN);
    let trace: Vec<PageAccess> = TraceGenerator::new(spec.clone(), 42)
        .map(PageAccess::from)
        .collect();
    let dram = PageCount::new((spec.working_set.value() * 3 / 40).max(1));
    let nvm = PageCount::new((spec.working_set.value() * 27 / 40).max(1));
    group.bench_function("two_lru_end_to_end", |b| {
        b.iter(|| {
            let config = TwoLruConfig::new(dram, nvm).expect("valid config");
            let mut sim =
                HybridSimulator::with_date2016_devices(Box::new(TwoLruPolicy::new(config)));
            for &access in &trace {
                sim.step(access);
            }
            black_box(sim.into_report("bench"))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    trace_generation,
    cache_filtering,
    simulator_end_to_end
);
criterion_main!(benches);
