//! Fig. 4b — physical NVM writes of CLOCK-DWF (left bars) and the proposed
//! scheme (right bars), split Migration / Page Fault / Read-Write Requests
//! and normalized to an NVM-only memory.

use hybridmem_bench::{announce_json, print_grouped_figure, report, StackedBar, SuiteOptions};
use hybridmem_core::PolicyKind;
use hybridmem_types::Result;

fn writes_bar(r: &hybridmem_core::SimulationReport, workload: &str, baseline: f64) -> StackedBar {
    #[allow(clippy::cast_precision_loss)]
    StackedBar {
        workload: workload.to_owned(),
        components: vec![
            (
                "migration".into(),
                r.nvm_writes.migrations as f64 / baseline,
            ),
            (
                "page_fault".into(),
                r.nvm_writes.page_faults as f64 / baseline,
            ),
            ("requests".into(), r.nvm_writes.requests as f64 / baseline),
        ],
    }
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[
        PolicyKind::ClockDwf,
        PolicyKind::TwoLru,
        PolicyKind::NvmOnly,
    ])?;

    let mut dwf_bars = Vec::new();
    let mut proposed_bars = Vec::new();
    for (spec, row) in &matrix {
        #[allow(clippy::cast_precision_loss)]
        let baseline = report(row, "nvm-only").nvm_writes.total().max(1) as f64;
        dwf_bars.push(writes_bar(report(row, "clock-dwf"), &spec.name, baseline));
        proposed_bars.push(writes_bar(report(row, "two-lru"), &spec.name, baseline));
    }

    print_grouped_figure(
        "Fig. 4b: NVM writes normalized to NVM-only",
        &[
            ("CLOCK-DWF (left bars)", dwf_bars.clone()),
            ("proposed two-LRU (right bars)", proposed_bars.clone()),
        ],
    );
    println!(
        "\npaper: the proposed scheme favours serving writes in NVM over \
         migrating the\npage, cutting NVM writes up to 93% vs CLOCK-DWF and \
         up to 75% (49% G-Mean)\nvs NVM-only (lifetime up to 4x). CLOCK-DWF \
         exceeds NVM-only by up to 3.74x.\nstreamcluster and vips: CLOCK-DWF \
         slightly better (near-threshold bursts)."
    );
    announce_json(
        options
            .write_json(
                "fig4b",
                &vec![("clock-dwf", dwf_bars), ("two-lru", proposed_bars)],
            )?
            .as_deref(),
    );
    Ok(())
}
