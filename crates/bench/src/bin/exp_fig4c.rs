//! Fig. 4c — AMAT of the proposed scheme (Read/Write Requests vs
//! Migrations) normalized to the AMAT of CLOCK-DWF on the same trace.

use hybridmem_bench::{announce_json, print_stacked_figure, report, StackedBar, SuiteOptions};
use hybridmem_core::PolicyKind;
use hybridmem_types::Result;

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[PolicyKind::TwoLru, PolicyKind::ClockDwf])?;

    let bars: Vec<StackedBar> = matrix
        .iter()
        .map(|(spec, row)| {
            let proposed = report(row, "two-lru");
            let baseline = report(row, "clock-dwf").latency.total().value();
            StackedBar {
                workload: spec.name.clone(),
                components: vec![
                    (
                        "requests".into(),
                        (proposed.latency.requests + proposed.latency.faults).value() / baseline,
                    ),
                    (
                        "migrations".into(),
                        proposed.latency.migrations.value() / baseline,
                    ),
                ],
            }
        })
        .collect();

    print_stacked_figure(
        "Fig. 4c: proposed-scheme AMAT normalized to CLOCK-DWF",
        &bars,
    );
    println!(
        "\npaper: limiting non-beneficial migrations improves AMAT up to \
         70% (48%\nG-Mean); migrations contribute <50% of the proposed \
         scheme's AMAT in most\nworkloads. raytrace and vips are the \
         exceptions where CLOCK-DWF is better\n(blackscholes prints 1.02)."
    );
    announce_json(options.write_json("fig4c", &bars)?.as_deref());
    Ok(())
}
