//! Headline-claims summary — the numbers the paper's abstract and
//! conclusion quote, computed from the full evaluation matrix:
//!
//! * power vs DRAM-only: "up to 79% (43% on average)" reduction;
//! * power vs CLOCK-DWF: "up to 48% (14% on average)" reduction;
//! * AMAT vs CLOCK-DWF: "up to 70% (48% on average)" improvement;
//! * NVM writes (endurance) vs CLOCK-DWF: "up to 93% (64% on average)";
//! * NVM writes vs NVM-only: "up to 75% (49% on average)" reduction.

use hybridmem_bench::{announce_json, report, SuiteOptions};
use hybridmem_core::{geo_mean, PolicyKind};
use hybridmem_types::Result;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Claim {
    name: &'static str,
    paper_best_pct: f64,
    paper_mean_pct: f64,
    measured_best_pct: f64,
    measured_mean_pct: f64,
}

fn reduction_stats(ratios: &[f64]) -> (f64, f64) {
    let best = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    ((1.0 - best) * 100.0, (1.0 - geo_mean(ratios)) * 100.0)
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[
        PolicyKind::TwoLru,
        PolicyKind::ClockDwf,
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
    ])?;

    let mut power_vs_dram = Vec::new();
    let mut power_vs_dwf = Vec::new();
    let mut amat_vs_dwf = Vec::new();
    let mut writes_vs_dwf = Vec::new();
    let mut writes_vs_nvm = Vec::new();
    for (_, row) in &matrix {
        let proposed = report(row, "two-lru");
        let dwf = report(row, "clock-dwf");
        let dram = report(row, "dram-only");
        let nvm = report(row, "nvm-only");
        power_vs_dram.push(proposed.energy_normalized_to(dram));
        power_vs_dwf.push(proposed.energy_normalized_to(dwf));
        amat_vs_dwf.push(proposed.amat_normalized_to(dwf));
        writes_vs_dwf.push(proposed.nvm_writes_normalized_to(dwf));
        writes_vs_nvm.push(proposed.nvm_writes_normalized_to(nvm));
    }

    let claims: Vec<Claim> = [
        ("power vs DRAM-only", 79.0, 43.0, &power_vs_dram),
        ("power vs CLOCK-DWF", 48.0, 14.0, &power_vs_dwf),
        ("AMAT vs CLOCK-DWF", 70.0, 48.0, &amat_vs_dwf),
        ("NVM writes vs CLOCK-DWF", 93.0, 64.0, &writes_vs_dwf),
        ("NVM writes vs NVM-only", 75.0, 49.0, &writes_vs_nvm),
    ]
    .into_iter()
    .map(|(name, paper_best, paper_mean, ratios)| {
        let (best, mean) = reduction_stats(ratios);
        Claim {
            name,
            paper_best_pct: paper_best,
            paper_mean_pct: paper_mean,
            measured_best_pct: best,
            measured_mean_pct: mean,
        }
    })
    .collect();

    println!("=== Headline claims: proposed scheme reductions ===");
    println!(
        "{:<26} {:>12} {:>12} {:>14} {:>14}",
        "claim", "paper best", "paper mean", "measured best", "measured mean"
    );
    for claim in &claims {
        println!(
            "{:<26} {:>11.0}% {:>11.0}% {:>13.1}% {:>13.1}%",
            claim.name,
            claim.paper_best_pct,
            claim.paper_mean_pct,
            claim.measured_best_pct,
            claim.measured_mean_pct,
        );
    }
    println!(
        "\nNegative values mean the proposed scheme was worse on that axis \
         for every\nworkload's best case (averages are geometric means, as \
         in the paper)."
    );
    announce_json(options.write_json("summary", &claims)?.as_deref());
    Ok(())
}
