//! Fig. 2a — CLOCK-DWF power breakdown (Static / Dynamic / Migration)
//! normalized to the DRAM-only power consumption of the same workload.
//!
//! Page-fault fill energy is folded into the "dynamic" component, matching
//! the three-part legend of the paper's figure.

use hybridmem_bench::{announce_json, print_stacked_figure, report, StackedBar, SuiteOptions};
use hybridmem_core::PolicyKind;
use hybridmem_types::Result;

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[PolicyKind::ClockDwf, PolicyKind::DramOnly])?;

    let bars: Vec<StackedBar> = matrix
        .iter()
        .map(|(spec, row)| {
            let dwf = report(row, "clock-dwf");
            let baseline = report(row, "dram-only").energy.total().value();
            StackedBar {
                workload: spec.name.clone(),
                components: vec![
                    ("static".into(), dwf.energy.static_energy.value() / baseline),
                    (
                        "dynamic".into(),
                        (dwf.energy.dynamic + dwf.energy.page_faults).value() / baseline,
                    ),
                    ("migration".into(), dwf.energy.migrations.value() / baseline),
                ],
            }
        })
        .collect();

    print_stacked_figure("Fig. 2a: CLOCK-DWF power normalized to DRAM-only", &bars);
    println!(
        "\npaper: static drops ~80% in every workload; canneal and \
         fluidanimate\nblow past 1.0 (3.05 / 6.54) because migrations \
         contribute >40% of power."
    );
    announce_json(options.write_json("fig2a", &bars)?.as_deref());
    Ok(())
}
