//! Fig. 2c — physical writes reaching NVM under CLOCK-DWF (Page Fault vs
//! Migration), normalized to an NVM-only memory's total writes.
//!
//! CLOCK-DWF never serves a demand write from NVM, so its "requests"
//! component is structurally zero — the paper's legend therefore only shows
//! Page Fault and Migration.

use hybridmem_bench::{announce_json, print_stacked_figure, report, StackedBar, SuiteOptions};
use hybridmem_core::PolicyKind;
use hybridmem_types::Result;

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[PolicyKind::ClockDwf, PolicyKind::NvmOnly])?;

    let bars: Vec<StackedBar> = matrix
        .iter()
        .map(|(spec, row)| {
            let dwf = report(row, "clock-dwf");
            #[allow(clippy::cast_precision_loss)]
            let baseline = report(row, "nvm-only").nvm_writes.total().max(1) as f64;
            #[allow(clippy::cast_precision_loss)]
            StackedBar {
                workload: spec.name.clone(),
                components: vec![
                    (
                        "page_fault".into(),
                        dwf.nvm_writes.page_faults as f64 / baseline,
                    ),
                    (
                        "migration".into(),
                        dwf.nvm_writes.migrations as f64 / baseline,
                    ),
                    ("requests".into(), dwf.nvm_writes.requests as f64 / baseline),
                ],
            }
        })
        .collect();

    print_stacked_figure(
        "Fig. 2c: CLOCK-DWF NVM writes normalized to NVM-only",
        &bars,
    );
    println!(
        "\npaper: migration writes contribute >50% of NVM writes in most \
         workloads,\npushing several past the NVM-only baseline (up to \
         3.74x) — CLOCK-DWF\n*increases* wear despite serving no demand \
         writes from NVM."
    );
    announce_json(options.write_json("fig2c", &bars)?.as_deref());
    Ok(())
}
