//! Lifetime headline — "which will prolong its lifetime up to 4x"
//! (Section V-B): the proposed scheme's NVM lifetime relative to an
//! NVM-only memory and to CLOCK-DWF, per workload.
//!
//! Lifetime here follows the paper's simple model: with a fixed per-cell
//! endurance and no device wear leveling, the module dies when its hottest
//! page exhausts its budget, so relative lifetime is the inverse ratio of
//! hottest-page write *rates* (same trace, same duration).

use hybridmem_bench::{announce_json, report, SuiteOptions};
use hybridmem_core::{geo_mean, PolicyKind, SimulationReport};
use hybridmem_types::Result;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    lifetime_vs_nvm_only: f64,
    lifetime_vs_clock_dwf: f64,
}

/// Hottest-page write count per request — the quantity whose inverse is
/// proportional to lifetime on a shared trace.
fn wear_rate(report: &SimulationReport) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        report.wear.max_page_wear as f64 / report.counts.requests.max(1) as f64
    }
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[
        PolicyKind::TwoLru,
        PolicyKind::ClockDwf,
        PolicyKind::NvmOnly,
    ])?;

    println!("=== NVM lifetime of the proposed scheme (higher is better) ===");
    println!(
        "{:<14} {:>16} {:>18}",
        "workload", "vs NVM-only", "vs CLOCK-DWF"
    );
    let mut rows = Vec::new();
    let mut vs_nvm = Vec::new();
    let mut vs_dwf = Vec::new();
    for (spec, reports) in &matrix {
        let proposed = wear_rate(report(reports, "two-lru"));
        let dwf = wear_rate(report(reports, "clock-dwf"));
        let nvm_only = wear_rate(report(reports, "nvm-only"));
        if proposed == 0.0 {
            println!("{:<14} {:>16} {:>18}", spec.name, "unbounded", "unbounded");
            continue;
        }
        let row = Row {
            workload: spec.name.clone(),
            lifetime_vs_nvm_only: nvm_only / proposed,
            lifetime_vs_clock_dwf: dwf / proposed,
        };
        println!(
            "{:<14} {:>15.2}x {:>17.2}x",
            row.workload, row.lifetime_vs_nvm_only, row.lifetime_vs_clock_dwf
        );
        vs_nvm.push(row.lifetime_vs_nvm_only);
        vs_dwf.push(row.lifetime_vs_clock_dwf);
        rows.push(row);
    }
    if !vs_nvm.is_empty() {
        println!(
            "{:<14} {:>15.2}x {:>17.2}x",
            "G-Mean",
            geo_mean(&vs_nvm),
            geo_mean(&vs_dwf)
        );
    }
    println!(
        "\npaper: \"the proposed scheme can reduce the number of writes in \
         NVM up to 75%\n(49% on average) compared to a NVM-only main memory \
         which will prolong its\nlifetime up to 4x\"; endurance improves up \
         to 93% (64% on average) vs CLOCK-DWF."
    );
    announce_json(options.write_json("lifetime", &rows)?.as_deref());
    Ok(())
}
