//! Fig. 4a — power breakdown of CLOCK-DWF (left bars) and the proposed
//! two-LRU scheme (right bars), both normalized to DRAM-only power.

use hybridmem_bench::{announce_json, print_grouped_figure, report, StackedBar, SuiteOptions};
use hybridmem_core::PolicyKind;
use hybridmem_types::Result;

fn power_bar(r: &hybridmem_core::SimulationReport, workload: &str, baseline: f64) -> StackedBar {
    StackedBar {
        workload: workload.to_owned(),
        components: vec![
            ("static".into(), r.energy.static_energy.value() / baseline),
            (
                "dynamic".into(),
                (r.energy.dynamic + r.energy.page_faults).value() / baseline,
            ),
            ("migration".into(), r.energy.migrations.value() / baseline),
        ],
    }
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[
        PolicyKind::ClockDwf,
        PolicyKind::TwoLru,
        PolicyKind::DramOnly,
    ])?;

    let mut dwf_bars = Vec::new();
    let mut proposed_bars = Vec::new();
    for (spec, row) in &matrix {
        let baseline = report(row, "dram-only").energy.total().value();
        dwf_bars.push(power_bar(report(row, "clock-dwf"), &spec.name, baseline));
        proposed_bars.push(power_bar(report(row, "two-lru"), &spec.name, baseline));
    }

    print_grouped_figure(
        "Fig. 4a: power normalized to DRAM-only",
        &[
            ("CLOCK-DWF (left bars)", dwf_bars.clone()),
            ("proposed two-LRU (right bars)", proposed_bars.clone()),
        ],
    );
    println!(
        "\npaper: the proposed scheme cuts power up to 48% (14% G-Mean) vs \
         CLOCK-DWF\nand up to 79% (43% G-Mean) vs DRAM-only; migration cost \
         drops up to 80%.\ncanneal/fluidanimate/streamcluster stay >1 — \
         'not suitable for hybrid memories'."
    );
    announce_json(
        options
            .write_json(
                "fig4a",
                &vec![("clock-dwf", dwf_bars), ("two-lru", proposed_bars)],
            )?
            .as_deref(),
    );
    Ok(())
}
