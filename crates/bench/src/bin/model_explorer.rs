//! Closed-form what-if analysis over the paper's Eq. 1 / Eq. 2 — no
//! simulation, just the Table I algebra. Answers the motivating question of
//! Section III analytically: *at what migration rate does a hybrid memory
//! stop paying off?*
//!
//! ```text
//! cargo run --release -p hybridmem-bench --bin model_explorer
//! ```

use hybridmem_core::{ModelParams, Probabilities};
use hybridmem_types::Result;

/// A representative request mix: 95 % DRAM hits, 5 % NVM hits, no faults,
/// 70 % reads everywhere, symmetric swap migrations.
fn mix(migration_rate: f64) -> Probabilities {
    Probabilities {
        hit_dram: 0.95,
        hit_nvm: 0.05,
        miss: 0.0,
        read_given_dram: 0.7,
        read_given_nvm: 0.7,
        migrate_to_dram: migration_rate,
        migrate_to_nvm: migration_rate,
        disk_to_dram: 1.0,
        disk_to_nvm: 0.0,
    }
}

fn main() -> Result<()> {
    println!("=== Eq. 1 / Eq. 2 sensitivity to the migration rate ===");
    println!("(95% DRAM / 5% NVM hits, no faults, 70% reads, swap migrations)\n");
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>12}",
        "PMig (pairs)", "AMAT (ns)", "mig % AMAT", "APPR (nJ)", "mig % APPR"
    );
    for &rate in &[0.0, 1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2] {
        let model = ModelParams::date2016(mix(rate));
        model.probabilities.validate()?;
        let amat = model.amat_components();
        let appr = model.appr_components();
        println!(
            "{rate:>14.0e} {:>12.1} {:>11.1}% {:>12.2} {:>11.1}%",
            amat.total(),
            amat.migration_share() * 100.0,
            appr.total(),
            appr.migration_share() * 100.0,
        );
    }

    let model = ModelParams::date2016(mix(0.0));
    println!(
        "\nbreak-even: one NVM→DRAM promotion (plus its swap-back) costs as much \
         latency\nas {} future DRAM read hits save — the reason Algorithm 1 \
         gates promotion\nbehind thresholds instead of migrating on first \
         contact like CLOCK-DWF.",
        model.breakeven_hits_per_promotion().ceil()
    );

    println!("\n=== Fault-rate sensitivity (no migrations) ===");
    println!(
        "{:>14} {:>12} {:>14}",
        "PMiss", "AMAT (ns)", "fills (nJ/req)"
    );
    for &miss in &[0.0, 1e-6, 1e-5, 1e-4, 1e-3] {
        let mut probabilities = mix(0.0);
        probabilities.hit_dram -= miss;
        probabilities.miss = miss;
        let model = ModelParams::date2016(probabilities);
        let amat = model.amat_components();
        let appr = model.appr_components();
        println!(
            "{miss:>14.0e} {:>12.1} {:>14.3}",
            amat.total(),
            appr.fills_to_dram + appr.fills_to_nvm,
        );
    }
    println!(
        "\nNote how a fault rate of just 1e-4 already dominates AMAT (the 5 ms \
         disk);\nthe paper's figures only make sense in a near-zero-fault \
         steady state —\nsee DESIGN.md §5."
    );
    Ok(())
}
