//! Fig. 2b — CLOCK-DWF AMAT (Read/Write Requests vs Migrations) normalized
//! to the AMAT of a DRAM-only memory.
//!
//! Page-fault (disk) time is folded into the "requests" component, matching
//! the two-part legend of the paper's figure.

use hybridmem_bench::{announce_json, print_stacked_figure, report, StackedBar, SuiteOptions};
use hybridmem_core::PolicyKind;
use hybridmem_types::Result;

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[PolicyKind::ClockDwf, PolicyKind::DramOnly])?;

    let bars: Vec<StackedBar> = matrix
        .iter()
        .map(|(spec, row)| {
            let dwf = report(row, "clock-dwf");
            let baseline = report(row, "dram-only").latency.total().value();
            StackedBar {
                workload: spec.name.clone(),
                components: vec![
                    (
                        "requests".into(),
                        (dwf.latency.requests + dwf.latency.faults).value() / baseline,
                    ),
                    (
                        "migrations".into(),
                        dwf.latency.migrations.value() / baseline,
                    ),
                ],
            }
        })
        .collect();

    print_stacked_figure("Fig. 2b: CLOCK-DWF AMAT normalized to DRAM-only", &bars);
    println!(
        "\npaper: migrations contribute more than 60% of CLOCK-DWF's AMAT; \
         several\nworkloads exceed the 7.0 axis (10.86 / 12.48 / 29.64 / \
         12.56 / 12.43)."
    );
    announce_json(options.write_json("fig2b", &bars)?.as_deref());
    Ok(())
}
