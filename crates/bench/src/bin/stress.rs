//! Standing throughput harness: replays a fixed workload set through the
//! trace cache and every replay driver, writing a `BENCH_*.json`
//! trajectory point (schema in `DESIGN.md` §13).
//!
//! ```text
//! cargo run --release -p hybridmem-bench --bin stress -- [flags]
//!
//! --quick       CI-sized caps (fast, noisier numbers)
//! --cap N       override accesses per workload
//! --seed N      trace generator seed (default 42)
//! --out FILE    output path (default: next free BENCH_<n>.json in the
//!               current directory, one past the highest committed index)
//! --resume FILE journal each workload's finished result to FILE and skip
//!               workloads the journal already holds (their measurements
//!               are restored as recorded), so a killed run resumes
//!               instead of starting over
//! --flight-out FILE
//!               ride a black-box flight recorder on one extra *untimed*
//!               batched two-LRU replay per workload (so the measured
//!               phases stay unperturbed) and write the
//!               hybridmem-flight-v1 dump; journal-restored workloads
//!               replay no cell and dump no black box
//! --flight-events N
//!               events retained per cell's flight ring (default 256)
//! ```
//!
//! `HYBRIDMEM_FAULT_PLAN` (see `hybridmem-core::faultinject`) is honored
//! by the harness's private trace caches, so the chaos job can script
//! spill read/write faults against the spill-replay phase.
//!
//! Five phases per workload, all single-threaded so the numbers isolate
//! per-access cost rather than scheduling:
//!
//! 1. `generate` — cold trace synthesis plus the binary spill write;
//! 2. `reference` — serial replay under [`ReferenceTwoLru`], the frozen
//!    pre-campaign implementation (the measured baseline);
//! 3. `replay_serial` — serial cached replay of the optimized two-LRU;
//! 4. `replay_batched` — batched cached replay (the default driver);
//! 5. `replay_spill` — batched replay streamed from the binary spill file
//!    through a deliberately undersized cache (the zero-rematerialization
//!    path oversize traces take).
//!
//! The headline `speedup_batched_vs_reference` compares phases 4 and 2;
//! `speedup_spill_vs_reference` compares 5 and 2. Before timing is
//! trusted, the baseline's report is checked against the optimized serial
//! run — a baseline that made different decisions would be comparing two
//! different simulations.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use hybridmem_bench::ReferenceTwoLru;
use hybridmem_core::{
    write_flight_json, ExperimentConfig, FaultPlan, FlightMatrixReport, FlightOptions,
    HybridSimulator, Instrumentation, PolicyKind, ReplayMode, RunJournal, SimulationReport,
    TraceCache,
};
use hybridmem_metrics::peak_rss_bytes;
use hybridmem_policy::TwoLruConfig;
use hybridmem_trace::{parsec, WorkloadSpec};
use hybridmem_types::fx_hash_one;
use serde::{Deserialize, Serialize};

/// Workloads the harness replays: a locality-heavy, a scan-heavy, and two
/// mixed profiles, so the trajectory is not tuned to one access pattern.
const WORKLOADS: [&str; 4] = ["bodytrack", "canneal", "dedup", "x264"];

/// Accesses per workload in the default (full) run.
const FULL_CAP: u64 = 1_000_000;

/// Accesses per workload under `--quick` (CI smoke).
const QUICK_CAP: u64 = 60_000;

/// Policies measured on the batched cached-replay path.
const REPLAY_POLICIES: [PolicyKind; 4] = [
    PolicyKind::TwoLru,
    PolicyKind::ClockDwf,
    PolicyKind::DramOnly,
    PolicyKind::NvmOnly,
];

/// The next free `BENCH_<n>.json` in `dir`: one past the highest index
/// already present, so successive runs extend the committed trajectory
/// instead of overwriting its newest point.
fn next_bench_path(dir: &std::path::Path) -> PathBuf {
    let highest = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name();
            let name = name.to_str()?;
            name.strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .unwrap_or(0);
    dir.join(format!("BENCH_{}.json", highest + 1))
}

#[derive(Debug)]
struct Options {
    quick: bool,
    cap: Option<u64>,
    seed: u64,
    out: PathBuf,
    resume: Option<PathBuf>,
    flight_out: Option<PathBuf>,
    flight_events: usize,
}

impl Options {
    fn from_args() -> Self {
        let mut options = Self {
            quick: false,
            cap: None,
            seed: 42,
            out: next_bench_path(std::path::Path::new(".")),
            resume: None,
            flight_out: None,
            flight_events: 256,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = || {
                args.next()
                    .unwrap_or_else(|| panic!("flag {flag} requires a value"))
            };
            match flag.as_str() {
                "--quick" => options.quick = true,
                "--cap" => options.cap = Some(value().parse().expect("--cap expects an integer")),
                "--seed" => options.seed = value().parse().expect("--seed expects an integer"),
                "--out" => options.out = PathBuf::from(value()),
                "--resume" => options.resume = Some(PathBuf::from(value())),
                "--flight-out" => options.flight_out = Some(PathBuf::from(value())),
                "--flight-events" => {
                    options.flight_events =
                        value().parse().expect("--flight-events expects an integer");
                }
                other => {
                    panic!(
                        "unknown flag {other}; expected \
                         --quick/--cap/--seed/--out/--resume/--flight-out/--flight-events"
                    )
                }
            }
        }
        assert!(
            options.flight_events > 0,
            "--flight-events must retain at least 1 event"
        );
        options
    }

    fn cap(&self) -> u64 {
        self.cap
            .unwrap_or(if self.quick { QUICK_CAP } else { FULL_CAP })
    }
}

/// One timed measurement: how many accesses, how long.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Measurement {
    seconds: f64,
    accesses: u64,
    accesses_per_second: f64,
}

impl Measurement {
    #[allow(clippy::cast_precision_loss)]
    fn new(accesses: u64, seconds: f64) -> Self {
        Self {
            seconds,
            accesses,
            accesses_per_second: if seconds > 0.0 {
                accesses as f64 / seconds
            } else {
                0.0
            },
        }
    }

    fn absorb(&mut self, other: &Self) {
        self.seconds += other.seconds;
        self.accesses += other.accesses;
        #[allow(clippy::cast_precision_loss)]
        {
            self.accesses_per_second = if self.seconds > 0.0 {
                self.accesses as f64 / self.seconds
            } else {
                0.0
            };
        }
    }
}

/// A named measurement (one phase or one policy).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NamedMeasurement {
    name: String,
    #[serde(flatten)]
    measurement: Measurement,
}

/// Per-workload results.
#[derive(Debug, Serialize, Deserialize)]
struct WorkloadResult {
    workload: String,
    accesses: u64,
    /// The five harness phases, in execution order.
    phases: Vec<NamedMeasurement>,
    /// Batched cached replay, one entry per measured policy.
    policies: Vec<NamedMeasurement>,
}

/// The `BENCH_*.json` trajectory point (schema in `DESIGN.md` §13).
#[derive(Debug, Serialize)]
struct BenchReport {
    schema: &'static str,
    quick: bool,
    seed: u64,
    cap: u64,
    /// Worker threads driving cells (the harness is deliberately serial).
    threads: usize,
    wall_seconds: f64,
    peak_rss_bytes: Option<u64>,
    workloads: Vec<WorkloadResult>,
    /// Phase totals across all workloads.
    phases: Vec<NamedMeasurement>,
    /// Batched-replay totals across all workloads, per policy.
    policies: Vec<NamedMeasurement>,
    /// `replay_batched` vs `reference` accesses/sec (two-LRU cells only).
    speedup_batched_vs_reference: f64,
    /// `replay_spill` vs `reference` accesses/sec (two-LRU cells only).
    speedup_spill_vs_reference: f64,
    /// Spill-aware cache counters at the end of the run.
    trace_cache: hybridmem_core::TraceCacheStats,
}

/// Times `f` and wraps the result with the access count it processed.
fn timed<T>(accesses: u64, f: impl FnOnce() -> T) -> (Measurement, T) {
    let start = Instant::now();
    let value = f();
    (
        Measurement::new(accesses, start.elapsed().as_secs_f64()),
        value,
    )
}

/// Serial replay of the cached trace under the frozen baseline policy,
/// mirroring `ExperimentConfig::run_cached`'s warmup handling.
fn run_reference(
    config: &ExperimentConfig,
    spec: &WorkloadSpec,
    cache: &TraceCache,
) -> SimulationReport {
    let trace = cache
        .try_get(spec, config.seed)
        .expect("the generate phase materialized this trace");
    let (dram, nvm, _total) = config.memory_sizes(spec);
    let two_lru = TwoLruConfig::with_thresholds(
        dram,
        nvm,
        config.read_threshold,
        config.write_threshold,
        config.read_window,
        config.write_window,
    )
    .expect("the date2016 thresholds are valid");
    let mut simulator =
        HybridSimulator::with_date2016_devices(Box::new(ReferenceTwoLru::new(two_lru)));
    simulator.set_static_scale(1.0 / spec.scale_factor());
    simulator.set_density_hint(spec.nominal_density());
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let warmup =
        ((spec.total_accesses() as f64 * config.warmup_fraction) as usize).min(trace.len());
    simulator.run_slice(&trace[..warmup]);
    simulator.reset_accounting();
    simulator.run_slice(&trace[warmup..]);
    simulator.into_report(spec.name.clone())
}

/// The baseline must reproduce the optimized serial run's decisions;
/// otherwise the speedup compares two different simulations.
fn assert_same_simulation(reference: &SimulationReport, serial: &SimulationReport) {
    assert_eq!(
        reference.counts, serial.counts,
        "{}: reference baseline diverged from two-lru (counts)",
        serial.workload
    );
    assert_eq!(
        reference.nvm_writes, serial.nvm_writes,
        "{}: reference baseline diverged from two-lru (nvm writes)",
        serial.workload
    );
}

fn main() {
    let options = Options::from_args();
    let cap = options.cap();
    let spill_dir = std::env::temp_dir().join(format!("hybridmem-stress-{}", std::process::id()));
    // Scripted faults (if any) hit both caches through one shared plan,
    // so attempt numbers count across the whole run.
    let fault_plan = FaultPlan::from_env()
        .unwrap_or_else(|e| panic!("malformed HYBRIDMEM_FAULT_PLAN: {e}"))
        .map(Arc::new);
    let with_plan = |cache: TraceCache| match &fault_plan {
        Some(plan) => cache.with_fault_plan(Arc::clone(plan)),
        None => cache,
    };
    // Plenty for the harness caps; the spill-replay phase uses its own
    // deliberately undersized cache over the same directory.
    let cache = with_plan(TraceCache::with_spill_dir(1 << 30, &spill_dir));
    let spill_only = with_plan(TraceCache::with_spill_dir(1, &spill_dir));
    // The journal is keyed to the workload set and its sizing; resuming
    // into a different configuration is rejected rather than mixed in.
    let journal = options.resume.as_ref().map(|path| {
        let fingerprint = fx_hash_one(&format!("stress:{WORKLOADS:?}:{}:{cap}", options.seed));
        RunJournal::open(path, fingerprint).unwrap_or_else(|e| panic!("{e}"))
    });
    let serial_config = ExperimentConfig {
        seed: options.seed,
        replay: ReplayMode::Serial,
        ..ExperimentConfig::date2016()
    };
    let batched_config = ExperimentConfig {
        replay: ReplayMode::Batched,
        ..serial_config
    };

    let run_start = Instant::now();
    let mut workloads = Vec::new();
    let mut flights = Vec::new();
    for name in WORKLOADS {
        let spec = parsec::spec(name)
            .expect("WORKLOADS only lists known profiles")
            .capped(cap);
        let accesses = spec.total_accesses();
        if let Some(journal) = &journal {
            if let Some(value) = journal.completed_report(name, "stress") {
                let result: WorkloadResult = serde_json::from_value(value)
                    .unwrap_or_else(|e| panic!("journaled workload {name}: {e}"));
                println!("[{name}] restored from journal ({accesses} accesses)");
                workloads.push(result);
                continue;
            }
        }
        println!("[{name}] {accesses} accesses");

        let (generate, _) = timed(accesses, || {
            cache
                .try_get(&spec, options.seed)
                .expect("harness caps fit the cache budget")
        });
        let (reference, reference_report) =
            timed(accesses, || run_reference(&serial_config, &spec, &cache));
        let (serial, serial_report) = timed(accesses, || {
            serial_config
                .run_cached(&spec, PolicyKind::TwoLru, &cache)
                .expect("cell inputs are valid")
        });
        assert_same_simulation(&reference_report, &serial_report);
        let (batched, _) = timed(accesses, || {
            batched_config
                .run_cached(&spec, PolicyKind::TwoLru, &cache)
                .expect("cell inputs are valid")
        });
        let (spill, _) = timed(accesses, || {
            batched_config
                .run_cached(&spec, PolicyKind::TwoLru, &spill_only)
                .expect("cell inputs are valid")
        });

        let mut policies = Vec::new();
        for kind in REPLAY_POLICIES {
            let (m, _) = timed(accesses, || {
                batched_config
                    .run_cached(&spec, kind, &cache)
                    .expect("cell inputs are valid")
            });
            policies.push(NamedMeasurement {
                name: kind.name().to_owned(),
                measurement: m,
            });
        }

        let phases = [
            ("generate", generate),
            ("reference", reference),
            ("replay_serial", serial),
            ("replay_batched", batched),
            ("replay_spill", spill),
        ]
        .into_iter()
        .map(|(name, measurement)| NamedMeasurement {
            name: name.to_owned(),
            measurement,
        })
        .collect();
        let result = WorkloadResult {
            workload: spec.name.clone(),
            accesses,
            phases,
            policies,
        };
        if let Some(journal) = &journal {
            journal.record(name, "stress", &result);
        }
        workloads.push(result);

        // One extra *untimed* replay carries the black box, so the
        // measured phases above stay unperturbed by the recorder.
        if options.flight_out.is_some() {
            let instrumentation = Instrumentation::default()
                .with_flight(FlightOptions::with_events(options.flight_events));
            let run = batched_config
                .run_instrumented(&spec, PolicyKind::TwoLru, &cache, instrumentation)
                .expect("cell inputs are valid");
            flights.push(
                run.flight
                    .expect("flight instrumentation was requested for this cell"),
            );
        }
    }

    if let Some(path) = &options.flight_out {
        let matrix = FlightMatrixReport::new(flights);
        let mut writer = std::io::BufWriter::new(
            std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display())),
        );
        write_flight_json(&mut writer, &matrix)
            .and_then(|()| std::io::Write::flush(&mut writer))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote flight recorder dump to {}", path.display());
    }

    let mut phase_totals: Vec<NamedMeasurement> = Vec::new();
    let mut policy_totals: Vec<NamedMeasurement> = Vec::new();
    for workload in &workloads {
        for (totals, entries) in [
            (&mut phase_totals, &workload.phases),
            (&mut policy_totals, &workload.policies),
        ] {
            for entry in entries {
                match totals.iter_mut().find(|t| t.name == entry.name) {
                    Some(total) => total.measurement.absorb(&entry.measurement),
                    None => totals.push(entry.clone()),
                }
            }
        }
    }
    let phase_rate = |name: &str| {
        phase_totals
            .iter()
            .find(|t| t.name == name)
            .map_or(0.0, |t| t.measurement.accesses_per_second)
    };
    let reference_rate = phase_rate("reference");
    let speedup = |rate: f64| {
        if reference_rate > 0.0 {
            rate / reference_rate
        } else {
            0.0
        }
    };

    let report = BenchReport {
        schema: "hybridmem-stress-v1",
        quick: options.quick,
        seed: options.seed,
        cap,
        threads: 1,
        wall_seconds: run_start.elapsed().as_secs_f64(),
        peak_rss_bytes: peak_rss_bytes(),
        speedup_batched_vs_reference: speedup(phase_rate("replay_batched")),
        speedup_spill_vs_reference: speedup(phase_rate("replay_spill")),
        workloads,
        phases: phase_totals,
        policies: policy_totals,
        trace_cache: cache.stats(),
    };

    let json = serde_json::to_string_pretty(&report).expect("the report serializes");
    std::fs::write(&options.out, json)
        .unwrap_or_else(|e| panic!("write {}: {e}", options.out.display()));
    let _ = std::fs::remove_dir_all(&spill_dir);

    for phase in &report.phases {
        println!(
            "{:<16} {:>12.0} accesses/sec",
            phase.name, phase.measurement.accesses_per_second
        );
    }
    println!(
        "speedup: batched {:.2}x, spill {:.2}x vs reference (wrote {})",
        report.speedup_batched_vs_reference,
        report.speedup_spill_vs_reference,
        options.out.display()
    );
}

#[cfg(test)]
mod tests {
    use super::next_bench_path;

    #[test]
    fn next_bench_path_extends_the_highest_index() {
        let dir = std::env::temp_dir().join("hybridmem-stress-bench-index");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(
            next_bench_path(&dir),
            dir.join("BENCH_1.json"),
            "an empty directory starts the trajectory"
        );
        for name in [
            "BENCH_3.json",
            "BENCH_10.json",
            "BENCH_x.json",
            "other.json",
        ] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        assert_eq!(
            next_bench_path(&dir),
            dir.join("BENCH_11.json"),
            "only well-formed BENCH_<n>.json names count"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
