//! Extension E1 — adaptive threshold prediction, the paper's stated future
//! work ("using adaptive threshold prediction can further improve the
//! efficiency of the proposed scheme. This is part of our ongoing
//! research").
//!
//! Compares the static-threshold proposed scheme against
//! [`AdaptiveTwoLruPolicy`](hybridmem_policy::AdaptiveTwoLruPolicy), which
//! scores every promotion by the DRAM hits it earns and doubles/decays the
//! thresholds accordingly.

use hybridmem_bench::{announce_json, report, SuiteOptions};
use hybridmem_core::{geo_mean, PolicyKind};
use hybridmem_types::Result;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    static_migrations: u64,
    adaptive_migrations: u64,
    static_power_vs_dram: f64,
    adaptive_power_vs_dram: f64,
    static_amat_ns: f64,
    adaptive_amat_ns: f64,
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[
        PolicyKind::TwoLru,
        PolicyKind::AdaptiveTwoLru,
        PolicyKind::DramOnly,
    ])?;

    println!("=== Extension E1: adaptive vs static thresholds ===");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "mig stat", "mig adpt", "P stat", "P adpt", "AMAT stat", "AMAT adpt"
    );
    let mut rows = Vec::new();
    let mut static_power = Vec::new();
    let mut adaptive_power = Vec::new();
    for (spec, reports) in &matrix {
        let fixed = report(reports, "two-lru");
        let adaptive = report(reports, "two-lru-adaptive");
        let dram = report(reports, "dram-only");
        let row = Row {
            workload: spec.name.clone(),
            static_migrations: fixed.counts.migrations(),
            adaptive_migrations: adaptive.counts.migrations(),
            static_power_vs_dram: fixed.energy_normalized_to(dram),
            adaptive_power_vs_dram: adaptive.energy_normalized_to(dram),
            static_amat_ns: fixed.amat().value(),
            adaptive_amat_ns: adaptive.amat().value(),
        };
        println!(
            "{:<14} {:>10} {:>10} {:>10.3} {:>10.3} {:>10.1} {:>10.1}",
            row.workload,
            row.static_migrations,
            row.adaptive_migrations,
            row.static_power_vs_dram,
            row.adaptive_power_vs_dram,
            row.static_amat_ns,
            row.adaptive_amat_ns,
        );
        static_power.push(row.static_power_vs_dram);
        adaptive_power.push(row.adaptive_power_vs_dram);
        rows.push(row);
    }
    println!(
        "{:<14} {:>10} {:>10} {:>10.3} {:>10.3}",
        "G-Mean",
        "",
        "",
        geo_mean(&static_power),
        geo_mean(&adaptive_power),
    );
    println!(
        "\nExpected shape: on workloads with non-beneficial migration churn \
         (canneal,\nraytrace, vips, streamcluster) the controller raises the \
         thresholds and cuts\nmigrations; on well-behaved workloads it stays \
         near the static defaults."
    );
    announce_json(options.write_json("ext_adaptive", &rows)?.as_deref());
    Ok(())
}
