//! Tables I, II, and IV — the static configuration tables of the paper,
//! printed from the constants actually used by this implementation so any
//! drift between documentation and code is visible.

use hybridmem_cachesim::CotsonConfig;
use hybridmem_device::{DiskCharacteristics, MemoryCharacteristics};
use hybridmem_types::{PAGE_FACTOR, PAGE_SIZE};

fn table_i() {
    println!("=== Table I: model parameters (see hybridmem_core::model) ===");
    for (name, description) in [
        (
            "PHitDRAM/PHitNVM",
            "memory hit probabilities (measured per run)",
        ),
        (
            "PRDRAM/PRNVM, PW*",
            "read/write splits within each hit class",
        ),
        ("PMiss", "main-memory miss probability"),
        ("PMigD/PMigN", "NVM→DRAM / DRAM→NVM migrations per request"),
        ("PDiskToD/PDiskToN", "page-fault fill target probabilities"),
        ("TR*/TW* (ns)", "read/write latencies (Table IV)"),
        ("PoR*/PoW* (nJ)", "read/write dynamic energies (Table IV)"),
        ("TDisk", "disk access latency (Table II)"),
        ("PageFactor", "memory accesses per 4 KB page move"),
        ("AvgStaticPower", "Eq. 3: static power prorated per request"),
        ("StperPage", "static power of one page (nJ/s)"),
        ("AccessperPage", "accesses per page per second (1/s)"),
    ] {
        println!("  {name:<22} {description}");
    }
    println!(
        "  PageFactor = {PAGE_FACTOR} ({} B page / 8 B access)\n",
        PAGE_SIZE
    );
}

fn table_ii() {
    let config = CotsonConfig::date2016();
    let disk = DiskCharacteristics::hdd_date2016();
    println!("=== Table II: COTSon configuration (hybridmem_cachesim) ===");
    println!(
        "  CPU                {} cores (write-invalidate coherence)",
        config.cores
    );
    for (name, geometry) in [
        ("L1 data cache", config.l1d),
        ("L1 instr cache", config.l1i),
        ("Last-level cache", config.llc),
    ] {
        println!(
            "  {name:<18} {} KB, {}-way, {} B lines ({} sets)",
            geometry.size_bytes / 1024,
            geometry.associativity,
            geometry.line_size,
            geometry.sets(),
        );
    }
    println!("  Main memory        2x 2GB DDR2 (modelled per Table IV)");
    println!(
        "  Secondary storage  HDD, {} ms response time\n",
        disk.access_latency.value() / 1e6
    );
}

fn table_iv() {
    println!("=== Table IV: memory characteristics (hybridmem_device) ===");
    println!(
        "  {:<10} {:>16} {:>16} {:>22}",
        "memory", "latency r/w (ns)", "energy r/w (nJ)", "static (J/GB.s)"
    );
    for (name, c) in [
        ("DRAM", MemoryCharacteristics::dram_date2016()),
        ("NVM (PCM)", MemoryCharacteristics::pcm_date2016()),
    ] {
        println!(
            "  {:<10} {:>7}/{:<8} {:>7}/{:<8} {:>22}",
            name,
            c.read_latency.value(),
            c.write_latency.value(),
            c.read_energy.value(),
            c.write_energy.value(),
            c.static_power_j_per_gib_s,
        );
    }
}

fn main() {
    let table: Option<u32> = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--table")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("--table expects 1, 2, or 4"))
    };
    match table {
        Some(1) => table_i(),
        Some(2) => table_ii(),
        Some(4) => table_iv(),
        Some(other) => panic!("no table {other}; expected 1, 2, or 4 (3 has its own binary)"),
        None => {
            table_i();
            table_ii();
            table_iv();
        }
    }
}
