//! Ablation A1 — sweep the promotion thresholds of the proposed scheme.
//!
//! The paper: "The values of read_threshold and write_threshold determine
//! how aggressive we plan to prevent the migrations with low probability of
//! being useful" and notes that raytrace's optimal values differ from the
//! other workloads. This sweep quantifies that trade-off: low thresholds
//! promote eagerly (more migrations, better NVM hit latency), high
//! thresholds suppress migrations at the cost of serving more requests
//! from NVM.

use hybridmem_bench::{announce_json, SuiteOptions};
use hybridmem_core::{geo_mean, ExperimentConfig, PolicyKind};
use hybridmem_trace::parsec;
use hybridmem_types::Result;
use serde::Serialize;

/// `(read_threshold, write_threshold)` pairs swept, preserving the paper's
/// `write_threshold > read_threshold` rule.
const SWEEP: [(u32, u32); 6] = [(1, 2), (2, 4), (4, 8), (6, 12), (12, 24), (24, 48)];

/// Workloads shown: two typical, the one the paper singles out (raytrace),
/// and a hybrid-hostile one.
const WORKLOADS: [&str; 4] = ["bodytrack", "freqmine", "raytrace", "fluidanimate"];

#[derive(Debug, Serialize)]
struct Point {
    read_threshold: u32,
    write_threshold: u32,
    workload: String,
    migrations_per_kreq: f64,
    power_vs_dram: f64,
    amat_vs_dwf: f64,
    nvm_writes_vs_nvm_only: f64,
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let mut points = Vec::new();

    println!("=== Ablation A1: promotion-threshold sweep ===");
    println!(
        "{:<10} {:<14} {:>10} {:>12} {:>12} {:>12}",
        "(rt,wt)", "workload", "mig/kreq", "P vs DRAM", "AMAT vs dwf", "W vs NVM"
    );
    for (read_threshold, write_threshold) in SWEEP {
        let config = ExperimentConfig {
            read_threshold,
            write_threshold,
            seed: options.seed,
            ..ExperimentConfig::date2016()
        };
        let mut ratios = Vec::new();
        for name in WORKLOADS {
            let spec = parsec::spec(name)?.capped(options.cap.max(1));
            let reports = config.compare(
                &spec,
                &[
                    PolicyKind::TwoLru,
                    PolicyKind::ClockDwf,
                    PolicyKind::DramOnly,
                    PolicyKind::NvmOnly,
                ],
            )?;
            let [proposed, dwf, dram, nvm] = &reports[..] else {
                unreachable!("four policies requested")
            };
            #[allow(clippy::cast_precision_loss)]
            let point = Point {
                read_threshold,
                write_threshold,
                workload: name.to_owned(),
                migrations_per_kreq: proposed.counts.migrations() as f64
                    / proposed.counts.requests as f64
                    * 1000.0,
                power_vs_dram: proposed.energy_normalized_to(dram),
                amat_vs_dwf: proposed.amat_normalized_to(dwf),
                nvm_writes_vs_nvm_only: proposed.nvm_writes_normalized_to(nvm),
            };
            println!(
                "({:>2},{:>2})   {:<14} {:>10.3} {:>12.3} {:>12.3} {:>12.3}",
                read_threshold,
                write_threshold,
                point.workload,
                point.migrations_per_kreq,
                point.power_vs_dram,
                point.amat_vs_dwf,
                point.nvm_writes_vs_nvm_only,
            );
            ratios.push(point.power_vs_dram);
            points.push(point);
        }
        println!(
            "({read_threshold:>2},{write_threshold:>2})   {:<14} {:>10} {:>12.3}",
            "G-Mean",
            "",
            geo_mean(&ratios)
        );
    }
    println!(
        "\nExpected shape: migrations fall monotonically with the \
         thresholds; power\nbottoms out at moderate values (too-eager \
         promotion pays migration cost,\ntoo-shy promotion leaves hot pages \
         in slow NVM)."
    );
    announce_json(options.write_json("abl_thresholds", &points)?.as_deref());
    Ok(())
}
