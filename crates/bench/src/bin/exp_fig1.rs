//! Fig. 1 — DRAM-only power breakdown (Static / Dynamic / Page Fault),
//! normalized per workload to its own total, exactly as the paper plots it.

use hybridmem_bench::{announce_json, print_stacked_figure, StackedBar, SuiteOptions};
use hybridmem_core::PolicyKind;
use hybridmem_types::Result;

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[PolicyKind::DramOnly])?;

    let bars: Vec<StackedBar> = matrix
        .iter()
        .map(|(spec, row)| {
            let report = &row[0];
            let total = report.energy.total().value();
            StackedBar {
                workload: spec.name.clone(),
                components: vec![
                    ("static".into(), report.energy.static_energy.value() / total),
                    ("dynamic".into(), report.energy.dynamic.value() / total),
                    (
                        "page_fault".into(),
                        report.energy.page_faults.value() / total,
                    ),
                ],
            }
        })
        .collect();

    print_stacked_figure(
        "Fig. 1: DRAM-only power breakdown (fraction of total)",
        &bars,
    );
    println!(
        "\npaper: static power contributes 60-80% of the total for most \
         workloads;\nstreamcluster is dynamic-dominated (burst of accesses, \
         small footprint)."
    );
    announce_json(options.write_json("fig1", &bars)?.as_deref());
    Ok(())
}
