//! Baseline ladder — every policy in the repository on every workload.
//!
//! Reproduces the paper's framing that CLOCK-DWF "outperforms previous work
//! such as CLOCK-PRO" while the proposed scheme outperforms CLOCK-DWF, and
//! shows where the adaptive extension lands.

use hybridmem_bench::{announce_json, report, SuiteOptions};
use hybridmem_core::{geo_mean, PolicyKind};
use hybridmem_types::Result;
use serde::Serialize;

const POLICIES: [&str; 5] = [
    "dram-cache",
    "clock-pro",
    "clock-dwf",
    "two-lru",
    "two-lru-adaptive",
];

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    /// `policy -> (power vs DRAM-only, AMAT ns, NVM writes vs NVM-only)`.
    cells: Vec<(String, f64, f64, f64)>,
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let matrix = options.run_matrix(&[
        PolicyKind::DramCache,
        PolicyKind::ClockPro,
        PolicyKind::ClockDwf,
        PolicyKind::TwoLru,
        PolicyKind::AdaptiveTwoLru,
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
    ])?;

    println!("=== Baseline ladder: power vs DRAM-only (lower is better) ===");
    print!("{:<16}", "workload");
    for policy in POLICIES {
        print!(" {policy:>17}");
    }
    println!();

    let mut rows = Vec::new();
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); POLICIES.len()];
    for (spec, reports) in &matrix {
        let dram = report(reports, "dram-only");
        let nvm = report(reports, "nvm-only");
        let mut cells = Vec::new();
        print!("{:<16}", spec.name);
        for (i, policy) in POLICIES.iter().enumerate() {
            let r = report(reports, policy);
            let power = r.energy_normalized_to(dram);
            let writes = if nvm.nvm_writes.total() > 0 {
                r.nvm_writes_normalized_to(nvm)
            } else {
                0.0
            };
            print!(" {power:>17.3}");
            per_policy[i].push(power);
            cells.push((policy.to_string(), power, r.amat().value(), writes));
        }
        println!();
        rows.push(Row {
            workload: spec.name.clone(),
            cells,
        });
    }
    print!("{:<16}", "G-Mean");
    for ratios in &per_policy {
        print!(" {:>17.3}", geo_mean(ratios));
    }
    println!();
    println!(
        "\nExpected ladder (G-Mean): dram-cache and clock-pro ≥ clock-dwf ≥ \
         two-lru, with\nthe adaptive extension at or below two-lru — each \
         generation prunes more\nnon-beneficial page copies. Per-policy \
         AMAT and NVM writes are in the JSON."
    );
    announce_json(options.write_json("baselines", &rows)?.as_deref());
    Ok(())
}
