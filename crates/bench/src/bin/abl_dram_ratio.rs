//! Ablation A3 — sweep the DRAM share of the hybrid memory.
//!
//! The paper fixes DRAM at 10% of the memory "similar to previous
//! studies"; this sweep shows what that choice trades: more DRAM buys
//! lower dynamic/migration cost but erodes the static-power advantage that
//! motivates hybrid memory in the first place.

use hybridmem_bench::{announce_json, SuiteOptions};
use hybridmem_core::{geo_mean, ExperimentConfig, PolicyKind};
use hybridmem_types::Result;
use serde::Serialize;

const DRAM_FRACTIONS: [f64; 5] = [0.05, 0.10, 0.20, 0.35, 0.50];

#[derive(Debug, Serialize)]
struct Point {
    dram_fraction: f64,
    workload: String,
    power_vs_dram: f64,
    amat_ns: f64,
    nvm_write_total: u64,
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let mut points = Vec::new();

    println!("=== Ablation A3: DRAM fraction sweep (proposed scheme) ===");
    println!(
        "{:<8} {:<14} {:>12} {:>12} {:>14}",
        "dram%", "workload", "P vs DRAM", "AMAT (ns)", "NVM writes"
    );
    for dram_fraction in DRAM_FRACTIONS {
        let config = ExperimentConfig {
            dram_fraction,
            seed: options.seed,
            ..ExperimentConfig::date2016()
        };
        let specs = options.specs();
        let mut ratios = Vec::new();
        for spec in &specs {
            let reports = config.compare(spec, &[PolicyKind::TwoLru, PolicyKind::DramOnly])?;
            let [proposed, dram] = &reports[..] else {
                unreachable!("two policies requested")
            };
            let point = Point {
                dram_fraction,
                workload: spec.name.clone(),
                power_vs_dram: proposed.energy_normalized_to(dram),
                amat_ns: proposed.amat().value(),
                nvm_write_total: proposed.nvm_writes.total(),
            };
            ratios.push(point.power_vs_dram);
            points.push(point);
        }
        println!(
            "{:<8} {:<14} {:>12.3}",
            format!("{:.0}%", dram_fraction * 100.0),
            "G-Mean (12)",
            geo_mean(&ratios),
        );
    }
    println!("\nper-workload points are in the JSON output (--out DIR).");
    println!(
        "Expected shape: power rises with the DRAM share (static power \
         scales with\nDRAM), while AMAT and NVM writes improve — the 10% \
         operating point keeps\nmost of the static saving at acceptable \
         migration cost."
    );
    announce_json(options.write_json("abl_dram_ratio", &points)?.as_deref());
    Ok(())
}
