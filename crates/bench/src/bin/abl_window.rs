//! Ablation A2 — sweep the counter windows (`readperc` / `writeperc`).
//!
//! The windows bound how long a page can accumulate promotion credit
//! before falling out of the tracked fraction of the NVM LRU queue. The
//! paper keeps `writeperc > readperc`; the sweep holds that ratio at 3x.

use hybridmem_bench::{announce_json, SuiteOptions};
use hybridmem_core::{ExperimentConfig, PolicyKind};
use hybridmem_trace::parsec;
use hybridmem_types::Result;
use serde::Serialize;

/// `readperc` values swept; `writeperc = 3 × readperc` (capped at 1.0).
const READ_WINDOWS: [f64; 5] = [0.01, 0.05, 0.10, 0.20, 0.33];

const WORKLOADS: [&str; 3] = ["bodytrack", "canneal", "vips"];

#[derive(Debug, Serialize)]
struct Point {
    read_window: f64,
    write_window: f64,
    workload: String,
    migrations_per_kreq: f64,
    power_vs_dram: f64,
    amat_vs_dwf: f64,
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let mut points = Vec::new();

    println!("=== Ablation A2: counter-window sweep (writeperc = 3x readperc) ===");
    println!(
        "{:<14} {:<12} {:>10} {:>12} {:>12}",
        "(rp,wp)", "workload", "mig/kreq", "P vs DRAM", "AMAT vs dwf"
    );
    for read_window in READ_WINDOWS {
        let write_window = (read_window * 3.0).min(1.0);
        let config = ExperimentConfig {
            read_window,
            write_window,
            seed: options.seed,
            ..ExperimentConfig::date2016()
        };
        for name in WORKLOADS {
            let spec = parsec::spec(name)?.capped(options.cap.max(1));
            let reports = config.compare(
                &spec,
                &[
                    PolicyKind::TwoLru,
                    PolicyKind::ClockDwf,
                    PolicyKind::DramOnly,
                ],
            )?;
            let [proposed, dwf, dram] = &reports[..] else {
                unreachable!("three policies requested")
            };
            #[allow(clippy::cast_precision_loss)]
            let point = Point {
                read_window,
                write_window,
                workload: name.to_owned(),
                migrations_per_kreq: proposed.counts.migrations() as f64
                    / proposed.counts.requests as f64
                    * 1000.0,
                power_vs_dram: proposed.energy_normalized_to(dram),
                amat_vs_dwf: proposed.amat_normalized_to(dwf),
            };
            println!(
                "({:.2},{:.2})   {:<12} {:>10.3} {:>12.3} {:>12.3}",
                point.read_window,
                point.write_window,
                point.workload,
                point.migrations_per_kreq,
                point.power_vs_dram,
                point.amat_vs_dwf,
            );
            points.push(point);
        }
    }
    println!(
        "\nExpected shape: wider windows admit more promotions (counters \
         survive\nlonger), mirroring a threshold decrease; the default \
         (0.05/0.15) sits at\nthe flat part of the power curve."
    );
    announce_json(options.write_json("abl_window", &points)?.as_deref());
    Ok(())
}
