//! Table III — workload characterization: regenerates the traces and
//! prints the measured working-set size and read/write counts next to the
//! paper's values.
//!
//! When run with `--cap 0` the generator emits the full Table III volumes
//! and the counts match the paper exactly (the generator's budget
//! controller is exact); with a cap, counts scale proportionally.

use hybridmem_bench::{announce_json, SuiteOptions};
use hybridmem_trace::{parsec, TraceGenerator, TraceStats};
use hybridmem_types::Result;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    paper_wss_kb: u64,
    measured_wss_kb: u64,
    target_reads: u64,
    measured_reads: u64,
    target_writes: u64,
    measured_writes: u64,
    read_pct: f64,
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    println!(
        "=== Table III: workload characterization (cap {} accesses) ===",
        options.cap
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "workload", "WSS KB", "meas KB", "reads", "meas reads", "writes", "meas writes", "read%"
    );

    let mut rows = Vec::new();
    for (paper, spec) in parsec::TABLE_III.iter().zip(options.specs()) {
        let stats: TraceStats = TraceGenerator::new(spec.clone(), options.seed).collect();
        let row = Row {
            workload: spec.name.clone(),
            paper_wss_kb: paper.working_set_kb,
            measured_wss_kb: stats.working_set_kb(),
            target_reads: spec.reads,
            measured_reads: stats.reads,
            target_writes: spec.writes,
            measured_writes: stats.writes,
            read_pct: stats.read_ratio() * 100.0,
        };
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>6.1}%",
            row.workload,
            row.paper_wss_kb,
            row.measured_wss_kb,
            row.target_reads,
            row.measured_reads,
            row.target_writes,
            row.measured_writes,
            row.read_pct,
        );
        rows.push(row);
    }
    println!(
        "\nWSS KB column is the paper's full-scale footprint; 'meas KB' is \
         the footprint\nof the (possibly capped) regenerated trace. Run with \
         --cap 0 for full scale."
    );
    announce_json(options.write_json("table3", &rows)?.as_deref());
    Ok(())
}
