//! Extension E3 — Start-Gap wear leveling under the NVM module.
//!
//! The paper's lifetime claim ("prolong its lifetime up to 4x") assumes the
//! device does no leveling, so lifetime is bounded by the hottest page.
//! This experiment replays each policy's NVM write traffic through a
//! `StartGapLeveler` and compares the
//! *physical* wear distribution with and without leveling: how much of the
//! policy-level endurance advantage survives once the device levels wear on
//! its own, and what write amplification the gap movements add.

use hybridmem_bench::{announce_json, SuiteOptions};
use hybridmem_core::PolicyKind;
use hybridmem_device::{StartGapLeveler, WearTracker};
use hybridmem_policy::PolicyAction;
use hybridmem_trace::TraceGenerator;
use hybridmem_types::{MemoryKind, PageAccess, PageId, Result, PAGE_FACTOR};
use serde::Serialize;

/// Gap movement every this many physical writes. Qureshi et al. use 100;
/// the default here is more aggressive so capped traces complete several
/// rotations (a full rotation needs `pages x interval` writes).
const GAP_INTERVAL: u64 = 10;

#[derive(Debug, Serialize)]
struct Row {
    workload: String,
    policy: String,
    logical_imbalance: f64,
    physical_imbalance: f64,
    write_amplification: f64,
    lifetime_gain: f64,
}

fn main() -> Result<()> {
    let options = SuiteOptions::from_args();
    let config = options.config();

    println!("=== Extension E3: Start-Gap wear leveling (gap interval {GAP_INTERVAL}) ===");
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>10} {:>12}",
        "workload", "policy", "logical imb", "physical imb", "amplif.", "lifetime x"
    );

    let mut rows = Vec::new();
    for spec in options.specs() {
        for kind in [PolicyKind::ClockDwf, PolicyKind::TwoLru] {
            let mut policy = config.build_policy(kind, &spec)?;
            let nvm_pages = policy.capacity(MemoryKind::Nvm).value();
            let mut leveler = StartGapLeveler::new(nvm_pages, GAP_INTERVAL)?;
            let mut logical = WearTracker::new();
            let mut physical = WearTracker::new();

            // Replay the trace, feeding every physical NVM write through
            // the leveler. NVM pages are identified by their *slot* in the
            // leveler's logical space via a simple modulo of the page id
            // (the leveler only needs a stable logical index).
            let write_burst = |page: PageId,
                               count: u64,
                               leveler: &mut StartGapLeveler,
                               logical: &mut WearTracker,
                               physical: &mut WearTracker| {
                let slot = PageId::new(page.value() % nvm_pages);
                logical.record_page_write(slot, count);
                // Map once per burst; gap movements inside a burst are
                // charged to the same frame (bursts are one page move).
                let frame = leveler.physical_frame(slot);
                physical.record_page_write(PageId::new(frame), count);
                for _ in 0..count {
                    leveler.record_write();
                }
            };

            for access in TraceGenerator::new(spec.clone(), options.seed) {
                let access = PageAccess::from(access);
                let outcome = policy.on_access(access);
                if outcome.served_from == Some(MemoryKind::Nvm) && access.kind.is_write() {
                    write_burst(access.page, 1, &mut leveler, &mut logical, &mut physical);
                }
                for action in &outcome.actions {
                    match *action {
                        PolicyAction::Migrate {
                            page,
                            to: MemoryKind::Nvm,
                            ..
                        }
                        | PolicyAction::FillFromDisk {
                            page,
                            into: MemoryKind::Nvm,
                        } => {
                            write_burst(
                                page,
                                PAGE_FACTOR,
                                &mut leveler,
                                &mut logical,
                                &mut physical,
                            );
                        }
                        // DRAM-bound fills/migrations and disk
                        // evictions write no NVM cells.
                        PolicyAction::Migrate {
                            to: MemoryKind::Dram,
                            ..
                        }
                        | PolicyAction::FillFromDisk {
                            into: MemoryKind::Dram,
                            ..
                        }
                        | PolicyAction::EvictToDisk { .. } => {}
                    }
                }
            }

            if logical.total_writes() == 0 {
                continue;
            }
            // Lifetime gain = hottest-page share without leveling divided
            // by with leveling (same write volume, same endurance budget).
            #[allow(clippy::cast_precision_loss)]
            let lifetime_gain = (logical.max_wear() as f64 / logical.total_writes() as f64)
                / (physical.max_wear() as f64 / physical.total_writes().max(1) as f64);
            let row = Row {
                workload: spec.name.clone(),
                policy: kind.name().to_owned(),
                logical_imbalance: logical.imbalance(),
                physical_imbalance: physical.imbalance(),
                write_amplification: leveler.write_amplification(),
                lifetime_gain,
            };
            println!(
                "{:<14} {:<10} {:>12.2} {:>12.2} {:>10.4} {:>12.2}",
                row.workload,
                row.policy,
                row.logical_imbalance,
                row.physical_imbalance,
                row.write_amplification,
                row.lifetime_gain,
            );
            rows.push(row);
        }
    }
    println!(
        "\nReading: both policies already spread wear fairly evenly (logical \
         imbalance\n~2-4) because page-granular migrations dominate NVM \
         writes, so Start-Gap's\nheadroom is modest at this scale — its \
         gains grow with trace volume (a full\nrotation needs pages x \
         interval writes). CLOCK-DWF still wears the device\nfaster in \
         absolute terms: it writes several times more data (Fig. 4b), \
         which\nno leveler can undo."
    );
    announce_json(options.write_json("ext_wear_leveling", &rows)?.as_deref());
    Ok(())
}
