//! Frozen pre-optimization two-LRU implementation, kept as the measured
//! baseline for the `stress` throughput harness.
//!
//! [`ReferenceTwoLru`] reproduces the proposed scheme exactly as it was
//! implemented before the raw-speed campaign (binary trace replay +
//! batched dispatch), so `BENCH_*.json` speedups compare against a real,
//! checked-in algorithm rather than a remembered number:
//!
//! * **Both** queues are [`RankedLru`] (rank-indexed vectors); the
//!   optimized policy keeps DRAM in an intrusive `LinkedLru` because DRAM
//!   hits never need a rank.
//! * The DRAM hit path is a separate `contains` probe followed by a
//!   `touch` (two map lookups); the optimized path fuses them.
//! * The NVM hit path queries `rank(page)` and then calls `touch(page)`
//!   (two more lookups); the optimized path fuses them in `touch_ranked`.
//! * There is no `on_access_batch` override, so the simulator's batched
//!   driver degrades to per-access virtual dispatch.
//!
//! The decision logic — lazy window resets, thresholds, promotion swaps,
//! fault fills — is byte-for-byte the same scheme, so a replay under this
//! policy produces the same `SimulationReport` as `TwoLruPolicy`; the
//! `stress` binary asserts that before trusting the timing.

use hybridmem_policy::{
    AccessOutcome, ActionList, HybridPolicy, PolicyAction, RankedLru, TwoLruConfig,
};
use hybridmem_types::{
    AccessKind, FxHashMap, MemoryKind, PageAccess, PageCount, PageId, Residency,
};

/// Per-page read/write counters, as in the reference implementation.
#[derive(Debug, Clone, Copy, Default)]
struct PageCounters {
    reads: u32,
    writes: u32,
}

/// The pre-campaign two-LRU policy (see the module docs for exactly what
/// it preserves and why it exists).
#[derive(Debug, Clone)]
pub struct ReferenceTwoLru {
    config: TwoLruConfig,
    dram: RankedLru,
    nvm: RankedLru,
    counters: FxHashMap<PageId, PageCounters>,
}

impl ReferenceTwoLru {
    /// Creates the baseline policy for the given configuration.
    #[must_use]
    pub fn new(config: TwoLruConfig) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        Self {
            config,
            dram: RankedLru::with_capacity(config.dram_capacity.value() as usize),
            nvm: RankedLru::with_capacity(config.nvm_capacity.value() as usize),
            counters: FxHashMap::default(),
        }
    }

    /// Algorithm 1 lines 6–25, with the historical rank-then-touch pair.
    fn on_nvm_hit(&mut self, page: PageId, kind: AccessKind) -> AccessOutcome {
        let rank = self
            .nvm
            .rank(page)
            .expect("page is in the NVM queue by precondition");
        self.nvm.touch(page);

        let counters = self.counters.entry(page).or_default();
        if rank >= self.config.read_window_pages() {
            counters.reads = 0;
        }
        if rank >= self.config.write_window_pages() {
            counters.writes = 0;
        }
        let hot = match kind {
            AccessKind::Read => {
                counters.reads += 1;
                counters.reads > self.config.read_threshold
            }
            AccessKind::Write => {
                counters.writes += 1;
                counters.writes > self.config.write_threshold
            }
        };
        if !hot {
            return AccessOutcome::hit(MemoryKind::Nvm);
        }

        let mut actions = ActionList::new();
        self.nvm.remove(page);
        self.counters.remove(&page);
        if self.dram.len() as u64 >= self.config.dram_capacity.value() {
            let victim = self
                .dram
                .evict_lru()
                .expect("a full DRAM queue has a victim");
            self.nvm.insert(victim);
            actions.push(PolicyAction::Migrate {
                page: victim,
                from: MemoryKind::Dram,
                to: MemoryKind::Nvm,
            });
        }
        self.dram.insert(page);
        actions.push(PolicyAction::Migrate {
            page,
            from: MemoryKind::Nvm,
            to: MemoryKind::Dram,
        });
        AccessOutcome::hit_with(MemoryKind::Nvm, actions)
    }

    /// Algorithm 1 lines 27–28.
    fn on_fault(&mut self, page: PageId) -> AccessOutcome {
        let mut actions = ActionList::new();
        if self.dram.len() as u64 >= self.config.dram_capacity.value() {
            if self.nvm.len() as u64 >= self.config.nvm_capacity.value() {
                let out = self.nvm.evict_lru().expect("a full NVM queue has a victim");
                self.counters.remove(&out);
                actions.push(PolicyAction::EvictToDisk {
                    page: out,
                    from: MemoryKind::Nvm,
                });
            }
            let victim = self
                .dram
                .evict_lru()
                .expect("a full DRAM queue has a victim");
            self.nvm.insert(victim);
            actions.push(PolicyAction::Migrate {
                page: victim,
                from: MemoryKind::Dram,
                to: MemoryKind::Nvm,
            });
        }
        self.dram.insert(page);
        actions.push(PolicyAction::FillFromDisk {
            page,
            into: MemoryKind::Dram,
        });
        AccessOutcome::fault_with(actions)
    }
}

impl HybridPolicy for ReferenceTwoLru {
    fn on_access(&mut self, access: PageAccess) -> AccessOutcome {
        // Historical shape: separate membership probe and recency touch.
        if self.dram.contains(access.page) {
            self.dram.touch(access.page);
            AccessOutcome::hit(MemoryKind::Dram)
        } else if self.nvm.contains(access.page) {
            self.on_nvm_hit(access.page, access.kind)
        } else {
            self.on_fault(access.page)
        }
    }

    fn residency(&self, page: PageId) -> Residency {
        if self.dram.contains(page) {
            Residency::InMemory(MemoryKind::Dram)
        } else if self.nvm.contains(page) {
            Residency::InMemory(MemoryKind::Nvm)
        } else {
            Residency::OnDisk
        }
    }

    fn occupancy(&self, kind: MemoryKind) -> u64 {
        match kind {
            MemoryKind::Dram => self.dram.len() as u64,
            MemoryKind::Nvm => self.nvm.len() as u64,
        }
    }

    fn capacity(&self, kind: MemoryKind) -> PageCount {
        match kind {
            MemoryKind::Dram => self.config.dram_capacity,
            MemoryKind::Nvm => self.config.nvm_capacity,
        }
    }

    fn name(&self) -> &'static str {
        "two-lru-reference"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem_policy::TwoLruPolicy;

    /// A deterministic hot/warm/cold access mix with writes.
    fn mixed_trace() -> Vec<PageAccess> {
        let mut trace = Vec::new();
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        for i in 0..6_000_u64 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let page = PageId::new(match state % 10 {
                0..=4 => state % 8,        // hot set
                5..=7 => 100 + state % 64, // warm set
                _ => 1_000 + i,            // cold stream
            });
            trace.push(if state & 0x10 == 0 {
                PageAccess::write(page)
            } else {
                PageAccess::read(page)
            });
        }
        trace
    }

    /// The baseline must make the *same decisions* as the optimized
    /// policy — only its per-access cost profile differs. Residencies,
    /// occupancies, and every outcome's visible fields must match.
    #[test]
    fn reference_matches_optimized_two_lru_decisions() {
        let config = TwoLruConfig::new(PageCount::new(8), PageCount::new(48)).unwrap();
        let mut reference = ReferenceTwoLru::new(config);
        let mut optimized = TwoLruPolicy::new(config);
        for access in mixed_trace() {
            let r = reference.on_access(access);
            let o = optimized.on_access(access);
            assert_eq!(r.served_from, o.served_from, "at {access:?}");
            assert_eq!(r.fault, o.fault, "at {access:?}");
            assert_eq!(r.actions.as_slice(), o.actions.as_slice(), "at {access:?}");
        }
        for kind in [MemoryKind::Dram, MemoryKind::Nvm] {
            assert_eq!(reference.occupancy(kind), optimized.occupancy(kind));
        }
    }
}
