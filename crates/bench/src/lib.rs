//! Shared harness for the figure/table regenerators and Criterion
//! benchmarks.
//!
//! Every exhibit of the paper has a binary in `src/bin/` (see `DESIGN.md`
//! §4 for the index). All binaries accept the same flags:
//!
//! ```text
//! --cap N      max accesses per workload (default 1_000_000; 0 = full scale)
//! --seed N     trace generator seed (default 42)
//! --out DIR    also write machine-readable JSON results into DIR
//! ```
//!
//! Tables are printed in the same row/series layout the paper uses, with
//! `G-Mean` and `A-Mean` columns matching the figures' summary bars.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};

use hybridmem_core::{
    arith_mean, compare_policies, geo_mean, ExperimentConfig, PolicyKind, SimulationReport,
};
use hybridmem_trace::{parsec, WorkloadSpec};
use hybridmem_types::Result;
use serde::Serialize;

/// Command-line options shared by every regenerator binary.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Maximum accesses per workload (`0` disables capping).
    pub cap: u64,
    /// Trace generator seed.
    pub seed: u64,
    /// Directory for machine-readable JSON results, when given.
    pub out_dir: Option<PathBuf>,
}

impl SuiteOptions {
    /// Default cap used by the regenerators: large enough for stable
    /// steady-state statistics, small enough to run the full suite in
    /// minutes.
    pub const DEFAULT_CAP: u64 = 1_000_000;

    /// Parses `--cap`, `--seed`, and `--out` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn from_args() -> Self {
        let mut options = Self {
            cap: Self::DEFAULT_CAP,
            seed: 42,
            out_dir: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = || {
                args.next()
                    .unwrap_or_else(|| panic!("flag {flag} requires a value"))
            };
            match flag.as_str() {
                "--cap" => options.cap = value().parse().expect("--cap expects an integer"),
                "--seed" => options.seed = value().parse().expect("--seed expects an integer"),
                "--out" => options.out_dir = Some(PathBuf::from(value())),
                other => panic!("unknown flag {other}; expected --cap/--seed/--out"),
            }
        }
        options
    }

    /// The experiment configuration for these options.
    #[must_use]
    pub fn config(&self) -> ExperimentConfig {
        ExperimentConfig {
            seed: self.seed,
            ..ExperimentConfig::date2016()
        }
    }

    /// All 12 PARSEC specs, capped per the options.
    #[must_use]
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        parsec::all_specs()
            .into_iter()
            .map(|spec| {
                if self.cap == 0 {
                    spec
                } else {
                    spec.capped(self.cap)
                }
            })
            .collect()
    }

    /// Runs `kinds` over all 12 workloads (parallel across workloads).
    ///
    /// # Errors
    ///
    /// Propagates the first failing simulation.
    pub fn run_matrix(
        &self,
        kinds: &[PolicyKind],
    ) -> Result<Vec<(WorkloadSpec, Vec<SimulationReport>)>> {
        let specs = self.specs();
        let rows = compare_policies(&specs, kinds, &self.config())?;
        Ok(specs.into_iter().zip(rows).collect())
    }

    /// Writes `value` as pretty JSON into `out_dir/name.json` when an
    /// output directory was requested. Returns the path written, if any.
    ///
    /// # Errors
    ///
    /// Returns [`hybridmem_types::Error::InvalidInput`] on I/O failures.
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) -> Result<Option<PathBuf>> {
        let Some(dir) = &self.out_dir else {
            return Ok(None);
        };
        fs::create_dir_all(dir)
            .map_err(|e| hybridmem_types::Error::invalid_input(format!("mkdir {dir:?}: {e}")))?;
        let path = dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| hybridmem_types::Error::invalid_input(format!("serialize: {e}")))?;
        fs::write(&path, json)
            .map_err(|e| hybridmem_types::Error::invalid_input(format!("write {path:?}: {e}")))?;
        Ok(Some(path))
    }
}

impl Default for SuiteOptions {
    fn default() -> Self {
        Self {
            cap: Self::DEFAULT_CAP,
            seed: 42,
            out_dir: None,
        }
    }
}

/// One stacked bar of a figure: a workload's component values.
#[derive(Debug, Clone, Serialize)]
pub struct StackedBar {
    /// Workload (x-axis label).
    pub workload: String,
    /// `(component name, value)` pairs, in legend order.
    pub components: Vec<(String, f64)>,
}

impl StackedBar {
    /// Total height of the bar.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.components.iter().map(|(_, v)| v).sum()
    }
}

/// Prints a figure as a table: one row per workload, one column per
/// component, plus a total column and G-Mean / A-Mean rows over totals —
/// the same summary bars the paper appends to each figure.
pub fn print_stacked_figure(title: &str, bars: &[StackedBar]) {
    println!("\n=== {title} ===");
    let components: Vec<&str> = bars
        .first()
        .map(|b| b.components.iter().map(|(n, _)| n.as_str()).collect())
        .unwrap_or_default();
    print!("{:<16}", "workload");
    for name in &components {
        print!(" {name:>12}");
    }
    println!(" {:>12}", "total");
    for bar in bars {
        print!("{:<16}", bar.workload);
        for (_, value) in &bar.components {
            print!(" {value:>12.4}");
        }
        println!(" {:>12.4}", bar.total());
    }
    let totals: Vec<f64> = bars.iter().map(StackedBar::total).collect();
    if totals.iter().all(|&t| t > 0.0) && !totals.is_empty() {
        let pad = components.len() * 13;
        println!("{:<16}{:pad$} {:>12.4}", "G-Mean", "", geo_mean(&totals));
        println!("{:<16}{:pad$} {:>12.4}", "A-Mean", "", arith_mean(&totals));
    }
}

/// Prints a grouped figure (left/right bars per workload, like Fig. 4):
/// each group is a labelled set of stacked bars over the same workloads.
pub fn print_grouped_figure(title: &str, groups: &[(&str, Vec<StackedBar>)]) {
    println!("\n=== {title} ===");
    for (label, bars) in groups {
        print_stacked_figure(&format!("{title} — {label}"), bars);
    }
}

/// Re-exported so the binaries can keep their imports terse.
pub use hybridmem_core as core_api;

/// Convenience: indexes a report row by policy name.
///
/// # Panics
///
/// Panics when the policy is missing from the row — regenerator binaries
/// always request the policies they index.
#[must_use]
pub fn report<'a>(row: &'a [SimulationReport], policy: &str) -> &'a SimulationReport {
    row.iter()
        .find(|r| r.policy == policy)
        .unwrap_or_else(|| panic!("policy {policy} missing from report row"))
}

/// Marks `path` (if any) on stdout so users can find the JSON artefacts.
pub fn announce_json(path: Option<&Path>) {
    if let Some(path) = path {
        println!("\nwrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let o = SuiteOptions::default();
        assert_eq!(o.cap, SuiteOptions::DEFAULT_CAP);
        assert_eq!(o.seed, 42);
        assert!(o.out_dir.is_none());
        assert_eq!(o.config().seed, 42);
    }

    #[test]
    fn specs_are_capped() {
        let o = SuiteOptions {
            cap: 10_000,
            ..SuiteOptions::default()
        };
        for spec in o.specs() {
            assert!(spec.total_accesses() <= 10_100, "{}", spec.name);
        }
        let full = SuiteOptions {
            cap: 0,
            ..SuiteOptions::default()
        };
        assert_eq!(full.specs()[9].total_accesses(), 169_115_076); // streamcluster
    }

    #[test]
    fn stacked_bar_total() {
        let bar = StackedBar {
            workload: "w".into(),
            components: vec![("a".into(), 0.25), ("b".into(), 0.5)],
        };
        assert!((bar.total() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn write_json_respects_missing_out_dir() {
        let o = SuiteOptions::default();
        assert_eq!(o.write_json("x", &42).unwrap(), None);
    }

    #[test]
    fn write_json_writes_to_dir() {
        let dir = std::env::temp_dir().join("hybridmem-bench-test");
        let o = SuiteOptions {
            out_dir: Some(dir.clone()),
            ..SuiteOptions::default()
        };
        let path = o.write_json("sample", &vec![1, 2, 3]).unwrap().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains('1'));
        let _ = fs::remove_file(path);
    }
}
