//! Shared harness for the figure/table regenerators and Criterion
//! benchmarks.
//!
//! Every exhibit of the paper has a binary in `src/bin/` (see `DESIGN.md`
//! §4 for the index). All binaries accept the same flags:
//!
//! ```text
//! --cap N             max accesses per workload (default 1_000_000; 0 = full scale)
//! --seed N            trace generator seed (default 42)
//! --out DIR           also write machine-readable JSON results into DIR
//! --threads N         worker threads for the evaluation matrix (default 0 = auto)
//! --metrics-out FILE  write per-window interval records as JSONL
//! --metrics-window N  accesses per metrics window (default 10_000; 0 = one window)
//! --ledger-out FILE   write per-page journey ledgers as JSONL (one report per cell)
//! --ledger-top N      detailed pages retained per ledger (default 64)
//! --profile-out FILE  write a Chrome trace-event span profile (Perfetto-loadable)
//! --audit-out FILE    attach the run-health audit to every cell and write its
//!                     hybridmem-audit-v1 report (non-zero exit on violations)
//! --flight-out FILE   ride a black-box flight recorder on every cell and
//!                     write the hybridmem-flight-v1 dump (byte-identical at
//!                     any --threads count)
//! --flight-events N   events retained per cell's flight ring (default 256)
//! --resume FILE       journal completed cells to FILE (fsynced, checksummed)
//!                     and skip cells already journaled, so a killed run
//!                     resumes byte-identically; incompatible with the
//!                     streaming instrumentation outputs, but --flight-out is
//!                     allowed (journaled cells replay without a black box;
//!                     quarantined cells still dump theirs)
//! ```
//!
//! Tables are printed in the same row/series layout the paper uses, with
//! `G-Mean` and `A-Mean` columns matching the figures' summary bars.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reference;

use std::fs;
use std::path::{Path, PathBuf};

use hybridmem_core::{
    arith_mean, compare_policies_instrumented, compare_policies_isolated, compare_policies_timed,
    geo_mean, matrix_fingerprint, write_audit_json, write_flight_json, write_jsonl,
    write_ledger_jsonl, AuditMatrixReport, AuditOptions, CellOutcome, CellStatus, ExperimentConfig,
    FaultPlan, FlightMatrixReport, FlightOptions, FlightRecord, Instrumentation, LedgerOptions,
    MatrixTiming, PolicyKind, RunJournal, SimulationReport, TraceCache, TraceCacheStats,
};
use hybridmem_metrics::{MetricsRegistry, MetricsSnapshot, SpanProfiler};
use hybridmem_trace::{parsec, WorkloadSpec};
use hybridmem_types::{Error, Result};
use serde::Serialize;

/// Command-line options shared by every regenerator binary.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Maximum accesses per workload (`0` disables capping).
    pub cap: u64,
    /// Trace generator seed.
    pub seed: u64,
    /// Directory for machine-readable JSON results, when given.
    pub out_dir: Option<PathBuf>,
    /// Worker threads for the evaluation matrix (`0` = one per available
    /// hardware thread).
    pub threads: usize,
    /// When given, [`SuiteOptions::run_matrix`] attaches a windowed
    /// collector to every cell and writes the interval records here as
    /// JSON Lines (spec-major, policies in `kinds` order).
    pub metrics_out: Option<PathBuf>,
    /// Accesses per metrics window (`0` = one whole-run window per cell).
    pub metrics_window: u64,
    /// When given, [`SuiteOptions::run_matrix`] attaches a page ledger to
    /// every cell and writes the journey reports here as JSON Lines
    /// (spec-major, policies in `kinds` order).
    pub ledger_out: Option<PathBuf>,
    /// Detailed pages retained per ledger report.
    pub ledger_top: usize,
    /// When given, [`SuiteOptions::run_matrix`] records harness spans and
    /// writes them here as Chrome trace-event JSON (Perfetto-loadable).
    /// Wall-clock: a measurement artefact, never compared for determinism.
    pub profile_out: Option<PathBuf>,
    /// When given, [`SuiteOptions::run_matrix`] attaches a run-health
    /// audit to every cell and writes the `hybridmem-audit-v1` aggregate
    /// here, failing the run when any invariant is violated.
    pub audit_out: Option<PathBuf>,
    /// When given, [`SuiteOptions::run_matrix`] rides a bounded black-box
    /// flight recorder on every cell and writes the `hybridmem-flight-v1`
    /// dump here (byte-identical at any `--threads` count). On the
    /// `--resume` path only quarantined cells carry a black box —
    /// journaled cells replay their reports without re-running.
    pub flight_out: Option<PathBuf>,
    /// Events retained per cell's flight-recorder ring.
    pub flight_events: usize,
    /// When given, [`SuiteOptions::run_matrix`] journals each completed
    /// cell here (fsynced, checksummed) and skips cells the journal
    /// already holds, so a killed or faulted run resumes with
    /// byte-identical reports. Incompatible with the streaming
    /// instrumentation outputs (journaled cells replay reports without
    /// re-running); `--flight-out` is allowed because a flight dump only
    /// captures freshly simulated failures.
    pub resume: Option<PathBuf>,
}

impl SuiteOptions {
    /// Default cap used by the regenerators: large enough for stable
    /// steady-state statistics, small enough to run the full suite in
    /// minutes.
    pub const DEFAULT_CAP: u64 = 1_000_000;

    /// Parses `--cap`, `--seed`, and `--out` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn from_args() -> Self {
        let mut options = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = || {
                args.next()
                    .unwrap_or_else(|| panic!("flag {flag} requires a value"))
            };
            match flag.as_str() {
                "--cap" => options.cap = value().parse().expect("--cap expects an integer"),
                "--seed" => options.seed = value().parse().expect("--seed expects an integer"),
                "--out" => options.out_dir = Some(PathBuf::from(value())),
                "--threads" => {
                    options.threads = value().parse().expect("--threads expects an integer");
                }
                "--metrics-out" => options.metrics_out = Some(PathBuf::from(value())),
                "--metrics-window" => {
                    options.metrics_window = value()
                        .parse()
                        .expect("--metrics-window expects an integer");
                }
                "--ledger-out" => options.ledger_out = Some(PathBuf::from(value())),
                "--ledger-top" => {
                    options.ledger_top = value().parse().expect("--ledger-top expects an integer");
                }
                "--profile-out" => options.profile_out = Some(PathBuf::from(value())),
                "--audit-out" => options.audit_out = Some(PathBuf::from(value())),
                "--flight-out" => options.flight_out = Some(PathBuf::from(value())),
                "--flight-events" => {
                    options.flight_events =
                        value().parse().expect("--flight-events expects an integer");
                }
                "--resume" => options.resume = Some(PathBuf::from(value())),
                other => {
                    panic!(
                        "unknown flag {other}; expected \
                         --cap/--seed/--out/--threads/--metrics-out/--metrics-window\
                         /--ledger-out/--ledger-top/--profile-out/--audit-out\
                         /--flight-out/--flight-events/--resume"
                    );
                }
            }
        }
        // A zero-sized retention knob would silently produce an empty
        // artefact; fail loudly at the door instead (`--metrics-window 0`
        // stays legal — it means one whole-run window).
        assert!(
            options.ledger_top > 0,
            "--ledger-top must retain at least 1 page"
        );
        assert!(
            options.flight_events > 0,
            "--flight-events must retain at least 1 event"
        );
        options
    }

    /// The experiment configuration for these options.
    #[must_use]
    pub fn config(&self) -> ExperimentConfig {
        ExperimentConfig {
            seed: self.seed,
            ..ExperimentConfig::date2016()
        }
    }

    /// All 12 PARSEC specs, capped per the options.
    #[must_use]
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        parsec::all_specs()
            .into_iter()
            .map(|spec| {
                if self.cap == 0 {
                    spec
                } else {
                    spec.capped(self.cap)
                }
            })
            .collect()
    }

    /// Runs `kinds` over all 12 workloads on the work-stealing cell pool
    /// (`--threads` workers; 0 = auto), then records the run's throughput
    /// into `throughput.json` (see [`ThroughputSummary`]) so successive
    /// runs leave a perf trajectory.
    ///
    /// # Errors
    ///
    /// Propagates the first failing simulation.
    pub fn run_matrix(
        &self,
        kinds: &[PolicyKind],
    ) -> Result<Vec<(WorkloadSpec, Vec<SimulationReport>)>> {
        let specs = self.specs();
        let config = self.config();
        let instrumentation = self.instrumentation();
        let profiler = self.profile_out.as_ref().map(|_| SpanProfiler::new());
        if let Some(journal_path) = &self.resume {
            // `--flight-out` is deliberately exempt: a flight dump only
            // captures freshly simulated failures, so journal replay
            // cannot make it lie — CI's chaos job relies on combining
            // the two. The streaming outputs would be incomplete.
            let streaming = Instrumentation {
                flight: None,
                ..instrumentation
            };
            if !streaming.is_empty() || profiler.is_some() {
                return Err(Error::invalid_input(
                    "--resume cannot be combined with --metrics-out/--ledger-out\
                     /--profile-out/--audit-out: journaled cells replay their reports \
                     without re-running, so instrumentation streams would be incomplete",
                ));
            }
            return self.run_matrix_journaled(kinds, &specs, &config, journal_path);
        }
        let (rows, timing, cell_metrics) = if instrumentation.is_empty() && profiler.is_none() {
            let (rows, timing) = compare_policies_timed(&specs, kinds, &config, self.threads)?;
            (rows, timing, None)
        } else {
            let (cells, timing) = compare_policies_instrumented(
                &specs,
                kinds,
                &config,
                self.threads,
                instrumentation,
                profiler.as_ref(),
            )?;
            let (rows, aggregate) = self.write_instrumented_outputs(cells)?;
            (rows, timing, aggregate)
        };
        if let (Some(path), Some(profiler)) = (&self.profile_out, &profiler) {
            let mut writer = create_jsonl_writer(path)?;
            profiler
                .write_chrome_trace(&mut writer)
                .and_then(|()| std::io::Write::flush(&mut writer))
                .map_err(|e| Error::invalid_input(format!("write {}: {e}", path.display())))?;
            println!("wrote span profile to {}", path.display());
        }
        let mut summary = ThroughputSummary::from_matrix(&specs, kinds, &timing);
        summary.trace_cache = TraceCache::global().stats();
        summary.metrics = Self::aggregate_metrics(&timing, cell_metrics);
        self.write_throughput(&summary);
        Ok(specs.into_iter().zip(rows).collect())
    }

    /// The `--resume` path of [`SuiteOptions::run_matrix`]: cells run on
    /// the isolating scheduler (panics retried, then quarantined),
    /// completed cells land in the journal as they finish, and cells the
    /// journal already holds replay their reports without re-running.
    /// Failures leave the other cells journaled and exit non-zero, so the
    /// very same invocation resumes the run. With `--flight-out`, every
    /// quarantined cell's black box lands in the dump — written *before*
    /// the failure verdict, so CI uploads the evidence even when the run
    /// exits non-zero.
    fn run_matrix_journaled(
        &self,
        kinds: &[PolicyKind],
        specs: &[WorkloadSpec],
        config: &ExperimentConfig,
        journal_path: &Path,
    ) -> Result<Vec<(WorkloadSpec, Vec<SimulationReport>)>> {
        let journal = RunJournal::open(journal_path, matrix_fingerprint(specs, kinds, config))?;
        if journal.torn_tail_bytes() > 0 {
            eprintln!(
                "warning: resume journal had {} byte(s) of torn or corrupt tail truncated; \
                 the cells recorded there will be recomputed",
                journal.torn_tail_bytes()
            );
        }
        let fault_plan = FaultPlan::from_env()?;
        let flight = self
            .flight_out
            .as_ref()
            .map(|_| FlightOptions::with_events(self.flight_events));
        let (mut outcomes, health, timing) = compare_policies_isolated(
            specs,
            kinds,
            config,
            self.threads,
            fault_plan.as_ref(),
            Some(&journal),
            flight,
        );
        let mut summary = ThroughputSummary::from_matrix(specs, kinds, &timing);
        summary.trace_cache = TraceCache::global().stats();
        summary.metrics = Self::aggregate_metrics(&timing, None);
        self.write_throughput(&summary);
        if let Some(path) = &self.flight_out {
            let flights: Vec<FlightRecord> = outcomes
                .iter_mut()
                .flat_map(|row| row.iter_mut())
                .filter_map(|outcome| match outcome {
                    CellOutcome::Failed { flight, .. } => flight.take().map(|record| *record),
                    CellOutcome::Ok { .. } => None,
                })
                .collect();
            write_flight_dump(path, flights)?;
        }
        if health.failed_cells > 0 {
            for cell in health
                .cells
                .iter()
                .filter(|c| c.status == CellStatus::Failed)
            {
                eprintln!(
                    "cell {}/{} failed after {} retries: {}",
                    cell.workload,
                    cell.policy,
                    cell.retries,
                    cell.error.as_deref().unwrap_or("unknown error")
                );
            }
            return Err(Error::invalid_input(format!(
                "{} of {} cells failed; completed cells are journaled in {} — rerun \
                 with --resume to recompute only the failures",
                health.failed_cells,
                health.total_cells,
                journal_path.display()
            )));
        }
        let rows = outcomes
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(CellOutcome::into_result)
                    .collect::<Result<Vec<_>>>()
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(specs.iter().cloned().zip(rows).collect())
    }

    /// Which sinks [`SuiteOptions::run_matrix`] attaches to every cell,
    /// derived from the output flags: a window when `--metrics-out` was
    /// given, a ledger when `--ledger-out` was, a run-health audit when
    /// `--audit-out` was, a flight recorder when `--flight-out` was.
    #[must_use]
    pub fn instrumentation(&self) -> Instrumentation {
        let mut instrumentation = Instrumentation::default();
        if self.metrics_out.is_some() {
            instrumentation.window = Some(self.metrics_window);
        }
        if self.ledger_out.is_some() {
            instrumentation = instrumentation.with_ledger(LedgerOptions {
                top_k: self.ledger_top,
                ..LedgerOptions::default()
            });
        }
        if self.audit_out.is_some() {
            instrumentation = instrumentation.with_audit(AuditOptions::default());
        }
        if self.flight_out.is_some() {
            instrumentation =
                instrumentation.with_flight(FlightOptions::with_events(self.flight_events));
        }
        instrumentation
    }

    /// Writes each requested JSONL artefact — interval records to
    /// `--metrics-out`, ledger reports to `--ledger-out` — cell by cell
    /// (spec-major, policies in `kinds` order — the matrix's own order),
    /// returning the plain report rows plus the merged cell metrics when
    /// interval metrics ran.
    ///
    /// Unlike `throughput.json`, an unwritable artefact is a hard error:
    /// the caller asked for it explicitly.
    fn write_instrumented_outputs(
        &self,
        cells: Vec<Vec<hybridmem_core::InstrumentedRun>>,
    ) -> Result<(Vec<Vec<SimulationReport>>, Option<MetricsSnapshot>)> {
        let mut metrics_writer = match &self.metrics_out {
            Some(path) => Some((create_jsonl_writer(path)?, path)),
            None => None,
        };
        let mut ledger_writer = match &self.ledger_out {
            Some(path) => Some((create_jsonl_writer(path)?, path)),
            None => None,
        };
        let mut aggregate = self.metrics_out.is_some().then(MetricsSnapshot::default);
        let mut audit_cells = self.audit_out.as_ref().map(|_| Vec::new());
        let mut flight_cells = self.flight_out.as_ref().map(|_| Vec::new());
        let mut rows = Vec::with_capacity(cells.len());
        for row in cells {
            let mut reports = Vec::with_capacity(row.len());
            for mut cell in row {
                if let Some((writer, path)) = &mut metrics_writer {
                    write_jsonl(writer, &cell.records).map_err(|e| {
                        Error::invalid_input(format!("write {}: {e}", path.display()))
                    })?;
                }
                if let Some(aggregate) = &mut aggregate {
                    aggregate.absorb(&cell.metrics);
                }
                if let Some((writer, path)) = &mut ledger_writer {
                    let report = cell.ledger.as_ref().ok_or_else(|| {
                        Error::invalid_input("instrumented cell lost its page ledger")
                    })?;
                    write_ledger_jsonl(writer, report).map_err(|e| {
                        Error::invalid_input(format!("write {}: {e}", path.display()))
                    })?;
                }
                if let Some(audit_cells) = &mut audit_cells {
                    audit_cells.push(cell.audit.clone().ok_or_else(|| {
                        Error::invalid_input("instrumented cell lost its audit sink")
                    })?);
                }
                if let Some(flight_cells) = &mut flight_cells {
                    flight_cells.push(cell.flight.take().ok_or_else(|| {
                        Error::invalid_input("instrumented cell lost its flight recorder")
                    })?);
                }
                reports.push(cell.report);
            }
            rows.push(reports);
        }
        if let Some((writer, path)) = &mut metrics_writer {
            std::io::Write::flush(writer)
                .map_err(|e| Error::invalid_input(format!("write {}: {e}", path.display())))?;
            println!("wrote interval metrics to {}", path.display());
        }
        if let Some((writer, path)) = &mut ledger_writer {
            std::io::Write::flush(writer)
                .map_err(|e| Error::invalid_input(format!("write {}: {e}", path.display())))?;
            println!("wrote page ledger to {}", path.display());
        }
        // The flight dump lands before the audit verdict so a failing run
        // still leaves its black box behind for CI to upload.
        if let (Some(path), Some(cells)) = (&self.flight_out, flight_cells) {
            write_flight_dump(path, cells)?;
        }
        if let (Some(path), Some(cells)) = (&self.audit_out, audit_cells) {
            let matrix = AuditMatrixReport::new(cells);
            let mut writer = create_jsonl_writer(path)?;
            write_audit_json(&mut writer, &matrix)
                .and_then(|()| std::io::Write::flush(&mut writer))
                .map_err(|e| Error::invalid_input(format!("write {}: {e}", path.display())))?;
            println!("wrote audit report to {}", path.display());
            // Written before the verdict so CI uploads the evidence even
            // when the gate trips.
            if !matrix.clean {
                return Err(Error::invalid_input(format!(
                    "run-health audit found {} invariant violation(s); see {}",
                    matrix.total_violations,
                    path.display()
                )));
            }
        }
        Ok((rows, aggregate))
    }

    /// Merges scheduler telemetry, trace-cache counters, and (when the
    /// observed path ran) the per-cell collector metrics into one snapshot.
    fn aggregate_metrics(
        timing: &MatrixTiming,
        cell_metrics: Option<MetricsSnapshot>,
    ) -> MetricsSnapshot {
        let mut registry = MetricsRegistry::new();
        registry.add(
            "scheduler.cells",
            timing.cells_per_worker.iter().sum::<u64>(),
        );
        #[allow(clippy::cast_precision_loss)]
        {
            registry.set_gauge("scheduler.workers", timing.workers as f64);
            registry.set_gauge("scheduler.peak_in_flight", timing.peak_in_flight as f64);
        }
        registry.set_gauge("scheduler.wall_seconds", timing.wall_seconds);
        for &count in &timing.cells_per_worker {
            registry.observe("scheduler.cells_per_worker", count);
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        for seconds in timing.cell_seconds.iter().flatten() {
            registry.observe("scheduler.cell_micros", (seconds * 1e6).max(0.0) as u64);
        }
        TraceCache::global().export_into(&mut registry);
        let mut snapshot = registry.snapshot();
        if let Some(cells) = cell_metrics {
            snapshot.absorb(&cells);
        }
        snapshot
    }

    /// Writes the throughput summary to `<out_dir or "results">/throughput.json`.
    ///
    /// Best-effort: a read-only working directory must not fail an exhibit
    /// regeneration, so failures are reported on stderr and swallowed.
    fn write_throughput(&self, summary: &ThroughputSummary) {
        let dir = self
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("results"));
        let path = dir.join("throughput.json");
        let result = fs::create_dir_all(&dir)
            .map_err(|e| format!("mkdir {dir:?}: {e}"))
            .and_then(|()| {
                serde_json::to_string_pretty(summary).map_err(|e| format!("serialize: {e}"))
            })
            .and_then(|json| fs::write(&path, json).map_err(|e| format!("write {path:?}: {e}")));
        match result {
            Ok(()) => println!(
                "throughput: {:.0} accesses/sec on {} threads (wrote {})",
                summary.accesses_per_second,
                summary.workers,
                path.display()
            ),
            Err(e) => eprintln!("warning: could not record throughput: {e}"),
        }
    }

    /// Writes `value` as pretty JSON into `out_dir/name.json` when an
    /// output directory was requested. Returns the path written, if any.
    ///
    /// # Errors
    ///
    /// Returns [`hybridmem_types::Error::InvalidInput`] on I/O failures.
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) -> Result<Option<PathBuf>> {
        let Some(dir) = &self.out_dir else {
            return Ok(None);
        };
        fs::create_dir_all(dir)
            .map_err(|e| hybridmem_types::Error::invalid_input(format!("mkdir {dir:?}: {e}")))?;
        let path = dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| hybridmem_types::Error::invalid_input(format!("serialize: {e}")))?;
        fs::write(&path, json)
            .map_err(|e| hybridmem_types::Error::invalid_input(format!("write {path:?}: {e}")))?;
        Ok(Some(path))
    }
}

impl Default for SuiteOptions {
    fn default() -> Self {
        Self {
            cap: Self::DEFAULT_CAP,
            seed: 42,
            out_dir: None,
            threads: 0,
            metrics_out: None,
            metrics_window: 10_000,
            ledger_out: None,
            ledger_top: 64,
            profile_out: None,
            audit_out: None,
            flight_out: None,
            flight_events: 256,
            resume: None,
        }
    }
}

/// Writes a `hybridmem-flight-v1` dump to `path` — always, even when
/// `cells` is empty, so CI can assert on the artefact's presence.
fn write_flight_dump(path: &Path, cells: Vec<FlightRecord>) -> Result<()> {
    let matrix = FlightMatrixReport::new(cells);
    let mut writer = create_jsonl_writer(path)?;
    write_flight_json(&mut writer, &matrix)
        .and_then(|()| std::io::Write::flush(&mut writer))
        .map_err(|e| Error::invalid_input(format!("write {}: {e}", path.display())))?;
    println!("wrote flight recorder dump to {}", path.display());
    Ok(())
}

/// Creates a buffered writer for an explicitly requested JSONL artefact.
fn create_jsonl_writer(path: &Path) -> Result<std::io::BufWriter<fs::File>> {
    let file = fs::File::create(path)
        .map_err(|e| Error::invalid_input(format!("cannot create {}: {e}", path.display())))?;
    Ok(std::io::BufWriter::new(file))
}

/// Throughput of one policy across the whole matrix run.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyThroughput {
    /// Policy name (stable, as in reports).
    pub policy: String,
    /// Total trace accesses simulated under this policy (warmup included).
    pub accesses: u64,
    /// Worker-seconds spent in this policy's cells.
    pub seconds: f64,
    /// `accesses / seconds`.
    pub accesses_per_second: f64,
}

/// One matrix run's throughput record, written to
/// `results/throughput.json` by [`SuiteOptions::run_matrix`] so future
/// changes can track the perf trajectory (`BENCH_*.json` style).
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputSummary {
    /// Worker threads the cell pool used.
    pub workers: usize,
    /// End-to-end wall-clock of the matrix, seconds.
    pub wall_seconds: f64,
    /// Total trace accesses simulated across every cell.
    pub total_accesses: u64,
    /// `total_accesses / wall_seconds` — the headline number.
    pub accesses_per_second: f64,
    /// Per-policy breakdown (worker-seconds, not wall-clock).
    pub per_policy: Vec<PolicyThroughput>,
    /// Shared trace-cache statistics at the end of the run
    /// ([`TraceCache::stats`]).
    pub trace_cache: TraceCacheStats,
    /// Aggregated metrics: scheduler telemetry, trace-cache counters, and
    /// — when `--metrics-out` ran the observed path — the merged per-cell
    /// collector metrics.
    pub metrics: MetricsSnapshot,
}

impl ThroughputSummary {
    /// Derives the summary from a timed matrix run.
    #[must_use]
    pub fn from_matrix(
        specs: &[WorkloadSpec],
        kinds: &[PolicyKind],
        timing: &MatrixTiming,
    ) -> Self {
        #[allow(clippy::cast_precision_loss)]
        let per_policy: Vec<PolicyThroughput> = kinds
            .iter()
            .enumerate()
            .map(|(kind_index, kind)| {
                let accesses: u64 = specs.iter().map(WorkloadSpec::total_accesses).sum();
                let seconds: f64 = timing.cell_seconds.iter().map(|row| row[kind_index]).sum();
                PolicyThroughput {
                    policy: kind.name().to_owned(),
                    accesses,
                    seconds,
                    accesses_per_second: if seconds > 0.0 {
                        accesses as f64 / seconds
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let total_accesses: u64 = per_policy.iter().map(|p| p.accesses).sum();
        #[allow(clippy::cast_precision_loss)]
        let accesses_per_second = if timing.wall_seconds > 0.0 {
            total_accesses as f64 / timing.wall_seconds
        } else {
            0.0
        };
        Self {
            workers: timing.workers,
            wall_seconds: timing.wall_seconds,
            total_accesses,
            accesses_per_second,
            per_policy,
            trace_cache: TraceCacheStats::default(),
            metrics: MetricsSnapshot::default(),
        }
    }
}

/// One stacked bar of a figure: a workload's component values.
#[derive(Debug, Clone, Serialize)]
pub struct StackedBar {
    /// Workload (x-axis label).
    pub workload: String,
    /// `(component name, value)` pairs, in legend order.
    pub components: Vec<(String, f64)>,
}

impl StackedBar {
    /// Total height of the bar.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.components.iter().map(|(_, v)| v).sum()
    }
}

/// Prints a figure as a table: one row per workload, one column per
/// component, plus a total column and G-Mean / A-Mean rows over totals —
/// the same summary bars the paper appends to each figure.
pub fn print_stacked_figure(title: &str, bars: &[StackedBar]) {
    println!("\n=== {title} ===");
    let components: Vec<&str> = bars.first().map_or_else(Vec::new, |b| {
        b.components.iter().map(|(n, _)| n.as_str()).collect()
    });
    print!("{:<16}", "workload");
    for name in &components {
        print!(" {name:>12}");
    }
    println!(" {:>12}", "total");
    for bar in bars {
        print!("{:<16}", bar.workload);
        for (_, value) in &bar.components {
            print!(" {value:>12.4}");
        }
        println!(" {:>12.4}", bar.total());
    }
    let totals: Vec<f64> = bars.iter().map(StackedBar::total).collect();
    if totals.iter().all(|&t| t > 0.0) && !totals.is_empty() {
        let pad = components.len() * 13;
        println!("{:<16}{:pad$} {:>12.4}", "G-Mean", "", geo_mean(&totals));
        println!("{:<16}{:pad$} {:>12.4}", "A-Mean", "", arith_mean(&totals));
    }
}

/// Prints a grouped figure (left/right bars per workload, like Fig. 4):
/// each group is a labelled set of stacked bars over the same workloads.
pub fn print_grouped_figure(title: &str, groups: &[(&str, Vec<StackedBar>)]) {
    println!("\n=== {title} ===");
    for (label, bars) in groups {
        print_stacked_figure(&format!("{title} — {label}"), bars);
    }
}

/// Re-exported so the binaries can keep their imports terse.
pub use hybridmem_core as core_api;

pub use reference::ReferenceTwoLru;

/// Convenience: indexes a report row by policy name.
///
/// # Panics
///
/// Panics when the policy is missing from the row — regenerator binaries
/// always request the policies they index.
#[must_use]
pub fn report<'a>(row: &'a [SimulationReport], policy: &str) -> &'a SimulationReport {
    row.iter()
        .find(|r| r.policy == policy)
        .unwrap_or_else(|| panic!("policy {policy} missing from report row"))
}

/// Marks `path` (if any) on stdout so users can find the JSON artefacts.
pub fn announce_json(path: Option<&Path>) {
    if let Some(path) = path {
        println!("\nwrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let o = SuiteOptions::default();
        assert_eq!(o.cap, SuiteOptions::DEFAULT_CAP);
        assert_eq!(o.seed, 42);
        assert!(o.out_dir.is_none());
        assert_eq!(o.threads, 0, "auto thread count by default");
        assert!(o.metrics_out.is_none(), "metrics are opt-in");
        assert_eq!(o.metrics_window, 10_000);
        assert!(o.ledger_out.is_none(), "the ledger is opt-in");
        assert_eq!(o.ledger_top, 64);
        assert!(o.profile_out.is_none(), "profiling is opt-in");
        assert!(o.audit_out.is_none(), "the audit artefact is opt-in");
        assert!(o.flight_out.is_none(), "the flight recorder is opt-in");
        assert_eq!(o.flight_events, 256);
        assert!(o.resume.is_none(), "the resume journal is opt-in");
        assert!(
            o.instrumentation().is_empty(),
            "no flags must mean no sinks"
        );
        assert_eq!(o.config().seed, 42);
    }

    #[test]
    fn instrumentation_follows_the_output_flags() {
        let o = SuiteOptions {
            metrics_out: Some(PathBuf::from("m.jsonl")),
            ledger_out: Some(PathBuf::from("l.jsonl")),
            ledger_top: 8,
            metrics_window: 500,
            audit_out: Some(PathBuf::from("audit.json")),
            flight_out: Some(PathBuf::from("flight.json")),
            flight_events: 32,
            ..SuiteOptions::default()
        };
        let instrumentation = o.instrumentation();
        assert_eq!(instrumentation.window, Some(500));
        assert_eq!(
            instrumentation.ledger.map(|l| l.top_k),
            Some(8),
            "--ledger-top must reach the ledger options"
        );
        assert_eq!(
            instrumentation.audit,
            Some(AuditOptions::default()),
            "--audit-out must attach the audit sink"
        );
        assert_eq!(
            instrumentation.flight,
            Some(FlightOptions::with_events(32)),
            "--flight-events must size the flight ring"
        );
    }

    #[test]
    fn throughput_summary_math() {
        let specs = vec![
            parsec::spec("bodytrack").unwrap().capped(1_000),
            parsec::spec("raytrace").unwrap().capped(1_000),
        ];
        let kinds = [PolicyKind::TwoLru, PolicyKind::DramOnly];
        let timing = MatrixTiming {
            wall_seconds: 2.0,
            workers: 4,
            cell_seconds: vec![vec![0.5, 0.25], vec![0.5, 0.25]],
            cells_per_worker: vec![1, 1, 1, 1],
            peak_in_flight: 3,
        };
        let summary = ThroughputSummary::from_matrix(&specs, &kinds, &timing);
        let per_policy_accesses: u64 = specs.iter().map(WorkloadSpec::total_accesses).sum();
        assert_eq!(summary.workers, 4);
        assert_eq!(summary.total_accesses, per_policy_accesses * 2);
        assert_eq!(summary.per_policy.len(), 2);
        assert_eq!(summary.per_policy[0].policy, "two-lru");
        assert!((summary.per_policy[0].seconds - 1.0).abs() < 1e-12);
        assert!((summary.per_policy[1].seconds - 0.5).abs() < 1e-12);
        #[allow(clippy::cast_precision_loss)]
        let expected = per_policy_accesses as f64 / 1.0;
        assert!((summary.per_policy[0].accesses_per_second - expected).abs() < 1e-6);
        #[allow(clippy::cast_precision_loss)]
        let headline = (per_policy_accesses * 2) as f64 / 2.0;
        assert!((summary.accesses_per_second - headline).abs() < 1e-6);
    }

    #[test]
    fn aggregate_metrics_carries_scheduler_telemetry() {
        let timing = MatrixTiming {
            wall_seconds: 2.0,
            workers: 4,
            cell_seconds: vec![vec![0.5, 0.25], vec![0.5, 0.25]],
            cells_per_worker: vec![2, 1, 1, 0],
            peak_in_flight: 3,
        };
        let snapshot = SuiteOptions::aggregate_metrics(&timing, None);
        assert_eq!(snapshot.counters["scheduler.cells"], 4);
        assert!((snapshot.gauges["scheduler.workers"] - 4.0).abs() < f64::EPSILON);
        assert!((snapshot.gauges["scheduler.peak_in_flight"] - 3.0).abs() < f64::EPSILON);
        let per_worker = &snapshot.histograms["scheduler.cells_per_worker"];
        assert_eq!(per_worker.count, 4);
        assert_eq!(per_worker.sum, 4);
        let micros = &snapshot.histograms["scheduler.cell_micros"];
        assert_eq!(micros.count, 4);
        assert_eq!(micros.sum, 1_500_000);

        // Cell metrics absorb on top of the scheduler's.
        let mut registry = MetricsRegistry::new();
        registry.add("sim.accesses", 10);
        let merged = SuiteOptions::aggregate_metrics(&timing, Some(registry.snapshot()));
        assert_eq!(merged.counters["sim.accesses"], 10);
        assert_eq!(merged.counters["scheduler.cells"], 4);
    }

    #[test]
    fn resume_journal_replays_the_matrix_byte_identically() {
        let dir = std::env::temp_dir().join("hybridmem-bench-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("run.hmjournal");
        let _ = fs::remove_file(&journal);
        let options = SuiteOptions {
            cap: 2_000,
            out_dir: Some(dir.clone()),
            resume: Some(journal.clone()),
            threads: 2,
            ..SuiteOptions::default()
        };
        let first = options.run_matrix(&[PolicyKind::TwoLru]).unwrap();
        // Every cell is journaled now; the second run replays them all.
        let second = options.run_matrix(&[PolicyKind::TwoLru]).unwrap();
        let rows = |matrix: &[(WorkloadSpec, Vec<SimulationReport>)]| {
            serde_json::to_string(&matrix.iter().map(|(_, row)| row).collect::<Vec<_>>()).unwrap()
        };
        assert_eq!(
            rows(&first),
            rows(&second),
            "journal replay is byte-identical"
        );

        // `--flight-out` is exempt from the resume incompatibility: the
        // journaled replay yields an empty (but valid) flight dump.
        let flight_path = dir.join("flight.json");
        let with_flight = SuiteOptions {
            flight_out: Some(flight_path.clone()),
            ..options.clone()
        };
        with_flight.run_matrix(&[PolicyKind::TwoLru]).unwrap();
        let dump = fs::read_to_string(&flight_path).unwrap();
        assert!(dump.contains("hybridmem-flight-v1"), "{dump}");
        assert!(dump.contains("\"dumped_cells\": 0"), "{dump}");

        let incompatible = SuiteOptions {
            metrics_out: Some(dir.join("m.jsonl")),
            ..options
        };
        let err = incompatible.run_matrix(&[PolicyKind::TwoLru]).unwrap_err();
        assert!(
            err.to_string().contains("--resume cannot be combined"),
            "{err}"
        );
        let _ = fs::remove_file(journal);
        let _ = fs::remove_file(flight_path);
    }

    #[test]
    fn specs_are_capped() {
        let o = SuiteOptions {
            cap: 10_000,
            ..SuiteOptions::default()
        };
        for spec in o.specs() {
            assert!(spec.total_accesses() <= 10_100, "{}", spec.name);
        }
        let full = SuiteOptions {
            cap: 0,
            ..SuiteOptions::default()
        };
        assert_eq!(full.specs()[9].total_accesses(), 169_115_076); // streamcluster
    }

    #[test]
    fn stacked_bar_total() {
        let bar = StackedBar {
            workload: "w".into(),
            components: vec![("a".into(), 0.25), ("b".into(), 0.5)],
        };
        assert!((bar.total() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn write_json_respects_missing_out_dir() {
        let o = SuiteOptions::default();
        assert_eq!(o.write_json("x", &42).unwrap(), None);
    }

    #[test]
    fn write_json_writes_to_dir() {
        let dir = std::env::temp_dir().join("hybridmem-bench-test");
        let o = SuiteOptions {
            out_dir: Some(dir.clone()),
            ..SuiteOptions::default()
        };
        let path = o.write_json("sample", &vec![1, 2, 3]).unwrap().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains('1'));
        let _ = fs::remove_file(path);
    }
}
