//! Numeric-determinism rules for the model and accounting crates.
//!
//! The analytical model (ROADMAP item 2) must stay bit-comparable with
//! the simulator, so the crates that compute or serialize numbers —
//! `core::model`, `core::report`, and all of `metrics` — are held to
//! two extra rules:
//!
//! * `lossy-cast` — an `as` cast to an integer type can silently
//!   truncate or wrap. Use `From`/`TryFrom` (which state the intent and
//!   fail loudly), or annotate the cast with
//!   `// xtask:allow(lossy-cast, why=...)` when it is provably lossless
//!   (e.g. a value clamped to the target range on the previous line).
//! * `float-eq` — `==`/`!=` on floats makes results depend on rounding
//!   mode and operation order. Restructure the comparison (`> 0.0`
//!   guards, `abs() < eps`), or justify with
//!   `// xtask:allow(float-eq, why=...)`.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Lexed, Token, TokenKind};

/// True for files in the numeric-determinism scope.
pub fn in_scope(file: &str) -> bool {
    file == "crates/core/src/model.rs"
        || file == "crates/core/src/report.rs"
        || file.starts_with("crates/metrics/src/")
}

/// Integer cast targets the `lossy-cast` rule watches.
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Idents and literals that mark a comparison as float-valued.
const FLOAT_MARKERS: [&str; 7] = ["f32", "f64", "NAN", "INFINITY", "EPSILON", "is_nan", "abs"];

/// Runs both numeric rules over one in-scope file.
pub fn numeric_violations(file: &str, lexed: &Lexed, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    if !in_scope(file) {
        return;
    }
    lossy_cast(file, lexed, tokens, out);
    float_eq(file, lexed, tokens, out);
}

/// Rule `lossy-cast`: `as <integer type>`.
fn lossy_cast(file: &str, lexed: &Lexed, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("as") {
            continue;
        }
        let Some(ty) = tokens
            .get(i + 1)
            .filter(|n| n.kind == TokenKind::Ident && INT_TYPES.contains(&n.text.as_str()))
        else {
            continue;
        };
        match lexed.allow_why(t.line, "lossy-cast") {
            Some(Some(_)) => {}
            Some(None) => out.push(diag(
                file,
                t,
                "lossy-cast",
                format!(
                    "`as {}` annotation lacks a `why=` justification; state \
                     why the cast cannot lose value",
                    ty.text
                ),
            )),
            None => out.push(diag(
                file,
                t,
                "lossy-cast",
                format!(
                    "`as {}` cast can silently truncate or wrap; use \
                     `From`/`TryFrom`, or `// xtask:allow(lossy-cast, why=...)` \
                     if provably lossless",
                    ty.text
                ),
            )),
        }
    }
}

/// Rule `float-eq`: `==`/`!=` with float evidence nearby.
fn float_eq(file: &str, lexed: &Lexed, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let mut i = 0;
    while i + 1 < tokens.len() {
        let op = &tokens[i];
        let is_cmp = (op.is_punct('=') || op.is_punct('!')) && tokens[i + 1].is_punct('=');
        // `==`/`!=` only: skip `<=`/`>=` (first token is `<`/`>`), and
        // make sure this is not assignment `=` (second `=` required) or
        // the tail of a `==` already matched (advance by 2 below).
        if !is_cmp || !float_evidence(tokens, i) {
            i += 1;
            continue;
        }
        match lexed.allow_why(op.line, "float-eq") {
            Some(Some(_)) => {}
            Some(None) => out.push(diag(
                file,
                op,
                "float-eq",
                "float comparison annotation lacks a `why=` justification".to_owned(),
            )),
            None => out.push(diag(
                file,
                op,
                "float-eq",
                format!(
                    "float `{}=` comparison is rounding-sensitive; compare \
                     against a range (`> 0.0`, `abs() < eps`) or add \
                     `// xtask:allow(float-eq, why=...)`",
                    op.text
                ),
            )),
        }
        i += 2;
    }
}

/// True when an *operand* of the comparison at `op` looks
/// float-valued: a literal with a decimal point or float suffix, a
/// float type name, or a float-only method/constant. Scanning stops at
/// the first token that cannot belong to the operand expression (a
/// keyword, brace, or operator), so `count == 0 { return 0.0; }` does
/// not borrow evidence from the statement after it. An untyped
/// `a != b` over floats is deliberately missed rather than flagging
/// every integer comparison inside a float-returning function.
fn float_evidence(tokens: &[Token], op: usize) -> bool {
    const STOP_KEYWORDS: [&str; 8] = [
        "if",
        "while",
        "return",
        "match",
        "let",
        "else",
        "assert",
        "debug_assert",
    ];
    let is_marker = |t: &Token| match t.kind {
        TokenKind::Number => {
            t.text.contains('.') || t.text.contains("f64") || t.text.contains("f32")
        }
        TokenKind::Ident => FLOAT_MARKERS.contains(&t.text.as_str()),
        TokenKind::Punct => false,
    };
    let in_operand = |t: &Token, puncts: &str| match t.kind {
        TokenKind::Ident => !STOP_KEYWORDS.contains(&t.text.as_str()),
        TokenKind::Number => true,
        TokenKind::Punct => t.text.chars().all(|c| puncts.contains(c)),
    };
    // Left operand: walk back over path/field/call tails.
    let left = tokens[..op]
        .iter()
        .rev()
        .take(8)
        .take_while(|t| in_operand(t, ".)]:"))
        .any(is_marker);
    // Right operand: walk forward over path/field/call heads.
    let right = tokens[(op + 2).min(tokens.len())..]
        .iter()
        .take(8)
        .take_while(|t| in_operand(t, ".([:"))
        .any(is_marker);
    left || right
}

fn diag(file: &str, at: &Token, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_owned(),
        line: at.line,
        col: at.col,
        rule,
        severity: Severity::Deny,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_cfg_test};

    fn check(source: &str) -> Vec<Diagnostic> {
        let lexed = lex(source);
        let tokens = strip_cfg_test(&lexed.tokens);
        let mut out = Vec::new();
        numeric_violations("crates/core/src/model.rs", &lexed, &tokens, &mut out);
        out
    }

    #[test]
    fn int_cast_fires_lossy_cast() {
        let v = check("fn f(x: u64) -> u32 { x as u32 }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lossy-cast");
        assert!(v[0].message.contains("`as u32`"));
    }

    #[test]
    fn justified_cast_is_clean_but_bare_annotation_fires() {
        assert!(check(
            "fn f(x: u64) -> u32 { (x.min(100)) as u32 } // xtask:allow(lossy-cast, why=clamped to 100)"
        )
        .is_empty());
        let bare = check("fn f(x: u64) -> u32 { x as u32 } // xtask:allow(lossy-cast)");
        assert_eq!(bare.len(), 1);
        assert!(bare[0].message.contains("why="));
    }

    #[test]
    fn float_cast_and_from_are_fine() {
        assert!(check("fn f(x: u32) -> f64 { x as f64 }").is_empty());
        assert!(check("fn f(x: u32) -> u64 { u64::from(x) }").is_empty());
    }

    #[test]
    fn float_equality_fires() {
        let v = check("fn f(total: f64) -> f64 { if total == 0.0 { return 0.0; } 1.0 / total }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-eq");
    }

    #[test]
    fn float_inequality_fires() {
        let v = check("fn f(a: f64) -> bool { a != 0.5 }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "float-eq");
    }

    #[test]
    fn integer_equality_is_fine() {
        assert!(check("fn f(a: u64, b: u64) -> bool { a == b && a != 3 }").is_empty());
        // Integer comparison inside a float-returning function: the
        // signature's `f64` is not evidence about the operands.
        assert!(check(
            "fn mean(&self) -> f64 { if self.count == 0 { return 0.0; } self.sum / self.n }"
        )
        .is_empty());
    }

    #[test]
    fn range_guards_are_fine() {
        assert!(check("fn f(t: f64) -> f64 { if t > 0.0 { 1.0 / t } else { 0.0 } }").is_empty());
        assert!(check("fn f(a: f64, b: f64) -> bool { a <= b }").is_empty());
    }

    #[test]
    fn justified_float_eq_is_clean() {
        assert!(check(
            "fn f(a: f64) -> bool { a == 0.0 } // xtask:allow(float-eq, why=exact sentinel written by us)"
        )
        .is_empty());
    }

    #[test]
    fn out_of_scope_files_are_exempt() {
        let lexed = lex("fn f(x: u64) -> u32 { x as u32 }");
        let tokens = strip_cfg_test(&lexed.tokens);
        let mut out = Vec::new();
        numeric_violations("crates/core/src/simulator.rs", &lexed, &tokens, &mut out);
        assert!(out.is_empty());
    }
}
