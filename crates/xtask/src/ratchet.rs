//! The unified ratchet files and their drift checks.
//!
//! Three checked-in files pin measured facts about the workspace, and
//! `cargo xtask lint` fails when any of them drifts from reality **in
//! either direction** — growing the surface without recording it, or
//! shrinking it without claiming credit:
//!
//! * `panic-allowlist.toml` — per-file unwrap/expect/index counts
//!   (parsing lives in [`crate::allowlist`], counting in
//!   [`crate::panic_audit`]).
//! * `atomic-allowlist.toml` — per-file counts of explicit atomic
//!   `Ordering` sites, one column per mode.
//! * `lock-order.toml` — the lock-order manifest: per-function ordered
//!   acquisition edges `"file::fn" = ["a -> b", ...]`, plus a global
//!   cycle check (edge `a -> b` somewhere and `b -> a` elsewhere is a
//!   latent deadlock and fails even when both are recorded).
//!
//! All three regenerate together with `cargo xtask lint
//! --update-allowlists`. Like `panic-allowlist.toml`, the formats are
//! restricted to one shape each so no TOML dependency is needed.

use std::collections::BTreeMap;

use crate::concurrency::OrderingCounts;
use crate::diag::{Diagnostic, Severity};

/// Parses `atomic-allowlist.toml` text.
///
/// # Errors
///
/// Returns a message naming the offending line on any shape violation.
pub fn parse_atomic(text: &str) -> Result<BTreeMap<String, OrderingCounts>, String> {
    let mut out = BTreeMap::new();
    let mut in_files = false;
    for (number, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[files]" {
            in_files = true;
            continue;
        }
        if !in_files {
            return Err(format!(
                "line {}: expected `[files]` before entries, got `{line}`",
                number + 1
            ));
        }
        let (path, counts) = parse_atomic_entry(line)
            .ok_or_else(|| format!("line {}: malformed atomic entry `{line}`", number + 1))?;
        if out.insert(path.clone(), counts).is_some() {
            return Err(format!("line {}: duplicate entry for `{path}`", number + 1));
        }
    }
    Ok(out)
}

/// Parses one `"path" = { relaxed = N, acquire = N, release = N,
/// acqrel = N, seqcst = N }` line.
fn parse_atomic_entry(line: &str) -> Option<(String, OrderingCounts)> {
    let rest = line.strip_prefix('"')?;
    let (path, rest) = rest.split_once('"')?;
    let rest = rest.trim().strip_prefix('=')?.trim();
    let body = rest.strip_prefix('{')?.trim().strip_suffix('}')?.trim();
    let mut counts = OrderingCounts::default();
    let mut seen = [false; 5];
    for part in body.split(',') {
        let (key, value) = part.split_once('=')?;
        let value: usize = value.trim().parse().ok()?;
        let slot = match key.trim() {
            "relaxed" => {
                counts.relaxed = value;
                0
            }
            "acquire" => {
                counts.acquire = value;
                1
            }
            "release" => {
                counts.release = value;
                2
            }
            "acqrel" => {
                counts.acqrel = value;
                3
            }
            "seqcst" => {
                counts.seqcst = value;
                4
            }
            _ => return None,
        };
        if seen[slot] {
            return None;
        }
        seen[slot] = true;
    }
    seen.iter().all(|&s| s).then(|| (path.to_owned(), counts))
}

/// Renders the atomic allowlist (sorted, zero-count files omitted).
pub fn render_atomic(counts: &BTreeMap<String, OrderingCounts>) -> String {
    let mut out = String::from(
        "# Atomic-ordering allowlist, checked by `cargo xtask lint`.\n\
         #\n\
         # Every non-test simulation-crate file with an explicit atomic\n\
         # `Ordering` site is recorded here with exact per-mode counts.\n\
         # The lint fails when a count drifts from reality in either\n\
         # direction; each non-SeqCst site additionally needs an inline\n\
         # `// xtask:allow(atomic-ordering, why=...)` justification.\n\
         # After a deliberate change, regenerate with:\n\
         #\n\
         #     cargo xtask lint --update-allowlists\n\
         \n\
         [files]\n",
    );
    for (path, c) in counts {
        if !c.is_zero() {
            out.push_str(&format!("\"{path}\" = {{ {c} }}\n"));
        }
    }
    out
}

/// Parses `lock-order.toml` text.
///
/// # Errors
///
/// Returns a message naming the offending line on any shape violation.
pub fn parse_lock_order(text: &str) -> Result<BTreeMap<String, Vec<String>>, String> {
    let mut out = BTreeMap::new();
    let mut in_edges = false;
    for (number, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[edges]" {
            in_edges = true;
            continue;
        }
        if !in_edges {
            return Err(format!(
                "line {}: expected `[edges]` before entries, got `{line}`",
                number + 1
            ));
        }
        let (key, edges) = parse_lock_entry(line)
            .ok_or_else(|| format!("line {}: malformed lock-order entry `{line}`", number + 1))?;
        if out.insert(key.clone(), edges).is_some() {
            return Err(format!("line {}: duplicate entry for `{key}`", number + 1));
        }
    }
    Ok(out)
}

/// Parses one `"file::fn" = ["a -> b", "c -> d"]` line.
fn parse_lock_entry(line: &str) -> Option<(String, Vec<String>)> {
    let rest = line.strip_prefix('"')?;
    let (key, rest) = rest.split_once('"')?;
    let rest = rest.trim().strip_prefix('=')?.trim();
    let body = rest.strip_prefix('[')?.trim().strip_suffix(']')?.trim();
    let mut edges = Vec::new();
    if !body.is_empty() {
        for part in body.split(',') {
            let edge = part.trim().strip_prefix('"')?.strip_suffix('"')?;
            if !edge.contains(" -> ") {
                return None;
            }
            edges.push(edge.to_owned());
        }
    }
    (!edges.is_empty()).then(|| (key.to_owned(), edges))
}

/// Renders the lock-order manifest (sorted keys, edge lists as
/// measured).
pub fn render_lock_order(edges: &BTreeMap<String, Vec<String>>) -> String {
    let mut out = String::from(
        "# Lock-order manifest, checked by `cargo xtask lint`.\n\
         #\n\
         # Every function that acquires two or more distinct locks is\n\
         # recorded here with its ordered acquisition edges. The lint\n\
         # fails when an edge appears or disappears without this file\n\
         # being regenerated, and when two recorded edges contradict\n\
         # (`a -> b` somewhere, `b -> a` elsewhere - a latent deadlock).\n\
         # Suppress a false edge (guard dropped before the second\n\
         # acquisition) with `// xtask:allow(lock-order)` on the later\n\
         # site. Regenerate with:\n\
         #\n\
         #     cargo xtask lint --update-allowlists\n\
         \n\
         [edges]\n",
    );
    for (key, list) in edges {
        if list.is_empty() {
            continue;
        }
        let quoted: Vec<String> = list.iter().map(|e| format!("\"{e}\"")).collect();
        out.push_str(&format!("\"{key}\" = [{}]\n", quoted.join(", ")));
    }
    out
}

/// Compares measured atomic counts against the allowlist; drift in
/// either direction produces `atomic-ratchet` diagnostics.
pub fn compare_atomic(
    measured: &BTreeMap<String, OrderingCounts>,
    allowed: &BTreeMap<String, OrderingCounts>,
    out: &mut Vec<Diagnostic>,
) {
    for (file, counts) in measured {
        match allowed.get(file) {
            None if counts.is_zero() => {}
            None => out.push(file_diag(
                file,
                "atomic-ratchet",
                format!(
                    "new explicit atomic orderings ({counts}) not in \
                     atomic-allowlist.toml; if deliberate, run \
                     `cargo xtask lint --update-allowlists`"
                ),
            )),
            Some(entry) if entry == counts => {}
            Some(entry) => out.push(file_diag(
                file,
                "atomic-ratchet",
                format!(
                    "atomic-ordering surface drifted: allowlist records \
                     ({entry}) but the source has ({counts}); update the \
                     allowlist to match"
                ),
            )),
        }
    }
    for file in allowed.keys() {
        let gone = measured.get(file).is_none_or(OrderingCounts::is_zero);
        if gone {
            out.push(file_diag(
                file,
                "atomic-ratchet",
                "stale allowlist entry: file is gone or no longer uses \
                 explicit atomic orderings; remove the entry"
                    .to_owned(),
            ));
        }
    }
}

/// Compares measured lock-order edges against the manifest (drift both
/// directions) and runs the global cycle check over the *measured*
/// edges.
pub fn compare_lock_order(
    measured: &BTreeMap<String, Vec<String>>,
    manifest: &BTreeMap<String, Vec<String>>,
    out: &mut Vec<Diagnostic>,
) {
    for (key, edges) in measured {
        match manifest.get(key) {
            None => out.push(key_diag(
                key,
                "lock-order",
                format!(
                    "unrecorded nested lock acquisition ({}); if the order \
                     is deliberate, run `cargo xtask lint --update-allowlists`",
                    edges.join(", ")
                ),
            )),
            Some(entry) if entry == edges => {}
            Some(entry) => out.push(key_diag(
                key,
                "lock-order",
                format!(
                    "lock-order manifest drifted: recorded [{}] but the \
                     source has [{}]; regenerate the manifest",
                    entry.join(", "),
                    edges.join(", ")
                ),
            )),
        }
    }
    for key in manifest.keys() {
        if !measured.contains_key(key) {
            out.push(key_diag(
                key,
                "lock-order",
                "stale manifest entry: function is gone or no longer \
                 acquires nested locks; remove the entry"
                    .to_owned(),
            ));
        }
    }
    // Cycle check: `a -> b` in one place and `b -> a` in another is a
    // latent deadlock, even when both edges are faithfully recorded.
    let mut seen: BTreeMap<(String, String), &str> = BTreeMap::new();
    for (key, edges) in measured {
        for edge in edges {
            if let Some((a, b)) = edge.split_once(" -> ") {
                seen.entry((a.to_owned(), b.to_owned())).or_insert(key);
            }
        }
    }
    for ((a, b), key) in &seen {
        if a < b {
            if let Some(other) = seen.get(&(b.clone(), a.clone())) {
                out.push(key_diag(
                    key,
                    "lock-order-cycle",
                    format!(
                        "contradictory lock order: `{a} -> {b}` here but \
                         `{b} -> {a}` in {other}; the two call paths can \
                         deadlock"
                    ),
                ));
            }
        }
    }
}

fn file_diag(file: &str, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_owned(),
        line: 1,
        col: 1,
        rule,
        severity: Severity::Deny,
        message,
    }
}

/// A diagnostic anchored to a `file::fn` manifest key: reported
/// against the file part so the span stays clickable.
fn key_diag(key: &str, rule: &'static str, message: String) -> Diagnostic {
    let file = key.split("::").next().unwrap_or(key);
    Diagnostic {
        file: file.to_owned(),
        line: 1,
        col: 1,
        rule,
        severity: Severity::Deny,
        message: format!("[{key}] {message}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_allowlist_round_trips() {
        let counts: BTreeMap<String, OrderingCounts> = [
            (
                "crates/core/src/trace_cache.rs".to_owned(),
                OrderingCounts {
                    relaxed: 14,
                    ..OrderingCounts::default()
                },
            ),
            ("crates/a/src/lib.rs".to_owned(), OrderingCounts::default()),
        ]
        .into();
        let text = render_atomic(&counts);
        let parsed = parse_atomic(&text).unwrap();
        assert_eq!(parsed.len(), 1, "zero-count files are omitted");
        assert_eq!(parsed["crates/core/src/trace_cache.rs"].relaxed, 14);
    }

    #[test]
    fn atomic_allowlist_rejects_malformed_lines() {
        assert!(parse_atomic("[files]\n\"a.rs\" = { relaxed = 1 }").is_err());
        assert!(
            parse_atomic("\"a.rs\" = { relaxed = 1 }").is_err(),
            "no header"
        );
        let dup = "[files]\n\
            \"a.rs\" = { relaxed = 1, acquire = 0, release = 0, acqrel = 0, seqcst = 0 }\n\
            \"a.rs\" = { relaxed = 1, acquire = 0, release = 0, acqrel = 0, seqcst = 0 }";
        assert!(parse_atomic(dup).is_err());
    }

    #[test]
    fn atomic_drift_fires_in_both_directions() {
        let mk = |relaxed| OrderingCounts {
            relaxed,
            ..OrderingCounts::default()
        };
        let measured: BTreeMap<String, OrderingCounts> =
            [("a.rs".to_owned(), mk(2)), ("b.rs".to_owned(), mk(1))].into();
        let allowed: BTreeMap<String, OrderingCounts> =
            [("b.rs".to_owned(), mk(3)), ("c.rs".to_owned(), mk(1))].into();
        let mut out = Vec::new();
        compare_atomic(&measured, &allowed, &mut out);
        let files: Vec<&str> = out.iter().map(|d| d.file.as_str()).collect();
        assert_eq!(files, vec!["a.rs", "b.rs", "c.rs"]);
        assert!(out.iter().all(|d| d.rule == "atomic-ratchet"));
    }

    #[test]
    fn lock_order_manifest_round_trips() {
        let edges: BTreeMap<String, Vec<String>> = [(
            "crates/core/src/x.rs::S::both".to_owned(),
            vec!["a -> b".to_owned(), "a -> c".to_owned()],
        )]
        .into();
        let text = render_lock_order(&edges);
        let parsed = parse_lock_order(&text).unwrap();
        assert_eq!(parsed, edges);
    }

    #[test]
    fn lock_order_drift_fires_in_both_directions() {
        let mk = |s: &str| vec![s.to_owned()];
        let measured: BTreeMap<String, Vec<String>> = [
            ("x.rs::f".to_owned(), mk("a -> b")),
            ("x.rs::g".to_owned(), mk("a -> c")),
        ]
        .into();
        let manifest: BTreeMap<String, Vec<String>> = [
            ("x.rs::f".to_owned(), mk("a -> b")),
            ("x.rs::h".to_owned(), mk("d -> e")),
        ]
        .into();
        let mut out = Vec::new();
        compare_lock_order(&measured, &manifest, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("x.rs::g"), "unrecorded edge");
        assert!(out[1].message.contains("x.rs::h"), "stale entry");
    }

    #[test]
    fn contradictory_edges_are_a_cycle() {
        let measured: BTreeMap<String, Vec<String>> = [
            ("x.rs::f".to_owned(), vec!["a -> b".to_owned()]),
            ("y.rs::g".to_owned(), vec!["b -> a".to_owned()]),
        ]
        .into();
        let mut out = Vec::new();
        compare_lock_order(&measured, &measured, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "lock-order-cycle");
        assert!(out[0].message.contains("deadlock"));
    }
}
