//! A lossy Rust lexer for static analysis.
//!
//! Produces a token stream of identifiers, numbers, and single-character
//! punctuation, each carrying a full source span (1-based line and
//! column plus the starting byte offset). Comments and every kind of
//! literal (strings, raw strings, byte strings, chars) are stripped, so
//! rules never false-positive on prose; `xtask:allow(rule)` annotations
//! inside comments are collected so legitimate sites can opt out of a
//! rule (see [`Lexed::allows`]). Annotations may carry a justification —
//! `xtask:allow(rule, why=free text)` — which some rules require (see
//! [`Lexed::allow_why`]).

use std::collections::BTreeMap;

/// Kind of a surviving token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (kept only so neighbors stay adjacent).
    Number,
    /// One punctuation character.
    Punct,
}

/// One token of the stripped source.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (for [`TokenKind::Punct`], a single character).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// 1-based column (in characters) the token starts at.
    pub col: usize,
    /// Byte offset of the token's first character in the source.
    pub byte: usize,
}

impl Token {
    /// True when this is the identifier `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True when this is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// One `xtask:allow(...)` annotation entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being allowed (or `all`).
    pub rule: String,
    /// The `why=` justification, when the annotation carried one.
    pub why: Option<String>,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The stripped token stream.
    pub tokens: Vec<Token>,
    /// `line -> allows` granted by `xtask:allow(rule, ...)` comments on
    /// that line. An annotation excuses findings on its own line and on
    /// the line directly below it (so it can trail the code or sit on
    /// the preceding line).
    pub allows: BTreeMap<usize, Vec<Allow>>,
}

impl Lexed {
    /// True when `rule` findings on `line` are excused by an annotation.
    pub fn allows(&self, line: usize, rule: &str) -> bool {
        self.allow_entry(line, rule).is_some()
    }

    /// The justification of the annotation covering `rule` on `line`:
    /// `None` when no annotation covers the line, `Some(None)` when one
    /// does but carries no `why=`, and `Some(Some(text))` otherwise.
    /// Rules that demand a justification treat `Some(None)` as a
    /// finding in its own right.
    pub fn allow_why(&self, line: usize, rule: &str) -> Option<Option<&str>> {
        self.allow_entry(line, rule).map(|a| a.why.as_deref())
    }

    fn allow_entry(&self, line: usize, rule: &str) -> Option<&Allow> {
        [line, line.saturating_sub(1)].iter().find_map(|l| {
            self.allows
                .get(l)
                .and_then(|allows| allows.iter().find(|a| a.rule == rule || a.rule == "all"))
        })
    }
}

/// Lexes `source`, stripping comments and literals.
pub fn lex(source: &str) -> Lexed {
    let mut chars: Vec<char> = Vec::new();
    let mut bytes: Vec<usize> = Vec::new();
    for (offset, c) in source.char_indices() {
        chars.push(c);
        bytes.push(offset);
    }
    bytes.push(source.len());
    let mut line_starts = vec![0usize];
    for (idx, &c) in chars.iter().enumerate() {
        if c == '\n' {
            line_starts.push(idx + 1);
        }
    }
    // (line, col) of the token starting at char index `idx`, both 1-based.
    let position = |idx: usize| -> (usize, usize) {
        let line = line_starts.partition_point(|&start| start <= idx);
        (line, idx - line_starts[line - 1] + 1)
    };

    let n = chars.len();
    let mut out = Lexed::default();
    let push = |kind: TokenKind, start: usize, end: usize, out: &mut Lexed| {
        let (line, col) = position(start);
        out.tokens.push(Token {
            kind,
            text: collect(&chars[start..end]),
            line,
            col,
            byte: bytes[start],
        });
    };

    let mut i = 0;
    while i < n {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            record_allows(&mut out, position(start).0, &collect(&chars[start..i]));
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            record_allows(&mut out, position(start).0, &collect(&chars[start..i]));
        } else if c == '"' {
            i = skip_string(&chars, i);
        } else if let Some(end) = raw_or_byte_literal_end(&chars, i) {
            i = end;
        } else if c == '\'' {
            i = skip_char_or_lifetime(&chars, i);
        } else if c == '_' || c.is_alphabetic() {
            let start = i;
            while i < n && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                i += 1;
            }
            push(TokenKind::Ident, start, i, &mut out);
        } else if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                i += 1;
            }
            // A fractional part: `.` followed by a digit (`0..8` is a
            // range, not a float).
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    i += 1;
                }
            }
            push(TokenKind::Number, start, i, &mut out);
        } else {
            push(TokenKind::Punct, i, i + 1, &mut out);
            i += 1;
        }
    }
    out
}

fn collect(chars: &[char]) -> String {
    chars.iter().collect()
}

/// Records every `xtask:allow(rule, ...)` annotation found in a comment.
///
/// Grammar: `xtask:allow(rule[, rule...][, why=justification])`. The
/// `why=` clause must come last; everything after it up to the closing
/// parenthesis is the justification (so it may contain commas, but not
/// a `)`), and it applies to every rule named by the annotation.
fn record_allows(out: &mut Lexed, line: usize, comment: &str) {
    const MARKER: &str = "xtask:allow(";
    let mut rest = comment;
    while let Some(pos) = rest.find(MARKER) {
        rest = &rest[pos + MARKER.len()..];
        let Some(close) = rest.find(')') else { break };
        let body = &rest[..close];
        let (rules, why) = match body.split_once("why=") {
            Some((rules, why)) => {
                let why = why.trim();
                let rules = rules.trim().trim_end_matches(',');
                (rules, (!why.is_empty()).then(|| why.to_owned()))
            }
            None => (body, None),
        };
        let allows = out.allows.entry(line).or_default();
        for rule in rules.split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                allows.push(Allow {
                    rule: rule.to_owned(),
                    why: why.clone(),
                });
            }
        }
        rest = &rest[close..];
    }
}

/// Skips a `"..."` string starting at the opening quote; returns the
/// index one past the closing quote.
fn skip_string(chars: &[char], mut i: usize) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Detects and skips `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `b'…'` literals
/// starting at `i`. Returns `None` when `i` starts a plain identifier
/// (including raw identifiers like `r#type`).
fn raw_or_byte_literal_end(chars: &[char], i: usize) -> Option<usize> {
    let n = chars.len();
    let mut j = match chars[i] {
        'r' => i + 1,
        'b' if i + 1 < n && chars[i + 1] == '\'' => {
            return Some(skip_char_or_lifetime(chars, i + 1));
        }
        'b' if i + 1 < n && chars[i + 1] == '"' => {
            return Some(skip_string(chars, i + 1));
        }
        'b' if i + 2 < n && chars[i + 1] == 'r' && (chars[i + 2] == '"' || chars[i + 2] == '#') => {
            i + 2
        }
        _ => return None,
    };
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return None; // `r#ident` or plain identifier starting with r/b
    }
    j += 1;
    while j < n {
        if chars[j] == '"'
            && chars[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(j)
}

/// Skips a char literal (`'x'`, `'\n'`, `'\u{1F600}'`) or a lifetime
/// (`'a`, `'static`), starting at the quote.
fn skip_char_or_lifetime(chars: &[char], i: usize) -> usize {
    let n = chars.len();
    if i + 1 >= n {
        return i + 1;
    }
    let next = chars[i + 1];
    if next == '\\' {
        // Escaped char literal: consume the escape body first — one
        // char (`\n`, and crucially `\\`, whose second backslash must
        // not be read as a fresh escape) or a braced `\u{...}` — then
        // scan to the closing quote (which also covers `\x41`).
        let mut j = i + 2;
        if j + 1 < n && chars[j] == 'u' && chars[j + 1] == '{' {
            j += 2;
            while j < n && chars[j] != '}' {
                j += 1;
            }
        }
        j += 1;
        while j < n && chars[j] != '\'' {
            j += 1;
        }
        return (j + 1).min(n);
    }
    if next == '_' || next.is_alphabetic() {
        let mut j = i + 1;
        while j < n && (chars[j] == '_' || chars[j].is_alphanumeric()) {
            j += 1;
        }
        if j < n && chars[j] == '\'' && j == i + 2 {
            return j + 1; // 'x' — a single-char literal
        }
        return j; // 'lifetime — no closing quote
    }
    // Non-alphabetic char literal like '0' or '.'.
    let mut j = i + 2;
    if j < n && chars[j] == '\'' {
        j += 1;
    }
    j
}

/// Removes `#[cfg(test)]` items (typically `mod tests { … }`) from a
/// token stream, so rules and the panic audit see only non-test code.
pub fn strip_cfg_test(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            i = skip_attr(tokens, i);
            // Skip any further attributes stacked on the same item.
            while i < tokens.len() && tokens[i].is_punct('#') {
                i = skip_attr(tokens, i);
            }
            i = skip_item(tokens, i);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// True when `tokens[i..]` starts with exactly `#[cfg(test)]`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let pat: [&dyn Fn(&Token) -> bool; 7] = [
        &|t| t.is_punct('#'),
        &|t| t.is_punct('['),
        &|t| t.is_ident("cfg"),
        &|t| t.is_punct('('),
        &|t| t.is_ident("test"),
        &|t| t.is_punct(')'),
        &|t| t.is_punct(']'),
    ];
    pat.iter()
        .enumerate()
        .all(|(k, check)| tokens.get(i + k).is_some_and(check))
}

/// Skips one `#[...]` attribute starting at the `#`; returns the index
/// one past its closing `]`.
fn skip_attr(tokens: &[Token], mut i: usize) -> usize {
    i += 1; // '#'
    if i < tokens.len() && tokens[i].is_punct('!') {
        i += 1;
    }
    if i >= tokens.len() || !tokens[i].is_punct('[') {
        return i;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('[') {
            depth += 1;
        } else if tokens[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Skips one item starting at `i`: either up to and including the
/// matching `}` of its first top-level brace block, or past the
/// terminating `;` for brace-less items.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0isize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let source = r##"
            // HashMap in a line comment
            /* HashMap in a /* nested */ block comment */
            fn f() -> &'static str { "HashMap::new()" }
            const R: &str = r#"thread_rng"#;
        "##;
        let names = idents(source);
        assert!(!names.iter().any(|n| n == "HashMap" || n == "thread_rng"));
        assert!(names.iter().any(|n| n == "fn"));
        assert!(names.iter().any(|n| n == "str"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        // Lifetimes and char literals are consumed without emitting
        // tokens; surrounding code still lexes cleanly.
        let names = idents("fn f<'a>(x: &'a str) -> char { 'x' } const C: char = '\\n';");
        assert_eq!(
            names,
            vec!["fn", "f", "x", "str", "char", "const", "C", "char"]
        );
        let names = idents("let v = ['('; 3]; let w: &'static str = s;");
        assert_eq!(names, vec!["let", "v", "let", "w", "str", "s"]);
    }

    #[test]
    fn escaped_char_literals_do_not_swallow_following_code() {
        // `'\\'` ends at its closing quote — the second backslash is
        // the escape body, not the start of a new escape.
        let names = idents("const B: char = '\\\\'; fn after() {}");
        assert_eq!(names, vec!["const", "B", "char", "fn", "after"]);
        let names = idents("const U: char = '\\u{1F600}'; fn tail() {}");
        assert_eq!(names, vec!["const", "U", "char", "fn", "tail"]);
        let names = idents("const Q: char = '\\''; fn quoted() {}");
        assert_eq!(names, vec!["const", "Q", "char", "fn", "quoted"]);
        let names = idents("const X: char = '\\x41'; fn hex() {}");
        assert_eq!(names, vec!["const", "X", "char", "fn", "hex"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<usize> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn columns_and_byte_offsets_are_tracked() {
        let lexed = lex("ab cd\n  efg = 1;");
        let spans: Vec<(usize, usize, usize)> = lexed
            .tokens
            .iter()
            .map(|t| (t.line, t.col, t.byte))
            .collect();
        // ab@1:1, cd@1:4, efg@2:3, =@2:7, 1@2:9, ;@2:10
        assert_eq!(
            spans,
            vec![
                (1, 1, 0),
                (1, 4, 3),
                (2, 3, 8),
                (2, 7, 12),
                (2, 9, 14),
                (2, 10, 15)
            ]
        );
    }

    #[test]
    fn multibyte_chars_keep_char_columns_and_byte_offsets() {
        // 'é' is 2 bytes but 1 character: columns count characters,
        // `byte` counts bytes.
        let lexed = lex("let é_name = 1;");
        let name = lexed
            .tokens
            .iter()
            .find(|t| t.text.contains("_name"))
            .expect("identifier");
        assert_eq!((name.line, name.col, name.byte), (1, 5, 4));
    }

    #[test]
    fn annotations_are_collected_and_scoped() {
        let lexed = lex("let a = 1; // xtask:allow(timing, rng)\nlet b = 2;\nlet c = 3;");
        assert!(lexed.allows(1, "timing"));
        assert!(lexed.allows(1, "rng"));
        assert!(lexed.allows(2, "timing"), "annotation covers the next line");
        assert!(!lexed.allows(3, "timing"));
        assert!(!lexed.allows(1, "default_hasher"));
    }

    #[test]
    fn annotations_carry_why_justifications() {
        let lexed = lex("x(); // xtask:allow(atomic-ordering, why=stats counter, no sync)");
        assert!(lexed.allows(1, "atomic-ordering"));
        assert_eq!(
            lexed.allow_why(1, "atomic-ordering"),
            Some(Some("stats counter, no sync")),
            "the why text keeps its commas"
        );
        let bare = lex("x(); // xtask:allow(atomic-ordering)");
        assert_eq!(bare.allow_why(1, "atomic-ordering"), Some(None));
        assert_eq!(bare.allow_why(1, "timing"), None);
    }

    #[test]
    fn why_applies_to_every_rule_in_the_annotation() {
        let lexed = lex("// xtask:allow(lossy-cast, float-eq, why=clamped first)\ny();");
        assert_eq!(
            lexed.allow_why(1, "lossy-cast"),
            Some(Some("clamped first"))
        );
        assert_eq!(lexed.allow_why(2, "float-eq"), Some(Some("clamped first")));
    }

    #[test]
    fn cfg_test_modules_are_stripped() {
        let source = "
            fn keep() {}
            #[cfg(test)]
            mod tests {
                fn gone() { let m = std::collections::HashMap::new(); }
            }
            fn also_kept() {}
        ";
        let lexed = lex(source);
        let stripped = strip_cfg_test(&lexed.tokens);
        let names: Vec<&str> = stripped
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(names.contains(&"keep"));
        assert!(names.contains(&"also_kept"));
        assert!(!names.contains(&"gone"));
        assert!(!names.contains(&"HashMap"));
    }

    #[test]
    fn cfg_test_on_braceless_item() {
        let source = "#[cfg(test)] use helper::thing; fn kept() {}";
        let lexed = lex(source);
        let stripped = strip_cfg_test(&lexed.tokens);
        let names: Vec<&str> = stripped.iter().map(|t| t.text.as_str()).collect();
        assert!(!names.contains(&"helper"));
        assert!(names.contains(&"kept"));
    }

    #[test]
    fn cfg_attr_is_not_treated_as_cfg_test() {
        let source = "#![cfg_attr(test, allow(clippy::unwrap_used))] fn kept() {}";
        let lexed = lex(source);
        let stripped = strip_cfg_test(&lexed.tokens);
        assert!(stripped.iter().any(|t| t.is_ident("kept")));
    }
}
